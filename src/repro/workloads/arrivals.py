"""Arrival-stream generation for the scheduler simulation.

The paper "created 5000 uniform distribution arrival times of these
benchmarks to ensure that the system executed long enough to depict
stable results"; benchmarks are enqueued on arrival and processed FIFO.

:func:`uniform_arrivals` reproduces that setup: job arrival times drawn
uniformly over a horizon, each job an independently drawn benchmark from
the suite.  A Poisson process generator is provided for the arrival-rate
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

import numpy as np

from .benchmark import BenchmarkSpec

__all__ = ["JobArrival", "uniform_arrivals", "poisson_arrivals", "with_qos"]


@dataclass(frozen=True)
class JobArrival:
    """One job: which benchmark arrives, and when (in cycles).

    ``priority`` and ``deadline_cycle`` feed the priority/deadline
    scheduling extension (paper future work); the defaults reproduce the
    paper's plain FIFO workload.
    """

    job_id: int
    benchmark: str
    arrival_cycle: int
    priority: int = 0
    deadline_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")
        if (
            self.deadline_cycle is not None
            and self.deadline_cycle < self.arrival_cycle
        ):
            raise ValueError("deadline cannot precede the arrival")


def _draw_benchmarks(
    specs: Sequence[BenchmarkSpec], count: int, rng: np.random.Generator
) -> List[str]:
    if not specs:
        raise ValueError("need at least one benchmark spec")
    indices = rng.integers(0, len(specs), size=count)
    return [specs[i].name for i in indices]


def uniform_arrivals(
    specs: Sequence[BenchmarkSpec],
    count: int = 5000,
    horizon_cycles: int = None,
    seed: int = 0,
    mean_interarrival_cycles: int = 56_000,
) -> List[JobArrival]:
    """Uniformly distributed arrival times over a horizon (paper §V).

    Parameters
    ----------
    specs:
        Benchmark suite to draw jobs from (uniformly).
    count:
        Number of arrivals (the paper used 5000).
    horizon_cycles:
        Arrival window; defaults to ``count * mean_interarrival_cycles``.
    seed:
        RNG seed.
    mean_interarrival_cycles:
        Used only to size the default horizon; tuning it controls
        contention (smaller → more simultaneous jobs → busier best cores).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if horizon_cycles is None:
        horizon_cycles = count * mean_interarrival_cycles
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    rng = np.random.default_rng(seed)
    times = np.sort(rng.integers(0, horizon_cycles, size=count))
    names = _draw_benchmarks(specs, count, rng)
    return [
        JobArrival(job_id=i, benchmark=name, arrival_cycle=int(t))
        for i, (name, t) in enumerate(zip(names, times))
    ]


def poisson_arrivals(
    specs: Sequence[BenchmarkSpec],
    count: int = 5000,
    mean_interarrival_cycles: float = 60_000.0,
    seed: int = 0,
) -> List[JobArrival]:
    """Poisson arrival process (exponential inter-arrival times).

    Used by the arrival-rate ablation; the paper itself used uniform
    arrival times.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if mean_interarrival_cycles <= 0:
        raise ValueError("mean_interarrival_cycles must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival_cycles, size=count)
    times = np.cumsum(gaps).astype(np.int64)
    names = _draw_benchmarks(specs, count, rng)
    return [
        JobArrival(job_id=i, benchmark=name, arrival_cycle=int(t))
        for i, (name, t) in enumerate(zip(names, times))
    ]


def with_qos(
    arrivals: Sequence[JobArrival],
    *,
    service_estimate: Callable[[str], int],
    priority_levels: int = 3,
    deadline_slack: float = 3.0,
    deadline_fraction: float = 1.0,
    seed: int = 0,
) -> List[JobArrival]:
    """Annotate an arrival stream with priorities and deadlines.

    Supports the paper's future-work extension ("systems with
    preemption, priority, and deadlines"):

    * each job draws a uniform priority in ``[0, priority_levels)``;
    * a ``deadline_fraction`` share of jobs receive a completion
      deadline of ``arrival + deadline_slack × service_estimate``,
      where ``service_estimate(benchmark)`` supplies a nominal
      execution time (typically the base-configuration cycles from the
      characterisation store).
    """
    if priority_levels <= 0:
        raise ValueError("priority_levels must be positive")
    if deadline_slack <= 0:
        raise ValueError("deadline_slack must be positive")
    if not 0.0 <= deadline_fraction <= 1.0:
        raise ValueError("deadline_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    annotated: List[JobArrival] = []
    for arrival in arrivals:
        priority = int(rng.integers(0, priority_levels))
        deadline: Optional[int] = None
        if rng.random() < deadline_fraction:
            nominal = int(service_estimate(arrival.benchmark))
            if nominal <= 0:
                raise ValueError(
                    f"service estimate must be positive for "
                    f"{arrival.benchmark!r}"
                )
            deadline = arrival.arrival_cycle + int(
                round(deadline_slack * nominal)
            )
        annotated.append(
            replace(arrival, priority=priority, deadline_cycle=deadline)
        )
    return annotated
