"""Arrival-stream generation for the scheduler simulation.

The paper "created 5000 uniform distribution arrival times of these
benchmarks to ensure that the system executed long enough to depict
stable results"; benchmarks are enqueued on arrival and processed FIFO.

:func:`uniform_arrivals` reproduces that setup: job arrival times drawn
uniformly over a horizon, each job an independently drawn benchmark from
the suite.  A Poisson process generator is provided for the arrival-rate
ablation.

Open-system streaming runs consume *unbounded* arrival processes
instead of materialised lists: :class:`PoissonProcess`,
:class:`MMPPProcess` (bursty, Markov-modulated) and
:class:`DiurnalProcess` (sinusoidal rate curve) generate jobs one fixed
chunk at a time, so arrival memory stays O(chunk) no matter how long
the run lasts.  Every process draws its randomness in a fixed per-chunk
order, which makes streams **prefix-stable**: the first N jobs are the
same no matter how far the stream is eventually advanced, and
:func:`poisson_arrivals` delegates to :class:`PoissonProcess` so a
truncated stream is bit-identical to the closed-batch list.  Processes
expose :meth:`~ArrivalProcess.state_dict` / :meth:`~ArrivalProcess.load_state`
so a streaming checkpoint can capture and resume the RNG mid-stream.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .benchmark import BenchmarkSpec

__all__ = [
    "ArrivalProcess",
    "DiurnalProcess",
    "JobArrival",
    "MMPPProcess",
    "PoissonProcess",
    "QoSProcess",
    "STREAM_CHUNK",
    "make_process",
    "poisson_arrivals",
    "uniform_arrivals",
    "with_qos",
]

#: Arrivals generated per refill.  The chunk size is part of a stream's
#: identity: RNG draws are batched per chunk, so two streams are
#: bit-identical only when they share it.  The default is what
#: :func:`poisson_arrivals` (and therefore the closed-batch prefix
#: guarantee) is pinned to.
STREAM_CHUNK = 1024


@dataclass(frozen=True)
class JobArrival:
    """One job: which benchmark arrives, and when (in cycles).

    ``priority`` and ``deadline_cycle`` feed the priority/deadline
    scheduling extension (paper future work); the defaults reproduce the
    paper's plain FIFO workload.
    """

    job_id: int
    benchmark: str
    arrival_cycle: int
    priority: int = 0
    deadline_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")
        if (
            self.deadline_cycle is not None
            and self.deadline_cycle < self.arrival_cycle
        ):
            raise ValueError("deadline cannot precede the arrival")


def _draw_benchmarks(
    specs: Sequence[BenchmarkSpec], count: int, rng: np.random.Generator
) -> List[str]:
    if not specs:
        raise ValueError("need at least one benchmark spec")
    indices = rng.integers(0, len(specs), size=count)
    return [specs[i].name for i in indices]


def uniform_arrivals(
    specs: Sequence[BenchmarkSpec],
    count: int = 5000,
    horizon_cycles: int = None,
    seed: int = 0,
    mean_interarrival_cycles: int = 56_000,
) -> List[JobArrival]:
    """Uniformly distributed arrival times over a horizon (paper §V).

    Parameters
    ----------
    specs:
        Benchmark suite to draw jobs from (uniformly).
    count:
        Number of arrivals (the paper used 5000).
    horizon_cycles:
        Arrival window; defaults to ``count * mean_interarrival_cycles``.
    seed:
        RNG seed.
    mean_interarrival_cycles:
        Used only to size the default horizon; tuning it controls
        contention (smaller → more simultaneous jobs → busier best cores).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if horizon_cycles is None:
        horizon_cycles = count * mean_interarrival_cycles
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    rng = np.random.default_rng(seed)
    times = np.sort(rng.integers(0, horizon_cycles, size=count))
    names = _draw_benchmarks(specs, count, rng)
    return [
        JobArrival(job_id=i, benchmark=name, arrival_cycle=int(t))
        for i, (name, t) in enumerate(zip(names, times))
    ]


def poisson_arrivals(
    specs: Sequence[BenchmarkSpec],
    count: int = 5000,
    mean_interarrival_cycles: float = 60_000.0,
    seed: int = 0,
) -> List[JobArrival]:
    """Poisson arrival process (exponential inter-arrival times).

    Used by the arrival-rate ablation; the paper itself used uniform
    arrival times.  This is exactly the first ``count`` jobs of
    :class:`PoissonProcess` with the same parameters, so closed-batch
    runs are bit-identical prefixes of the open-system stream.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return PoissonProcess(
        specs,
        mean_interarrival_cycles=mean_interarrival_cycles,
        seed=seed,
    ).take(count)


# -- open-system arrival processes ------------------------------------------


def _rng_state(rng: np.random.Generator) -> dict:
    """JSON-serialisable generator state (plain dicts and ints)."""
    return rng.bit_generator.state


def _restore_rng(state: dict) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


class ArrivalProcess:
    """An unbounded arrival stream, generated one chunk at a time.

    Subclasses implement :meth:`next_chunk`, which returns the next
    ``chunk`` jobs in non-decreasing ``arrival_cycle`` order with
    consecutive ``job_id`` values.  All randomness is drawn in a fixed
    per-chunk order, so the stream is *prefix-stable*: the first N jobs
    never depend on how far the stream is later advanced.

    :meth:`state_dict` / :meth:`load_state` capture and restore the
    full generator state (RNG, clock, next job id) for checkpointing;
    :meth:`params` is the compatibility fingerprint a checkpoint embeds
    so resuming against a differently-configured process fails loudly.
    """

    kind = "arrival"

    def __init__(
        self,
        specs: Sequence[BenchmarkSpec],
        *,
        seed: int = 0,
        chunk: int = STREAM_CHUNK,
    ) -> None:
        if not specs:
            raise ValueError("need at least one benchmark spec")
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        self.names: List[str] = [spec.name for spec in specs]
        self.seed = seed
        self.chunk = chunk
        self._rng = np.random.default_rng(seed)
        self._next_id = 0

    def next_chunk(self) -> List[JobArrival]:
        """The next ``chunk`` arrivals (advances the stream)."""
        raise NotImplementedError

    def take(self, count: int) -> List[JobArrival]:
        """Materialise the next ``count`` jobs.

        Whole chunks are always drawn (that is what keeps truncation
        prefix-stable), so up to ``chunk - 1`` generated jobs beyond
        ``count`` are discarded.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        out: List[JobArrival] = []
        while len(out) < count:
            out.extend(self.next_chunk())
        return out[:count]

    def params(self) -> Dict[str, object]:
        """Stream-identity fingerprint (checked on checkpoint resume)."""
        return {
            "kind": self.kind,
            "names": list(self.names),
            "seed": self.seed,
            "chunk": self.chunk,
        }

    def state_dict(self) -> dict:
        """JSON-serialisable stream position (RNG, clock, next id)."""
        return {
            "rng": _rng_state(self._rng),
            "next_id": self._next_id,
        }

    def load_state(self, state: dict) -> None:
        """Restore a position previously captured by :meth:`state_dict`."""
        self._rng = _restore_rng(state["rng"])
        self._next_id = int(state["next_id"])


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals (exponential inter-arrival gaps).

    Per chunk the draw order is: all gaps, then all benchmark indices —
    the batched order :func:`poisson_arrivals` has always used, now at
    fixed chunk granularity so any prefix of the stream matches the
    closed-batch list bit for bit.
    """

    kind = "poisson"

    def __init__(
        self,
        specs: Sequence[BenchmarkSpec],
        *,
        mean_interarrival_cycles: float = 60_000.0,
        seed: int = 0,
        chunk: int = STREAM_CHUNK,
    ) -> None:
        super().__init__(specs, seed=seed, chunk=chunk)
        if mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
        self.mean_interarrival_cycles = float(mean_interarrival_cycles)
        self._clock = 0.0

    def next_chunk(self) -> List[JobArrival]:
        rng = self._rng
        chunk = self.chunk
        gaps = rng.exponential(self.mean_interarrival_cycles, size=chunk)
        # Seeding the cumulative sum with the carried clock reproduces
        # the exact left-to-right float additions one long cumsum over
        # the whole stream would perform (x + 0.0 is exact for the
        # first chunk), so chunking never perturbs arrival times.
        times = np.cumsum(np.concatenate(((self._clock,), gaps)))[1:]
        self._clock = float(times[-1])
        cycles = times.astype(np.int64)
        indices = rng.integers(0, len(self.names), size=chunk)
        names = self.names
        base = self._next_id
        self._next_id = base + chunk
        return [
            JobArrival(
                job_id=base + i,
                benchmark=names[indices[i]],
                arrival_cycle=int(cycles[i]),
            )
            for i in range(chunk)
        ]

    def params(self) -> Dict[str, object]:
        fingerprint = super().params()
        fingerprint["mean_interarrival_cycles"] = (
            self.mean_interarrival_cycles
        )
        return fingerprint

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["clock"] = self._clock
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._clock = float(state["clock"])


class MMPPProcess(ArrivalProcess):
    """Bursty arrivals: a two-state Markov-modulated Poisson process.

    The process alternates between a *normal* phase (mean gap
    ``mean_interarrival_cycles``) and a *burst* phase (mean gap divided
    by ``burst_factor``); phase sojourns are exponential.  A gap that
    would cross the current phase boundary is redrawn from the boundary
    in the new phase — exact for exponential gaps (memorylessness), and
    what keeps the draw sequence a pure function of the jobs emitted so
    far (hence prefix-stable at any truncation point, not just chunk
    multiples).
    """

    kind = "mmpp"

    def __init__(
        self,
        specs: Sequence[BenchmarkSpec],
        *,
        mean_interarrival_cycles: float = 60_000.0,
        burst_factor: float = 8.0,
        mean_normal_sojourn_cycles: float = 50_000_000.0,
        mean_burst_sojourn_cycles: float = 10_000_000.0,
        seed: int = 0,
        chunk: int = STREAM_CHUNK,
    ) -> None:
        super().__init__(specs, seed=seed, chunk=chunk)
        if mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if mean_normal_sojourn_cycles <= 0 or mean_burst_sojourn_cycles <= 0:
            raise ValueError("phase sojourns must be positive")
        self.mean_interarrival_cycles = float(mean_interarrival_cycles)
        self.burst_factor = float(burst_factor)
        self.mean_normal_sojourn_cycles = float(mean_normal_sojourn_cycles)
        self.mean_burst_sojourn_cycles = float(mean_burst_sojourn_cycles)
        self._gap_means = (
            self.mean_interarrival_cycles,
            self.mean_interarrival_cycles / self.burst_factor,
        )
        self._sojourn_means = (
            self.mean_normal_sojourn_cycles,
            self.mean_burst_sojourn_cycles,
        )
        self._clock = 0.0
        self._phase = 0
        self._phase_end = float(
            self._rng.exponential(self._sojourn_means[0])
        )

    def next_chunk(self) -> List[JobArrival]:
        rng = self._rng
        names = self.names
        n_names = len(names)
        out: List[JobArrival] = []
        clock = self._clock
        phase = self._phase
        phase_end = self._phase_end
        gap_means = self._gap_means
        sojourn_means = self._sojourn_means
        base = self._next_id
        for i in range(self.chunk):
            while True:
                gap = rng.exponential(gap_means[phase])
                if clock + gap <= phase_end:
                    clock = clock + gap
                    break
                clock = phase_end
                phase = 1 - phase
                phase_end = clock + rng.exponential(sojourn_means[phase])
            name = names[int(rng.integers(0, n_names))]
            out.append(
                JobArrival(
                    job_id=base + i,
                    benchmark=name,
                    arrival_cycle=int(clock),
                )
            )
        self._clock = clock
        self._phase = phase
        self._phase_end = phase_end
        self._next_id = base + self.chunk
        return out

    def params(self) -> Dict[str, object]:
        fingerprint = super().params()
        fingerprint.update(
            mean_interarrival_cycles=self.mean_interarrival_cycles,
            burst_factor=self.burst_factor,
            mean_normal_sojourn_cycles=self.mean_normal_sojourn_cycles,
            mean_burst_sojourn_cycles=self.mean_burst_sojourn_cycles,
        )
        return fingerprint

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            clock=self._clock,
            phase=self._phase,
            phase_end=self._phase_end,
        )
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._clock = float(state["clock"])
        self._phase = int(state["phase"])
        self._phase_end = float(state["phase_end"])


class DiurnalProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals under a sinusoidal rate curve.

    The instantaneous rate is ``(1 + amplitude * sin(2π t / period +
    phase)) / mean_interarrival_cycles``, sampled by Lewis-Shedler
    thinning against the peak rate.  Candidate gap and acceptance draws
    interleave per accepted job, so the stream is prefix-stable at any
    truncation point.
    """

    kind = "diurnal"

    def __init__(
        self,
        specs: Sequence[BenchmarkSpec],
        *,
        mean_interarrival_cycles: float = 60_000.0,
        period_cycles: float = 100_000_000.0,
        amplitude: float = 0.5,
        phase: float = 0.0,
        seed: int = 0,
        chunk: int = STREAM_CHUNK,
    ) -> None:
        super().__init__(specs, seed=seed, chunk=chunk)
        if mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
        if period_cycles <= 0:
            raise ValueError("period_cycles must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be within [0, 1)")
        self.mean_interarrival_cycles = float(mean_interarrival_cycles)
        self.period_cycles = float(period_cycles)
        self.amplitude = float(amplitude)
        self.phase = float(phase)
        self._clock = 0.0

    def next_chunk(self) -> List[JobArrival]:
        rng = self._rng
        names = self.names
        n_names = len(names)
        mean = self.mean_interarrival_cycles
        peak_rate = (1.0 + self.amplitude) / mean
        peak_gap_mean = mean / (1.0 + self.amplitude)
        omega = 2.0 * math.pi / self.period_cycles
        amplitude = self.amplitude
        phase = self.phase
        sin = math.sin
        out: List[JobArrival] = []
        clock = self._clock
        base = self._next_id
        for i in range(self.chunk):
            while True:
                clock = clock + rng.exponential(peak_gap_mean)
                rate = (1.0 + amplitude * sin(omega * clock + phase)) / mean
                if rng.random() * peak_rate <= rate:
                    break
            name = names[int(rng.integers(0, n_names))]
            out.append(
                JobArrival(
                    job_id=base + i,
                    benchmark=name,
                    arrival_cycle=int(clock),
                )
            )
        self._clock = clock
        self._next_id = base + self.chunk
        return out

    def params(self) -> Dict[str, object]:
        fingerprint = super().params()
        fingerprint.update(
            mean_interarrival_cycles=self.mean_interarrival_cycles,
            period_cycles=self.period_cycles,
            amplitude=self.amplitude,
            phase=self.phase,
        )
        return fingerprint

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["clock"] = self._clock
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._clock = float(state["clock"])


class QoSProcess(ArrivalProcess):
    """Wrap a process with :func:`with_qos`-style priorities/deadlines.

    Annotation randomness comes from its own stream (``seed``), drawn
    per job in :func:`with_qos`'s exact order, so
    ``QoSProcess(inner).take(N)`` equals
    ``with_qos(inner.take(N), ...)`` with the same seed.
    """

    kind = "qos"

    def __init__(
        self,
        inner: ArrivalProcess,
        *,
        service_estimate: Callable[[str], int],
        priority_levels: int = 3,
        deadline_slack: float = 3.0,
        deadline_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        if priority_levels <= 0:
            raise ValueError("priority_levels must be positive")
        if deadline_slack <= 0:
            raise ValueError("deadline_slack must be positive")
        if not 0.0 <= deadline_fraction <= 1.0:
            raise ValueError("deadline_fraction must be within [0, 1]")
        self.inner = inner
        self.names = list(inner.names)
        self.seed = seed
        self.chunk = inner.chunk
        self.service_estimate = service_estimate
        self.priority_levels = priority_levels
        self.deadline_slack = float(deadline_slack)
        self.deadline_fraction = float(deadline_fraction)
        self._rng = np.random.default_rng(seed)

    def next_chunk(self) -> List[JobArrival]:
        rng = self._rng
        levels = self.priority_levels
        fraction = self.deadline_fraction
        slack = self.deadline_slack
        estimate = self.service_estimate
        out: List[JobArrival] = []
        for arrival in self.inner.next_chunk():
            priority = int(rng.integers(0, levels))
            deadline: Optional[int] = None
            if rng.random() < fraction:
                nominal = int(estimate(arrival.benchmark))
                if nominal <= 0:
                    raise ValueError(
                        f"service estimate must be positive for "
                        f"{arrival.benchmark!r}"
                    )
                deadline = arrival.arrival_cycle + int(
                    round(slack * nominal)
                )
            out.append(
                replace(arrival, priority=priority, deadline_cycle=deadline)
            )
        return out

    def params(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "priority_levels": self.priority_levels,
            "deadline_slack": self.deadline_slack,
            "deadline_fraction": self.deadline_fraction,
            "inner": self.inner.params(),
        }

    def state_dict(self) -> dict:
        return {
            "rng": _rng_state(self._rng),
            "inner": self.inner.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._rng = _restore_rng(state["rng"])
        self.inner.load_state(state["inner"])


#: Factory-constructible process kinds (CLI / campaign surface).
PROCESS_KINDS = ("poisson", "mmpp", "diurnal")


def make_process(
    kind: str,
    specs: Sequence[BenchmarkSpec],
    *,
    mean_interarrival_cycles: float = 60_000.0,
    seed: int = 0,
    chunk: int = STREAM_CHUNK,
    **kwargs,
) -> ArrivalProcess:
    """Build one of the named arrival processes (CLI/campaign surface)."""
    if kind == "poisson":
        cls = PoissonProcess
    elif kind == "mmpp":
        cls = MMPPProcess
    elif kind == "diurnal":
        cls = DiurnalProcess
    else:
        raise ValueError(
            f"unknown arrival process {kind!r}; "
            f"choose from {PROCESS_KINDS}"
        )
    return cls(
        specs,
        mean_interarrival_cycles=mean_interarrival_cycles,
        seed=seed,
        chunk=chunk,
        **kwargs,
    )


def with_qos(
    arrivals: Sequence[JobArrival],
    *,
    service_estimate: Callable[[str], int],
    priority_levels: int = 3,
    deadline_slack: float = 3.0,
    deadline_fraction: float = 1.0,
    seed: int = 0,
) -> List[JobArrival]:
    """Annotate an arrival stream with priorities and deadlines.

    Supports the paper's future-work extension ("systems with
    preemption, priority, and deadlines"):

    * each job draws a uniform priority in ``[0, priority_levels)``;
    * a ``deadline_fraction`` share of jobs receive a completion
      deadline of ``arrival + deadline_slack × service_estimate``,
      where ``service_estimate(benchmark)`` supplies a nominal
      execution time (typically the base-configuration cycles from the
      characterisation store).
    """
    if priority_levels <= 0:
        raise ValueError("priority_levels must be positive")
    if deadline_slack <= 0:
        raise ValueError("deadline_slack must be positive")
    if not 0.0 <= deadline_fraction <= 1.0:
        raise ValueError("deadline_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    annotated: List[JobArrival] = []
    for arrival in arrivals:
        priority = int(rng.integers(0, priority_levels))
        deadline: Optional[int] = None
        if rng.random() < deadline_fraction:
            nominal = int(service_estimate(arrival.benchmark))
            if nominal <= 0:
                raise ValueError(
                    f"service estimate must be positive for "
                    f"{arrival.benchmark!r}"
                )
            deadline = arrival.arrival_cycle + int(
                round(deadline_slack * nominal)
            )
        annotated.append(
            replace(arrival, priority=priority, deadline_cycle=deadline)
        )
    return annotated
