"""Benchmark specifications.

A :class:`BenchmarkSpec` is the synthetic stand-in for one EEMBC
benchmark: an instruction-mix model (how many loads, stores, branches,
integer and floating-point operations the program executes) plus a
:class:`~repro.workloads.tracegen.TraceMix` describing its memory
reference behaviour.  Generating a spec with a seed yields a
:class:`Trace` — the full data-reference stream the cache simulator
consumes.

Specs support seeded *variants* (:meth:`BenchmarkSpec.variant`): jittered
copies from the same family used to grow the 15-benchmark suite into a
trainable ANN dataset, following the paper's observation that
"applications from similar application domains have similar execution
statistics".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro._util import stable_seed

from .tracegen import (
    HotspotAccess,
    LoopedArray,
    PointerChase,
    RandomAccess,
    SequentialStream,
    StridedAccess,
    TraceComponent,
    TraceMix,
)

__all__ = ["InstructionMix", "BenchmarkSpec", "Trace"]


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of the instruction stream by class.

    ``load + store + branch + int_op + fp_op`` must sum to 1 (within
    floating-point tolerance); the remainder semantics are deliberately
    excluded to keep the counter model exact.
    """

    load: float
    store: float
    branch: float
    int_op: float
    fp_op: float
    #: Fraction of branches that are taken.
    branch_taken_ratio: float = 0.6

    def __post_init__(self) -> None:
        fractions = (self.load, self.store, self.branch, self.int_op, self.fp_op)
        for value in fractions:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"instruction-mix fraction out of range: {value}")
        total = sum(fractions)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"instruction mix must sum to 1.0, got {total}")
        if not 0.0 <= self.branch_taken_ratio <= 1.0:
            raise ValueError("branch_taken_ratio must be within [0, 1]")

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that reference memory."""
        return self.load + self.store

    @property
    def write_fraction(self) -> float:
        """Fraction of memory references that are writes."""
        if self.memory_fraction == 0:
            return 0.0
        return self.store / self.memory_fraction


@dataclass(frozen=True)
class Trace:
    """One generated execution's data-reference stream."""

    addresses: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.addresses) != len(self.writes):
            raise ValueError("addresses and writes must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def store_count(self) -> int:
        """Number of write references."""
        return int(np.count_nonzero(self.writes))

    @property
    def load_count(self) -> int:
        """Number of read references."""
        return len(self) - self.store_count

    @property
    def unique_lines_64b(self) -> int:
        """Distinct 64-byte lines touched (working-set estimate)."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.addresses // 64).size)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Complete synthetic model of one benchmark.

    Attributes
    ----------
    name:
        Unique benchmark name (doubles as the profiling-table id).
    family:
        EEMBC family the benchmark (or variant) belongs to.
    instructions:
        Dynamic instruction count of one complete execution.
    mix:
        Instruction mix.
    trace_mix:
        Memory reference pattern.
    description:
        Human-readable summary of the modelled kernel.
    """

    name: str
    family: str
    instructions: int
    mix: InstructionMix
    trace_mix: TraceMix
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark name must be non-empty")
        if self.instructions <= 0:
            raise ValueError(f"instructions must be positive: {self.instructions}")

    # -- derived instruction counts -------------------------------------

    @property
    def mem_accesses(self) -> int:
        """Number of data references per execution."""
        return int(round(self.instructions * self.mix.memory_fraction))

    @property
    def loads(self) -> int:
        """Dynamic load count."""
        return int(round(self.instructions * self.mix.load))

    @property
    def stores(self) -> int:
        """Dynamic store count."""
        return int(round(self.instructions * self.mix.store))

    @property
    def branches(self) -> int:
        """Dynamic branch count."""
        return int(round(self.instructions * self.mix.branch))

    @property
    def taken_branches(self) -> int:
        """Dynamic taken-branch count."""
        return int(round(self.branches * self.mix.branch_taken_ratio))

    @property
    def int_ops(self) -> int:
        """Dynamic integer-ALU instruction count."""
        return int(round(self.instructions * self.mix.int_op))

    @property
    def fp_ops(self) -> int:
        """Dynamic floating-point instruction count."""
        return int(round(self.instructions * self.mix.fp_op))

    # -- trace generation ------------------------------------------------

    def generate_trace(self, seed: int = 0) -> Trace:
        """Generate the deterministic data-reference trace for a seed."""
        rng = np.random.default_rng(self._seed_root(seed))
        n = self.mem_accesses
        addresses = self.trace_mix.generate(n, rng)
        writes = np.zeros(n, dtype=bool)
        store_count = min(self.stores, n)
        if store_count:
            # Spread writes uniformly through the reference stream: every
            # k-th access is a store, the way stores interleave with loads
            # in filter/update kernels.
            write_positions = np.linspace(0, n - 1, store_count).astype(np.int64)
            writes[write_positions] = True
        return Trace(addresses=addresses, writes=writes)

    def _seed_root(self, seed: int) -> int:
        # Distinct benchmarks get decorrelated streams for the same seed.
        return stable_seed(self.name, seed)

    # -- variants ---------------------------------------------------------

    def variant(self, index: int, *, jitter: float = 0.25) -> "BenchmarkSpec":
        """Seeded jittered copy from the same family.

        Scales every component region, the instruction count and (mildly)
        the instruction mix by lognormal-ish factors drawn from a
        deterministic RNG, producing a *different but related* program:
        same phase structure, shifted working set and length.  Variant 0
        is the spec itself.
        """
        if index == 0:
            return self
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        rng = np.random.default_rng(stable_seed(self.family, self.name, index))

        def scale_factor() -> float:
            return float(np.exp(rng.normal(0.0, jitter)))

        region_scale = scale_factor()
        components: Tuple[Tuple[TraceComponent, float], ...] = tuple(
            (self._scale_component(component, region_scale, rng), weight)
            for component, weight in self.trace_mix.components
        )
        trace_mix = replace(self.trace_mix, components=components)
        # Longer data → more instructions, like real kernels looping over
        # bigger inputs.
        instructions = max(1000, int(round(self.instructions * region_scale
                                           * scale_factor() ** 0.5)))
        mix = self._jitter_mix(rng, jitter * 0.3)
        return replace(
            self,
            name=f"{self.name}.v{index}",
            instructions=instructions,
            mix=mix,
            trace_mix=trace_mix,
        )

    @staticmethod
    def _scale_component(
        component: TraceComponent, factor: float, rng: np.random.Generator
    ) -> TraceComponent:
        wobble = float(np.exp(rng.normal(0.0, 0.08)))
        region = max(64, int(round(component.region_bytes * factor * wobble)))
        if isinstance(component, LoopedArray):
            stride = min(component.stride, region)
            return replace(component, region_bytes=region, stride=stride)
        if isinstance(
            component,
            (SequentialStream, StridedAccess, RandomAccess, HotspotAccess,
             PointerChase),
        ):
            return replace(component, region_bytes=region)
        return component

    def _jitter_mix(self, rng: np.random.Generator, amount: float) -> InstructionMix:
        if amount <= 0:
            return self.mix
        raw = np.array(
            [
                self.mix.load,
                self.mix.store,
                self.mix.branch,
                self.mix.int_op,
                self.mix.fp_op,
            ]
        )
        noisy = raw * np.exp(rng.normal(0.0, amount, size=raw.shape))
        noisy = np.clip(noisy, 1e-4, None)
        noisy = noisy / noisy.sum()
        return InstructionMix(
            load=float(noisy[0]),
            store=float(noisy[1]),
            branch=float(noisy[2]),
            int_op=float(noisy[3]),
            fp_op=float(noisy[4]),
            branch_taken_ratio=self.mix.branch_taken_ratio,
        )
