"""Hardware performance counters.

During profiling the paper records "execution statistics while executing
in the base configuration ... using built-in hardware counters, such as
memory access counts, cache misses, etc." and feeds *18 cache-relevant
execution statistics* per benchmark to the ANN (270 inputs = 18 × 15
benchmarks).

:class:`HardwareCounters` models that counter block: 18 statistics
derived from the instruction-mix model plus the base-configuration cache
simulation.  :data:`ANN_SELECTED_FEATURES` is the paper's post-feature-
selection subset: "the total number of instructions, the number of
cycles for one complete benchmark execution, the number of load and
store instructions, the number of branches, and the number of integer
and floating-point instructions."
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence, Tuple

import numpy as np

from repro.cache.stats import CacheStats

from .benchmark import BenchmarkSpec, Trace

__all__ = [
    "HardwareCounters",
    "ALL_COUNTER_NAMES",
    "ANN_SELECTED_FEATURES",
    "collect_counters",
]


@dataclass(frozen=True)
class HardwareCounters:
    """The 18 cache-relevant execution statistics of one profiling run."""

    instructions: int
    cycles: int
    ipc: float
    loads: int
    stores: int
    branches: int
    taken_branches: int
    int_ops: int
    fp_ops: int
    mem_accesses: int
    cache_hits: int
    cache_misses: int
    miss_rate: float
    stall_cycles: int
    compulsory_misses: int
    unique_lines: int
    compute_intensity: float
    memory_intensity: float

    def as_vector(self, names: Sequence[str] = None) -> np.ndarray:
        """Counter values as a float vector, in ``names`` order.

        Defaults to all 18 counters in declaration order.
        """
        if names is None:
            names = ALL_COUNTER_NAMES
        missing = [n for n in names if n not in ALL_COUNTER_NAMES]
        if missing:
            raise ValueError(f"unknown counter name(s): {missing}")
        return np.array([float(getattr(self, n)) for n in names])

    def validate(self) -> None:
        """Raise :class:`ValueError` on internally inconsistent counters."""
        if self.cache_hits + self.cache_misses != self.mem_accesses:
            raise ValueError("hits + misses != memory accesses")
        if self.loads + self.stores != self.mem_accesses:
            raise ValueError("loads + stores != memory accesses")
        if self.taken_branches > self.branches:
            raise ValueError("taken branches exceed branches")
        if self.cycles < 0 or self.instructions < 0:
            raise ValueError("negative instruction or cycle count")


#: All 18 counter names in declaration order.
ALL_COUNTER_NAMES: Tuple[str, ...] = tuple(
    f.name for f in fields(HardwareCounters)
)

#: The paper's feature-selected subset for cache-size prediction (§IV.D).
ANN_SELECTED_FEATURES: Tuple[str, ...] = (
    "instructions",
    "cycles",
    "loads",
    "stores",
    "branches",
    "int_ops",
    "fp_ops",
)


def collect_counters(
    spec: BenchmarkSpec,
    trace: Trace,
    base_stats: CacheStats,
    total_cycles: int,
) -> HardwareCounters:
    """Assemble the counter block from one base-configuration execution.

    Parameters
    ----------
    spec:
        The benchmark that executed.
    trace:
        The data-reference trace of that execution.
    base_stats:
        Cache statistics of the trace under the base configuration.
    total_cycles:
        Execution cycles under the base configuration (from the energy
        model's timing equations).
    """
    mem_accesses = base_stats.accesses
    stall_cycles = max(0, total_cycles - spec.instructions)
    counters = HardwareCounters(
        instructions=spec.instructions,
        cycles=total_cycles,
        ipc=spec.instructions / total_cycles if total_cycles else 0.0,
        loads=trace.load_count,
        stores=trace.store_count,
        branches=spec.branches,
        taken_branches=spec.taken_branches,
        int_ops=spec.int_ops,
        fp_ops=spec.fp_ops,
        mem_accesses=mem_accesses,
        cache_hits=base_stats.hits,
        cache_misses=base_stats.misses,
        miss_rate=base_stats.miss_rate,
        stall_cycles=stall_cycles,
        compulsory_misses=base_stats.compulsory_misses,
        unique_lines=trace.unique_lines_64b,
        compute_intensity=(
            (spec.int_ops + spec.fp_ops) / mem_accesses if mem_accesses else 0.0
        ),
        memory_intensity=(
            mem_accesses / spec.instructions if spec.instructions else 0.0
        ),
    )
    counters.validate()
    return counters
