"""DAG/task-graph workloads: precedence-constrained jobs with deadlines.

The paper evaluates independent jobs, but real traffic on heterogeneous
multicores is interleaved task graphs (Mack et al., arXiv:2112.08980).
This module supplies the pure-data side of that axis, in the STOMP mold
of a trace generator emitting random DAG arrivals with per-task
deadlines:

* :class:`TaskSpec` — one node: a benchmark, its predecessor edges, an
  optional deadline offset relative to the graph's arrival.
* :class:`TaskGraph` — one DAG arrival: id, arrival cycle, DAG-level
  criticality and the task tuple.  Validated acyclic on construction.
* :func:`generate_task_graphs` — seed-keyed random generator (layered
  forward edges, slack-scaled deadlines).
* :func:`dump_graphs` / :func:`load_graphs` — JSON round-trip mirroring
  :mod:`repro.faults.plan`, so graph sets can be saved, inspected and
  replayed byte-identically.
* :func:`dag_arrivals` — lower an *edge-free* graph set to the plain
  :class:`~repro.workloads.arrivals.JobArrival` list the closed-batch
  engines consume; this is the bridge the bit-identity tests use.

Everything here is plain data: the scheduling semantics (release on
predecessor completion, deadline accounting) live in
:meth:`repro.core.simulation.SchedulerSimulation.run_dags`.
"""

from __future__ import annotations

import json
import random

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from .arrivals import JobArrival
from .eembc import EEMBC_NAMES

__all__ = [
    "TaskSpec",
    "TaskGraph",
    "dag_arrivals",
    "describe_graphs",
    "dump_graphs",
    "generate_task_graphs",
    "load_graphs",
]


@dataclass(frozen=True)
class TaskSpec:
    """One node of a task graph.

    ``predecessors`` lists task ids *within the same graph* that must
    complete before this task becomes ready.  ``deadline_offset`` is
    relative to the owning graph's ``arrival_cycle`` (absolute deadlines
    are materialised when the graph is lowered to jobs), which keeps a
    graph relocatable in time without editing every task.
    """

    task_id: int
    benchmark: str
    predecessors: Tuple[int, ...] = ()
    deadline_offset: Optional[int] = None
    priority: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "predecessors", tuple(self.predecessors))
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if not self.benchmark:
            raise ValueError("benchmark name must be non-empty")
        if len(set(self.predecessors)) != len(self.predecessors):
            raise ValueError(
                f"task {self.task_id} lists a duplicate predecessor"
            )
        if self.task_id in self.predecessors:
            raise ValueError(f"task {self.task_id} depends on itself")
        if self.deadline_offset is not None and self.deadline_offset < 0:
            raise ValueError("deadline_offset must be non-negative")

    @classmethod
    def from_dict(cls, payload: Dict) -> "TaskSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown TaskSpec fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class TaskGraph:
    """One DAG arrival: tasks, precedence edges, deadlines, criticality.

    ``criticality`` (≥ 1) is a DAG-level weight: deadline-aware policies
    may privilege every task of a critical graph over tasks of a routine
    one.  The constructor validates that task ids are unique, that every
    predecessor reference resolves, and that the edge set is acyclic.
    """

    graph_id: int
    name: str
    arrival_cycle: int
    criticality: int = 1
    tasks: Tuple[TaskSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "tasks",
            tuple(
                t if isinstance(t, TaskSpec) else TaskSpec.from_dict(t)
                for t in self.tasks
            ),
        )
        if self.graph_id < 0:
            raise ValueError("graph_id must be non-negative")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")
        if self.criticality < 1:
            raise ValueError("criticality must be >= 1")
        if not self.tasks:
            raise ValueError(f"graph {self.graph_id} has no tasks")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"graph {self.graph_id} has duplicate task ids")
        known = set(ids)
        for task in self.tasks:
            for pred in task.predecessors:
                if pred not in known:
                    raise ValueError(
                        f"graph {self.graph_id} task {task.task_id} "
                        f"references unknown predecessor {pred}"
                    )
        # Kahn's algorithm doubles as the cycle check.
        self.topological_order()

    # -- structure helpers -------------------------------------------

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    @property
    def edge_count(self) -> int:
        return sum(len(t.predecessors) for t in self.tasks)

    @property
    def is_edge_free(self) -> bool:
        """True when every task is independent (no precedence edges)."""
        return self.edge_count == 0

    def roots(self) -> Tuple[TaskSpec, ...]:
        """Tasks ready the moment the graph arrives."""
        return tuple(t for t in self.tasks if not t.predecessors)

    def successors(self) -> Dict[int, Tuple[int, ...]]:
        """Map of task id → ids of tasks that depend on it."""
        out: Dict[int, List[int]] = {t.task_id: [] for t in self.tasks}
        for task in self.tasks:
            for pred in task.predecessors:
                out[pred].append(task.task_id)
        return {k: tuple(v) for k, v in out.items()}

    def topological_order(self) -> Tuple[int, ...]:
        """Task ids in a deterministic topological order.

        Ties are broken by declaration order, and a cycle raises
        ``ValueError`` (this is the constructor's acyclicity check).
        """
        remaining = {
            t.task_id: set(t.predecessors) for t in self.tasks
        }
        declared = [t.task_id for t in self.tasks]
        order: List[int] = []
        while remaining:
            ready = [tid for tid in declared if tid in remaining and not remaining[tid]]
            if not ready:
                raise ValueError(
                    f"graph {self.graph_id} contains a precedence cycle"
                )
            for tid in ready:
                del remaining[tid]
                order.append(tid)
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    def critical_path_length(self) -> int:
        """Longest root-to-leaf chain, counted in tasks."""
        depth: Dict[int, int] = {}
        by_id = {t.task_id: t for t in self.tasks}
        for tid in self.topological_order():
            preds = by_id[tid].predecessors
            depth[tid] = 1 + max((depth[p] for p in preds), default=0)
        return max(depth.values())

    # -- serialisation (FaultPlan idiom) -----------------------------

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "TaskGraph":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown TaskGraph fields: {sorted(unknown)}")
        data = dict(payload)
        data["tasks"] = tuple(
            TaskSpec.from_dict(t) if isinstance(t, dict) else t
            for t in data.get("tasks", ())
        )
        return cls(**data)

    def describe(self) -> str:
        deadlined = sum(
            1 for t in self.tasks if t.deadline_offset is not None
        )
        lines = [
            f"graph {self.graph_id} ({self.name!r}): "
            f"{self.task_count} tasks, {self.edge_count} edges, "
            f"criticality {self.criticality}, "
            f"arrives at cycle {self.arrival_cycle}",
            f"  roots: {sorted(t.task_id for t in self.roots())}, "
            f"critical path {self.critical_path_length()} tasks, "
            f"{deadlined}/{self.task_count} tasks deadlined",
        ]
        return "\n".join(lines)


def dump_graphs(graphs: Sequence[TaskGraph], path: str) -> None:
    """Write a graph set as a stable JSON document (sorted keys)."""
    payload = {"graphs": [g.to_dict() for g in graphs]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_graphs(path: str) -> List[TaskGraph]:
    """Load a graph set written by :func:`dump_graphs`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "graphs" not in payload:
        raise ValueError(f"{path} does not hold a task-graph document")
    graphs = payload["graphs"]
    if not isinstance(graphs, list):
        raise ValueError(f"{path} 'graphs' entry must be a list")
    return [TaskGraph.from_dict(entry) for entry in graphs]


def describe_graphs(graphs: Sequence[TaskGraph]) -> str:
    """Multi-line summary of a graph set (the CLI ``describe`` view)."""
    tasks = sum(g.task_count for g in graphs)
    edges = sum(g.edge_count for g in graphs)
    header = (
        f"{len(graphs)} task graph(s), {tasks} tasks, {edges} edges"
    )
    return "\n".join([header] + [g.describe() for g in graphs])


def generate_task_graphs(
    count: int = 8,
    seed: int = 0,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    tasks_min: int = 3,
    tasks_max: int = 8,
    edge_density: float = 0.35,
    deadline_slack: float = 2.5,
    criticality_levels: int = 3,
    mean_interarrival_cycles: int = 250_000,
    service_estimate_cycles: int = 120_000,
    name: str = "generated",
) -> List[TaskGraph]:
    """Seed-keyed random DAG generator in the STOMP mold.

    Each graph draws a task count in ``[tasks_min, tasks_max]``, adds a
    forward edge ``i → j`` (``i < j``) with probability ``edge_density``
    (forward-only edges make acyclicity structural), and assigns each
    task a deadline offset of roughly ``depth × service_estimate_cycles
    × deadline_slack`` — deeper tasks get proportionally later
    deadlines, and smaller ``deadline_slack`` means a tighter, more
    congested scenario.  Graph arrivals advance by a uniform draw with
    the given mean.  ``edge_density=0.0`` yields edge-free graphs
    (independent tasks), the degenerate case the bit-identity tests
    lower to plain arrivals.

    Randomness is keyed per site (``f"{seed}:arrivals"`` etc.), so each
    aspect of the draw is independently stable under parameter changes
    elsewhere — the same idiom as :func:`repro.faults.plan.generate_plan`.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0 <= tasks_min <= tasks_max:
        raise ValueError("need 0 <= tasks_min <= tasks_max")
    if tasks_min < 1:
        raise ValueError("tasks_min must be at least 1")
    if not 0.0 <= edge_density <= 1.0:
        raise ValueError("edge_density must be within [0, 1]")
    if deadline_slack <= 0:
        raise ValueError("deadline_slack must be positive")
    if criticality_levels < 1:
        raise ValueError("criticality_levels must be >= 1")
    if mean_interarrival_cycles < 0:
        raise ValueError("mean_interarrival_cycles must be non-negative")
    if service_estimate_cycles <= 0:
        raise ValueError("service_estimate_cycles must be positive")
    names = list(benchmarks) if benchmarks is not None else list(EEMBC_NAMES)
    if not names:
        raise ValueError("need at least one benchmark name")

    arrivals_rng = random.Random(f"{seed}:arrivals")
    shape_rng = random.Random(f"{seed}:shape")
    edge_rng = random.Random(f"{seed}:edges")
    deadline_rng = random.Random(f"{seed}:deadlines")
    crit_rng = random.Random(f"{seed}:criticality")

    graphs: List[TaskGraph] = []
    arrival = 0
    for graph_id in range(count):
        n_tasks = shape_rng.randint(tasks_min, tasks_max)
        preds: List[List[int]] = [[] for _ in range(n_tasks)]
        for j in range(1, n_tasks):
            for i in range(j):
                if edge_rng.random() < edge_density:
                    preds[j].append(i)
        depth = [0] * n_tasks
        for j in range(n_tasks):
            depth[j] = 1 + max((depth[i] for i in preds[j]), default=0)
        tasks = []
        for tid in range(n_tasks):
            offset = int(
                depth[tid]
                * service_estimate_cycles
                * deadline_slack
                * deadline_rng.uniform(0.8, 1.2)
            )
            tasks.append(
                TaskSpec(
                    task_id=tid,
                    benchmark=shape_rng.choice(names),
                    predecessors=tuple(preds[tid]),
                    deadline_offset=offset,
                )
            )
        graphs.append(
            TaskGraph(
                graph_id=graph_id,
                name=f"{name}-{graph_id}",
                arrival_cycle=arrival,
                criticality=crit_rng.randint(1, criticality_levels),
                tasks=tuple(tasks),
            )
        )
        arrival += arrivals_rng.randint(0, 2 * mean_interarrival_cycles)
    return graphs


def dag_arrivals(graphs: Sequence[TaskGraph]) -> List[JobArrival]:
    """Lower *edge-free* graphs to the equivalent plain arrival list.

    Job ids are assigned globally in graph order then task order —
    exactly the numbering
    :meth:`~repro.core.simulation.SchedulerSimulation.run_dags` uses —
    so an edge-free DAG run and the lowered plain run are comparable
    job-for-job.  Graphs with precedence edges cannot be lowered (their
    release times depend on execution) and raise ``ValueError``.
    """
    arrivals: List[JobArrival] = []
    job_id = 0
    for graph in graphs:
        if not graph.is_edge_free:
            raise ValueError(
                f"graph {graph.graph_id} has precedence edges and cannot "
                "be lowered to independent arrivals"
            )
        for task in graph.tasks:
            deadline = (
                None
                if task.deadline_offset is None
                else graph.arrival_cycle + task.deadline_offset
            )
            arrivals.append(
                JobArrival(
                    job_id=job_id,
                    benchmark=task.benchmark,
                    arrival_cycle=graph.arrival_cycle,
                    priority=task.priority,
                    deadline_cycle=deadline,
                )
            )
            job_id += 1
    return arrivals
