"""Synthetic EEMBC-analogue benchmark suite.

The paper evaluates with "the complete EEMBC suite" and emphasises the
automotive subset.  EEMBC is proprietary, so this module defines fifteen
synthetic analogues named after the EEMBC AutoBench kernels.  Each spec
models the *kind* of computation the real kernel performs — instruction
mix and, crucially, memory footprint and access pattern — because those
are the only properties the reproduction's cache statistics, energy model
and ANN features observe.

The working sets are deliberately spread across the design space's cache
sizes (2/4/8 KB) so that, like the real suite, different benchmarks have
different best cache sizes — that diversity is what the paper's
heterogeneous system exploits.
"""

from __future__ import annotations

from typing import Dict, List

from .benchmark import BenchmarkSpec, InstructionMix
from .tracegen import (
    HotspotAccess,
    LoopedArray,
    PointerChase,
    RandomAccess,
    SequentialStream,
    StridedAccess,
    TraceMix,
)

__all__ = ["eembc_suite", "eembc_benchmark", "EEMBC_NAMES", "EEMBC_DOMAINS"]

#: Application domain of each kernel (paper §IV.D: "for diverse systems
#: executing different application domains, the scheduler could have
#: multiple ANNs each of which would be specialized for a different
#: domain").  ``dsp`` = signal-processing kernels, ``control`` = small
#: control-loop kernels, ``memory`` = data-structure-bound kernels.
EEMBC_DOMAINS = {
    "a2time": "control",
    "aifftr": "dsp",
    "aifirf": "dsp",
    "aiifft": "dsp",
    "basefp": "dsp",
    "bitmnp": "control",
    "cacheb": "memory",
    "canrdr": "control",
    "idctrn": "dsp",
    "iirflt": "dsp",
    "matrix": "memory",
    "pntrch": "memory",
    "puwmod": "control",
    "rspeed": "control",
    "tblook": "memory",
}

#: Names of the fifteen modelled AutoBench kernels.
EEMBC_NAMES = (
    "a2time",
    "aifftr",
    "aifirf",
    "aiifft",
    "basefp",
    "bitmnp",
    "cacheb",
    "canrdr",
    "idctrn",
    "iirflt",
    "matrix",
    "pntrch",
    "puwmod",
    "rspeed",
    "tblook",
)


def _suite() -> List[BenchmarkSpec]:
    """Construct the fifteen benchmark specifications."""
    specs = [
        BenchmarkSpec(
            name="a2time",
            family="a2time",
            instructions=78_000,
            mix=InstructionMix(load=0.24, store=0.08, branch=0.14,
                               int_op=0.46, fp_op=0.08),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=1408, stride=4), 3.0),
                    (SequentialStream(region_bytes=24_576, stride=4), 1.0),
                ),
            ),
            description="Angle-to-time conversion: small state tables swept "
                        "per tooth pulse plus a streaming sensor buffer.",
        ),
        BenchmarkSpec(
            name="aifftr",
            family="aifftr",
            instructions=96_000,
            mix=InstructionMix(load=0.27, store=0.12, branch=0.08,
                               int_op=0.23, fp_op=0.30),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=2176, stride=8), 2.0),
                    (StridedAccess(region_bytes=1280, stride=128), 1.5),
                    (SequentialStream(region_bytes=16_384, stride=8), 0.5),
                ),
            ),
            description="Radix-2 FFT: butterfly strides over a mid-sized "
                        "complex buffer.",
        ),
        BenchmarkSpec(
            name="aifirf",
            family="aifirf",
            instructions=66_000,
            mix=InstructionMix(load=0.30, store=0.07, branch=0.10,
                               int_op=0.28, fp_op=0.25),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=960, stride=4), 3.0),
                    (SequentialStream(region_bytes=32_768, stride=4), 1.0),
                ),
            ),
            description="FIR filter: small coefficient/delay-line arrays "
                        "reused per sample over a streaming input.",
        ),
        BenchmarkSpec(
            name="aiifft",
            family="aiifft",
            instructions=92_000,
            mix=InstructionMix(load=0.26, store=0.13, branch=0.08,
                               int_op=0.24, fp_op=0.29),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=2304, stride=8), 2.0),
                    (StridedAccess(region_bytes=1408, stride=160), 1.5),
                ),
            ),
            description="Inverse FFT: like aifftr with a slightly larger "
                        "working buffer and different twiddle stride.",
        ),
        BenchmarkSpec(
            name="basefp",
            family="basefp",
            instructions=60_000,
            mix=InstructionMix(load=0.22, store=0.08, branch=0.09,
                               int_op=0.19, fp_op=0.42),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=2048, stride=8), 2.5),
                    (HotspotAccess(region_bytes=1536, skew=1.5), 1.0),
                ),
            ),
            description="Basic floating point: medium working set with a "
                        "skewed constant-table access pattern.",
        ),
        BenchmarkSpec(
            name="bitmnp",
            family="bitmnp",
            instructions=40_000,
            mix=InstructionMix(load=0.18, store=0.06, branch=0.20,
                               int_op=0.55, fp_op=0.01),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=704, stride=4), 4.0),
                    (SequentialStream(region_bytes=8192, stride=4), 0.6),
                ),
            ),
            description="Bit manipulation: tiny bit-array working set, "
                        "branch- and ALU-heavy.",
        ),
        BenchmarkSpec(
            name="cacheb",
            family="cacheb",
            instructions=88_000,
            mix=InstructionMix(load=0.33, store=0.14, branch=0.10,
                               int_op=0.40, fp_op=0.03),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=7040, stride=16), 2.0),
                    (RandomAccess(region_bytes=6144), 1.0),
                ),
            ),
            description="Cache buster: large swept buffer plus random "
                        "scatter accesses.",
        ),
        BenchmarkSpec(
            name="canrdr",
            family="canrdr",
            instructions=69_000,
            mix=InstructionMix(load=0.25, store=0.11, branch=0.17,
                               int_op=0.45, fp_op=0.02),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=1152, stride=4), 2.5),
                    (SequentialStream(region_bytes=20_480, stride=16), 1.0),
                ),
            ),
            description="CAN remote data request: small protocol state "
                        "tables over a streaming message queue.",
        ),
        BenchmarkSpec(
            name="idctrn",
            family="idctrn",
            instructions=78_000,
            mix=InstructionMix(load=0.28, store=0.12, branch=0.07,
                               int_op=0.33, fp_op=0.20),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=2048, stride=8), 2.5),
                    (StridedAccess(region_bytes=1280, stride=64), 1.0),
                ),
            ),
            description="Inverse DCT: 8x8 block transforms over a "
                        "mid-sized frame buffer with row/column walks.",
        ),
        BenchmarkSpec(
            name="iirflt",
            family="iirflt",
            instructions=63_000,
            mix=InstructionMix(load=0.29, store=0.09, branch=0.09,
                               int_op=0.27, fp_op=0.26),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=832, stride=4), 3.5),
                    (SequentialStream(region_bytes=24_576, stride=4), 1.0),
                ),
            ),
            description="IIR filter: biquad state smaller than a page, "
                        "reused every sample.",
        ),
        BenchmarkSpec(
            name="matrix",
            family="matrix",
            instructions=104_000,
            mix=InstructionMix(load=0.31, store=0.10, branch=0.06,
                               int_op=0.28, fp_op=0.25),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=5632, stride=8), 2.0),
                    (StridedAccess(region_bytes=2048, stride=104), 0.8),
                ),
            ),
            description="Matrix arithmetic: row sweeps and column strides "
                        "over matrices larger than the mid-size caches.",
        ),
        BenchmarkSpec(
            name="pntrch",
            family="pntrch",
            instructions=70_000,
            mix=InstructionMix(load=0.36, store=0.05, branch=0.16,
                               int_op=0.42, fp_op=0.01),
            trace_mix=TraceMix(
                components=(
                    (PointerChase(region_bytes=7424, node_bytes=16), 3.0),
                    (SequentialStream(region_bytes=8192, stride=4), 0.5),
                ),
            ),
            description="Pointer chase: repeated traversal of a linked "
                        "structure spanning most of an 8 KB cache.",
        ),
        BenchmarkSpec(
            name="puwmod",
            family="puwmod",
            instructions=36_000,
            mix=InstructionMix(load=0.21, store=0.10, branch=0.18,
                               int_op=0.49, fp_op=0.02),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=576, stride=4), 4.0),
                ),
            ),
            description="Pulse-width modulation: tiny control state, "
                        "almost no memory pressure.",
        ),
        BenchmarkSpec(
            name="rspeed",
            family="rspeed",
            instructions=57_000,
            mix=InstructionMix(load=0.23, store=0.09, branch=0.16,
                               int_op=0.49, fp_op=0.03),
            trace_mix=TraceMix(
                components=(
                    (LoopedArray(region_bytes=896, stride=4), 3.0),
                    (SequentialStream(region_bytes=12_288, stride=8), 0.8),
                ),
            ),
            description="Road speed calculation: small lookup/state arrays "
                        "with a periodic sensor stream.",
        ),
        BenchmarkSpec(
            name="tblook",
            family="tblook",
            instructions=64_000,
            mix=InstructionMix(load=0.34, store=0.06, branch=0.13,
                               int_op=0.44, fp_op=0.03),
            trace_mix=TraceMix(
                components=(
                    (HotspotAccess(region_bytes=5632, skew=1.2), 2.5),
                    (LoopedArray(region_bytes=4864, stride=16), 1.0),
                ),
            ),
            description="Table lookup: skewed references into interpolation "
                        "tables larger than the mid-size caches.",
        ),
    ]
    return specs


_SUITE_CACHE: Dict[str, BenchmarkSpec] = {}


def eembc_suite() -> List[BenchmarkSpec]:
    """The fifteen-benchmark synthetic EEMBC-analogue suite."""
    if not _SUITE_CACHE:
        for spec in _suite():
            _SUITE_CACHE[spec.name] = spec
    return [_SUITE_CACHE[name] for name in EEMBC_NAMES]


def eembc_benchmark(name: str) -> BenchmarkSpec:
    """Look up one suite benchmark by name."""
    eembc_suite()
    try:
        return _SUITE_CACHE[name]
    except KeyError:
        raise ValueError(
            f"unknown EEMBC benchmark {name!r}; choose from {EEMBC_NAMES}"
        ) from None
