"""Trace locality analysis.

Tools for understanding *why* a benchmark prefers a cache size — the
classical locality instruments behind the paper's premise that
applications differ in their best configuration:

* :func:`reuse_distance_histogram` — LRU stack distances over line
  addresses: the mass below a cache's line capacity predicts its hit
  rate under full associativity.
* :func:`working_set_curve` — distinct lines touched per time window
  (Denning's working set), the quantity the benchmark designs in
  :mod:`repro.workloads.eembc` control.
* :func:`miss_ratio_curve` — measured miss ratio per cache size via the
  cache simulator, the curve whose knee locates the best size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.cache import simulate_trace
from repro.cache.config import CACHE_SIZES_KB, CacheConfig

__all__ = [
    "reuse_distance_histogram",
    "working_set_curve",
    "miss_ratio_curve",
]


def _line_addresses(addresses: Sequence[int], line_b: int) -> List[int]:
    if line_b <= 0 or line_b & (line_b - 1):
        raise ValueError(f"line_b must be a positive power of two: {line_b}")
    if isinstance(addresses, np.ndarray):
        return (addresses.astype(np.int64) // line_b).tolist()
    return [int(a) // line_b for a in addresses]


def reuse_distance_histogram(
    addresses: Sequence[int],
    line_b: int = 32,
) -> Dict[int, int]:
    """LRU stack-distance histogram over line addresses.

    Returns ``{distance: count}`` where distance is the number of
    *distinct* lines touched since the previous access to the same line
    (0 = immediate re-reference); cold first touches appear under the
    key ``-1``.  A fully-associative LRU cache of capacity C lines hits
    exactly the accesses with distance < C.
    """
    lines = _line_addresses(addresses, line_b)
    stack: List[int] = []  # MRU first
    histogram: Dict[int, int] = {}
    for line in lines:
        try:
            depth = stack.index(line)
        except ValueError:
            histogram[-1] = histogram.get(-1, 0) + 1
            stack.insert(0, line)
            continue
        histogram[depth] = histogram.get(depth, 0) + 1
        del stack[depth]
        stack.insert(0, line)
    return histogram


def working_set_curve(
    addresses: Sequence[int],
    window: int = 1000,
    line_b: int = 32,
    stride: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Distinct lines per window of accesses (Denning working set).

    Returns ``[(window_start_index, distinct_lines), ...]`` sampled
    every ``stride`` accesses (defaults to the window size, i.e.
    non-overlapping windows).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    lines = _line_addresses(addresses, line_b)
    step = stride if stride is not None else window
    if step <= 0:
        raise ValueError(f"stride must be positive, got {step}")
    curve: List[Tuple[int, int]] = []
    for start in range(0, max(1, len(lines) - window + 1), step):
        chunk = lines[start : start + window]
        if not chunk:
            break
        curve.append((start, len(set(chunk))))
    return curve


def miss_ratio_curve(
    addresses: Sequence[int],
    sizes_kb: Sequence[int] = CACHE_SIZES_KB,
    *,
    assoc: int = 1,
    line_b: int = 32,
) -> Dict[int, float]:
    """Measured miss ratio per cache size (the curve's knee locates the
    benchmark's natural capacity).

    Sizes must be organisable with the given associativity and line
    size; the simulation uses LRU write-allocate caches like the
    characterisation fast path.
    """
    if not sizes_kb:
        raise ValueError("need at least one cache size")
    curve: Dict[int, float] = {}
    for size_kb in sizes_kb:
        config = CacheConfig(size_kb=size_kb, assoc=assoc, line_b=line_b)
        stats = simulate_trace(addresses, config)
        curve[size_kb] = stats.miss_rate
    return curve
