"""Synthetic memory-address trace generators.

The paper drove its characterisation with SimpleScalar running the EEMBC
suite.  Neither is available offline, so benchmarks are modelled as
mixtures of *trace components*, each reproducing one canonical memory
access behaviour:

* :class:`SequentialStream` — streaming data (DSP input buffers): pure
  spatial locality, no reuse.
* :class:`LoopedArray` — a working set swept repeatedly (filter state,
  lookup tables): temporal + spatial locality bounded by the array size.
* :class:`StridedAccess` — column walks / FFT butterflies: spatial
  locality defeated by large strides.
* :class:`PointerChase` — linked structures: temporal locality with
  randomised spatial order.
* :class:`RandomAccess` — uniformly random references in a region.
* :class:`HotspotAccess` — Zipf-skewed references (branch tables, hot
  records).

A :class:`TraceMix` weights components and interleaves their streams in
fixed-size chunks, approximating a program alternating between phases.
All generation is numpy-vectorised and deterministic given the seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "TraceComponent",
    "SequentialStream",
    "LoopedArray",
    "StridedAccess",
    "PointerChase",
    "RandomAccess",
    "HotspotAccess",
    "TraceMix",
    "PhasedTraceMix",
    "interleave_chunks",
]

#: Default chunk length (accesses) used when interleaving phase streams.
DEFAULT_CHUNK = 64

#: Address alignment granule for generated accesses (a 32-bit word).
WORD_BYTES = 4


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


class TraceComponent(ABC):
    """One access-pattern building block.

    Every component generates ``n`` byte addresses inside a region placed
    at ``base`` by the caller; components never overlap because the mix
    assigns disjoint bases.
    """

    #: Bytes of address space the component needs.
    region_bytes: int

    @abstractmethod
    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` byte addresses (int64 numpy array)."""

    def _empty(self) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class SequentialStream(TraceComponent):
    """Monotonically advancing stream with a fixed small stride.

    Models input/output buffers consumed once: only spatial locality, and
    a footprint proportional to the trace length (wraps at
    ``region_bytes`` so addresses stay bounded).
    """

    region_bytes: int = 64 * 1024
    stride: int = WORD_BYTES

    def __post_init__(self) -> None:
        _check_positive("region_bytes", self.region_bytes)
        _check_positive("stride", self.stride)

    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._empty()
        offsets = (np.arange(n, dtype=np.int64) * self.stride) % self.region_bytes
        return base + offsets


@dataclass(frozen=True)
class LoopedArray(TraceComponent):
    """A working set swept start-to-end repeatedly.

    The array of ``region_bytes`` is walked with ``stride`` over and over,
    so the temporal reuse distance equals the working set: the component
    hits almost always in any cache larger than the array and thrashes
    any cache smaller than it.  This is the component that differentiates
    the benchmarks' best cache sizes.
    """

    region_bytes: int = 2048
    stride: int = WORD_BYTES

    def __post_init__(self) -> None:
        _check_positive("region_bytes", self.region_bytes)
        _check_positive("stride", self.stride)
        if self.stride > self.region_bytes:
            raise ValueError("stride larger than the array")

    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._empty()
        sweep = np.arange(0, self.region_bytes, self.stride, dtype=np.int64)
        repeats = -(-n // len(sweep))  # ceil division
        return base + np.tile(sweep, repeats)[:n]


@dataclass(frozen=True)
class StridedAccess(TraceComponent):
    """Large-stride walk wrapped inside a region (column-major walks)."""

    region_bytes: int = 8192
    stride: int = 256

    def __post_init__(self) -> None:
        _check_positive("region_bytes", self.region_bytes)
        _check_positive("stride", self.stride)

    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._empty()
        # Offset successive wraps by one word so columns shift, the way a
        # column-major matrix walk advances to the next column.
        raw = np.arange(n, dtype=np.int64) * self.stride
        wraps = raw // self.region_bytes
        offsets = (raw + wraps * WORD_BYTES) % self.region_bytes
        return base + offsets


@dataclass(frozen=True)
class PointerChase(TraceComponent):
    """Repeated traversal of a randomly-ordered linked structure.

    Nodes are laid out in a shuffled order fixed at generation time and
    the whole chain is walked repeatedly: full temporal reuse of the
    region but no spatial predictability, so line size barely helps while
    capacity dominates.
    """

    region_bytes: int = 4096
    node_bytes: int = 16

    def __post_init__(self) -> None:
        _check_positive("region_bytes", self.region_bytes)
        _check_positive("node_bytes", self.node_bytes)
        if self.node_bytes > self.region_bytes:
            raise ValueError("node larger than the region")

    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._empty()
        num_nodes = max(1, self.region_bytes // self.node_bytes)
        order = rng.permutation(num_nodes).astype(np.int64)
        repeats = -(-n // num_nodes)
        walk = np.tile(order, repeats)[:n]
        return base + walk * self.node_bytes


@dataclass(frozen=True)
class RandomAccess(TraceComponent):
    """Uniformly random word accesses in a region (hash tables, scatter)."""

    region_bytes: int = 16384

    def __post_init__(self) -> None:
        _check_positive("region_bytes", self.region_bytes)

    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._empty()
        words = max(1, self.region_bytes // WORD_BYTES)
        return base + rng.integers(0, words, size=n, dtype=np.int64) * WORD_BYTES


@dataclass(frozen=True)
class HotspotAccess(TraceComponent):
    """Zipf-skewed accesses: a few lines take most references.

    ``skew`` is the Zipf exponent; larger values concentrate references
    on fewer addresses (models lookup tables with popular entries).
    """

    region_bytes: int = 8192
    skew: float = 1.3

    def __post_init__(self) -> None:
        _check_positive("region_bytes", self.region_bytes)
        if self.skew <= 1.0:
            raise ValueError(f"skew must exceed 1.0, got {self.skew}")

    def generate(self, n: int, base: int, rng: np.random.Generator) -> np.ndarray:
        if n == 0:
            return self._empty()
        words = max(1, self.region_bytes // WORD_BYTES)
        ranks = rng.zipf(self.skew, size=n).astype(np.int64)
        # Zipf is unbounded; wrap into the region while preserving the
        # skew toward low ranks.
        offsets = (ranks - 1) % words
        # Scatter ranks over the region deterministically so the hot
        # addresses are not all adjacent.
        scatter = rng.permutation(words).astype(np.int64)
        return base + scatter[offsets] * WORD_BYTES


def interleave_chunks(
    streams: Sequence[np.ndarray], chunk: int = DEFAULT_CHUNK
) -> np.ndarray:
    """Interleave address streams in round-robin chunks.

    Takes ``chunk`` accesses from each non-exhausted stream in turn,
    approximating a program alternating between its phases at a basic
    block granularity.  All input order within each stream is preserved.
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    streams = [s for s in streams if len(s)]
    if not streams:
        return np.zeros(0, dtype=np.int64)
    pieces: List[np.ndarray] = []
    positions = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining > 0:
        for i, stream in enumerate(streams):
            start = positions[i]
            if start >= len(stream):
                continue
            stop = min(start + chunk, len(stream))
            pieces.append(stream[start:stop])
            positions[i] = stop
            remaining -= stop - start
    return np.concatenate(pieces)


@dataclass(frozen=True)
class TraceMix:
    """Weighted mixture of trace components.

    Attributes
    ----------
    components:
        ``(component, weight)`` pairs; weights are normalised to
        fractions of the total access count.
    chunk:
        Interleaving granularity in accesses.
    region_gap_bytes:
        Guard gap between component regions (keeps them in disjoint
        cache-set footprints only insofar as real data structures are).
    """

    components: Tuple[Tuple[TraceComponent, float], ...]
    chunk: int = DEFAULT_CHUNK
    region_gap_bytes: int = 4096

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("TraceMix needs at least one component")
        for component, weight in self.components:
            if weight <= 0:
                raise ValueError(f"component weight must be positive: {weight}")
        if self.chunk <= 0:
            raise ValueError("chunk must be positive")

    @property
    def total_weight(self) -> float:
        return sum(weight for _, weight in self.components)

    @property
    def footprint_bytes(self) -> int:
        """Total address-space footprint of all component regions."""
        return sum(
            component.region_bytes + self.region_gap_bytes
            for component, _ in self.components
        )

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` interleaved byte addresses."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        total = self.total_weight
        streams: List[np.ndarray] = []
        base = 0x1000  # leave page zero unused, like a real loader
        allocated = 0
        for component, weight in self.components:
            share = int(round(n * weight / total))
            streams.append(component.generate(share, base, rng))
            base += component.region_bytes + self.region_gap_bytes
            allocated += share
        # Rounding may drop/add a few accesses; pad with the first
        # component to hit exactly n.
        trace = interleave_chunks(streams, chunk=self.chunk)
        if len(trace) > n:
            trace = trace[:n]
        elif len(trace) < n:
            first_component = self.components[0][0]
            pad = first_component.generate(n - len(trace), 0x1000, rng)
            trace = np.concatenate([trace, pad])
        return trace


@dataclass(frozen=True)
class PhasedTraceMix:
    """A program with distinct execution phases.

    Real applications move through phases with different locality
    (Sherwood et al.'s phase tracking, cited by the paper as related
    predictive work): an input-parsing phase may stream, a compute
    phase may sweep a small working set.  A :class:`PhasedTraceMix`
    concatenates per-phase :class:`TraceMix` traces in order, weighting
    each phase by its share of the reference stream.

    The paper's scheduler profiles each application *once* and picks a
    *single* configuration per core — phased applications are exactly
    where that assumption costs energy, which the phased-benchmark
    ablation quantifies.
    """

    phases: Tuple[Tuple["TraceMix", float], ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("PhasedTraceMix needs at least one phase")
        for mix, share in self.phases:
            if share <= 0:
                raise ValueError(f"phase share must be positive: {share}")

    @property
    def total_weight(self) -> float:
        """Sum of phase shares (kept for TraceMix interface parity)."""
        return sum(share for _, share in self.phases)

    @property
    def footprint_bytes(self) -> int:
        """Upper bound: phases may reuse address space, so the union of
        per-phase footprints bounds the true footprint."""
        return max(mix.footprint_bytes for mix, _ in self.phases)

    @property
    def components(self) -> Tuple[Tuple[TraceComponent, float], ...]:
        """All phases' components (for variant jittering)."""
        out = []
        for mix, share in self.phases:
            for component, weight in mix.components:
                out.append((component, weight * share))
        return tuple(out)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n`` addresses: each phase's block in order."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        total = self.total_weight
        pieces: List[np.ndarray] = []
        produced = 0
        for i, (mix, share) in enumerate(self.phases):
            if i == len(self.phases) - 1:
                count = n - produced  # absorb rounding in the last phase
            else:
                count = int(round(n * share / total))
            count = max(0, min(count, n - produced))
            pieces.append(mix.generate(count, rng))
            produced += count
        return np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
