"""Generic BENCH_*.json threshold scanning and the perf-trajectory table."""

import json

import pytest

from repro.analysis.bench import (
    BenchCheck,
    bench_checks,
    load_bench_artifacts,
    render_bench_report,
)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestLoading:
    def test_loads_sorted_and_ignores_other_files(self, tmp_path):
        _write(tmp_path, "BENCH_b.json", {"benchmark": "b"})
        _write(tmp_path, "BENCH_a.json", {"benchmark": "a"})
        _write(tmp_path, "other.json", {"benchmark": "nope"})
        artifacts = load_bench_artifacts(tmp_path)
        assert [p.name for p, _ in artifacts] == [
            "BENCH_a.json", "BENCH_b.json",
        ]

    def test_rejects_invalid_json(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(ValueError, match="BENCH_bad.json"):
            load_bench_artifacts(tmp_path)

    def test_rejects_non_object(self, tmp_path):
        _write(tmp_path, "BENCH_list.json", [1, 2])
        with pytest.raises(ValueError, match="JSON object"):
            load_bench_artifacts(tmp_path)

    def test_empty_directory(self, tmp_path):
        assert load_bench_artifacts(tmp_path) == []


class TestThresholdScan:
    def test_min_required_is_a_floor(self, tmp_path):
        path = _write(tmp_path, "BENCH_speed.json", {
            "benchmark": "speed", "speedup": 12.0,
            "min_speedup_required": 10.0,
        })
        (check,) = bench_checks(load_bench_artifacts(tmp_path))
        assert check == BenchCheck(
            benchmark="speed", metric="speedup", measured=12.0,
            kind="floor", bound=10.0, source=str(path),
        )
        assert check.ok
        assert check.margin == pytest.approx(0.2)

    def test_max_allowed_and_bare_max_are_ceilings(self, tmp_path):
        _write(tmp_path, "BENCH_s.json", {
            "benchmark": "s",
            "slowdown": 1.8, "max_slowdown_allowed": 1.5,
            "rss_growth_mib": 64.0, "max_rss_growth_mib": 256,
        })
        checks = {c.metric: c
                  for c in bench_checks(load_bench_artifacts(tmp_path))}
        assert not checks["slowdown"].ok
        assert checks["slowdown"].margin == pytest.approx(-0.2)
        assert checks["rss_growth_mib"].ok
        assert checks["rss_growth_mib"].margin == pytest.approx(0.75)

    def test_threshold_without_measured_metric_is_skipped(self, tmp_path):
        _write(tmp_path, "BENCH_x.json", {
            "benchmark": "x", "min_ghost_required": 1.0,
            "max_enabled": True, "bit_identical": True,
        })
        assert bench_checks(load_bench_artifacts(tmp_path)) == []

    def test_name_falls_back_to_file_stem(self, tmp_path):
        _write(tmp_path, "BENCH_anon.json", {
            "speed": 2.0, "min_speed": 1.0,
        })
        (check,) = bench_checks(load_bench_artifacts(tmp_path))
        assert check.benchmark == "anon"

    def test_zero_bound_degenerates_to_absolute_headroom(self, tmp_path):
        _write(tmp_path, "BENCH_z.json", {
            "benchmark": "z", "growth": 3.0, "max_growth_allowed": 0.0,
        })
        (check,) = bench_checks(load_bench_artifacts(tmp_path))
        assert not check.ok
        assert check.margin == pytest.approx(-3.0)


class TestRendering:
    def test_report_table_and_summary(self, tmp_path):
        _write(tmp_path, "BENCH_speed.json", {
            "benchmark": "speed", "speedup": 12.0,
            "min_speedup_required": 10.0,
        })
        _write(tmp_path, "BENCH_slow.json", {
            "benchmark": "slow", "slowdown": 1.8,
            "max_slowdown_allowed": 1.5,
        })
        text = render_bench_report(load_bench_artifacts(tmp_path))
        assert "speedup" in text and ">= 10" in text
        assert "FAIL" in text and "ok" in text
        assert "2 artifact(s), 2 check(s), 1 FAILING" in text

    def test_report_without_checks(self, tmp_path):
        _write(tmp_path, "BENCH_plain.json", {"benchmark": "plain"})
        text = render_bench_report(load_bench_artifacts(tmp_path))
        assert "no threshold checks" in text

    def test_real_repo_artifacts_parse(self):
        # The artifacts checked into the repo root (written by the
        # tier-2 suite) must always scan cleanly.
        artifacts = load_bench_artifacts(".")
        if not artifacts:  # pragma: no cover - fresh checkout
            pytest.skip("no BENCH_*.json artifacts present")
        checks = bench_checks(artifacts)
        assert checks
        render_bench_report(artifacts)
