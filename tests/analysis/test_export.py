"""Tests for CSV/JSON result export."""

import csv
import json

import pytest

from repro.analysis.export import (
    JOB_FIELDS,
    SUMMARY_FIELDS,
    jobs_to_csv,
    result_summary_dict,
    results_to_csv,
    results_to_json,
)
from repro.core.results import JobRecord, SimulationResult


def make_result(policy="proposed"):
    jobs = [
        JobRecord(
            job_id=0, benchmark="a2time", arrival_cycle=0, start_cycle=10,
            completion_cycle=110, core_index=1, config_name="2KB_1W_16B",
            profiled=True, tuning=False, energy_nj=42.5, priority=1,
            deadline_cycle=500,
        ),
        JobRecord(
            job_id=1, benchmark="matrix", arrival_cycle=5, start_cycle=20,
            completion_cycle=220, core_index=3, config_name="8KB_4W_64B",
            profiled=False, tuning=True, energy_nj=99.0,
        ),
    ]
    return SimulationResult(
        policy=policy, jobs_completed=2, makespan_cycles=220,
        idle_energy_nj=10.0, dynamic_energy_nj=100.0,
        busy_static_energy_nj=30.0, reconfig_energy_nj=1.0,
        profiling_overhead_nj=0.1, reconfig_cycles=5, stall_decisions=1,
        non_best_decisions=2, tuning_executions=1, profiling_executions=1,
        exploration_counts={"a2time": 3}, predictions_kb={"a2time": 2},
        jobs=jobs,
    )


class TestSummaryDict:
    def test_all_fields_present(self):
        summary = result_summary_dict(make_result())
        assert set(summary) == set(SUMMARY_FIELDS)
        assert summary["policy"] == "proposed"
        assert summary["total_energy_nj"] == pytest.approx(140.0)
        assert summary["deadline_misses"] == 0


class TestJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        results_to_json({"proposed": make_result()}, path)
        blob = json.loads(path.read_text())
        assert blob["proposed"]["jobs_completed"] == 2
        assert blob["proposed"]["exploration_counts"] == {"a2time": 3}
        assert "jobs" not in blob["proposed"]

    def test_include_jobs(self, tmp_path):
        path = tmp_path / "results.json"
        results_to_json({"proposed": make_result()}, path, include_jobs=True)
        blob = json.loads(path.read_text())
        jobs = blob["proposed"]["jobs"]
        assert len(jobs) == 2
        assert jobs[0]["benchmark"] == "a2time"
        assert jobs[0]["deadline_cycle"] == 500
        assert jobs[1]["deadline_cycle"] is None


class TestEdgeCases:
    def make_empty(self):
        return SimulationResult(
            policy="proposed", jobs_completed=0, makespan_cycles=0,
            idle_energy_nj=0.0, dynamic_energy_nj=0.0,
            busy_static_energy_nj=0.0, reconfig_energy_nj=0.0,
            profiling_overhead_nj=0.0, reconfig_cycles=0,
            stall_decisions=0, non_best_decisions=0, tuning_executions=0,
            profiling_executions=0,
        )

    def test_empty_result_exports(self, tmp_path):
        empty = self.make_empty()
        summary = result_summary_dict(empty)
        assert summary["jobs_completed"] == 0
        assert summary["deadline_misses"] == 0

        csv_path = tmp_path / "jobs.csv"
        jobs_to_csv(empty, csv_path)
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [list(JOB_FIELDS)]  # header only

        json_path = tmp_path / "results.json"
        results_to_json({"proposed": empty}, json_path, include_jobs=True)
        assert json.loads(json_path.read_text())["proposed"]["jobs"] == []

    def test_single_result_csv(self, tmp_path):
        path = tmp_path / "summary.csv"
        results_to_csv({"proposed": make_result()}, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 2

    def test_csv_values_round_trip(self, tmp_path):
        """The CSV is a faithful projection: parsing it back recovers
        the summary dict's values."""
        result = make_result()
        path = tmp_path / "summary.csv"
        results_to_csv({"proposed": result}, path)
        with open(path) as handle:
            row = next(csv.DictReader(handle))
        summary = result_summary_dict(result)
        for field in SUMMARY_FIELDS:
            text = row[field]
            expected = summary[field]
            if isinstance(expected, str):
                assert text == expected
            else:
                assert float(text) == pytest.approx(float(expected))


class TestCsv:
    def test_jobs_csv(self, tmp_path):
        path = tmp_path / "jobs.csv"
        jobs_to_csv(make_result(), path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(JOB_FIELDS)
        assert len(rows) == 3
        assert rows[1][1] == "a2time"

    def test_summary_csv(self, tmp_path):
        path = tmp_path / "summary.csv"
        results_to_csv(
            {"base": make_result("base"), "proposed": make_result()}, path
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(SUMMARY_FIELDS)
        assert len(rows) == 3
        assert {rows[1][0], rows[2][0]} == {"base", "proposed"}
