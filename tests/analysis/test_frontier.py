"""Tests for the energy / deadline-miss trade-off frontier."""

import pytest

from repro.analysis.frontier import (
    DEFAULT_MISS_KEY,
    FrontierPoint,
    frontier_points,
    pareto_front,
    render_frontier,
)
from repro.campaign import DagLoad, power_grid, run_campaign
from repro.experiment import default_store


def point(policy="proposed", power=None, energy=1.0, miss=0.0):
    return FrontierPoint(
        policy=policy, power=power, energy_nj=energy, energy_ci95=0.0,
        miss_rate=miss, miss_ci95=0.0, n=1,
    )


class TestParetoFront:
    def test_single_point_is_optimal(self):
        marked = pareto_front([point()])
        assert marked[0].pareto

    def test_domination(self):
        # b dominates a (less energy, fewer misses); c trades off.
        a = point(power="loose", energy=10.0, miss=0.5)
        b = point(power="mid", energy=5.0, miss=0.2)
        c = point(power="tight", energy=2.0, miss=0.9)
        marked = {p.power: p.pareto for p in pareto_front([a, b, c])}
        assert marked == {"loose": False, "mid": True, "tight": True}

    def test_equal_points_both_survive(self):
        twins = [point(power="x", energy=3.0, miss=0.1),
                 point(power="y", energy=3.0, miss=0.1)]
        assert all(p.pareto for p in pareto_front(twins))

    def test_policies_do_not_dominate_each_other(self):
        cheap_edf = point(policy="edf", power="a", energy=1.0, miss=0.0)
        dear_heft = point(policy="heft", power="a", energy=9.0, miss=0.9)
        marked = pareto_front([cheap_edf, dear_heft])
        assert all(p.pareto for p in marked)

    def test_uncapped_label(self):
        assert point(power=None).label == "uncapped"
        assert point(power="cap=1e+06").label == "cap=1e+06"


class TestFrontierFromCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        store = default_store(cache_path=None)
        return run_campaign(
            store,
            policies=("proposed", "edf"),
            seeds=(0, 1),
            loads=((12, 9_000),),
            dag=DagLoad(deadline_slack=1.3),
            power_configs=power_grid([None, 600_000.0, 300_000.0]),
        )

    def test_points_cover_the_power_axis(self, campaign):
        points = frontier_points(campaign)
        assert len(points) == 6  # 2 policies x 3 power cells
        labels = {p.label for p in points}
        assert labels == {"uncapped", "cap=600000", "cap=300000"}
        # Energy-ascending within each policy, and someone is optimal.
        for policy in ("proposed", "edf"):
            energies = [p.energy_nj for p in points if p.policy == policy]
            assert energies == sorted(energies)
            assert any(p.pareto for p in points if p.policy == policy)

    def test_policy_filter(self, campaign):
        points = frontier_points(campaign, policy="edf")
        assert points and all(p.policy == "edf" for p in points)

    def test_render(self, campaign):
        table = render_frontier(campaign)
        lines = table.splitlines()
        assert "pareto" in lines[0]
        assert len(lines) == 2 + 6  # header + rule + one row per point
        assert any(line.rstrip().endswith("*") for line in lines)
        assert "uncapped" in table and "cap=300000" in table

    def test_needs_deadline_carrying_cells(self):
        store = default_store(cache_path=None)
        plain = run_campaign(
            store,
            policies=("proposed",),
            seeds=(0,),
            loads=((10, 20_000),),
            power_configs=power_grid([None, 500_000.0]),
        )
        with pytest.raises(KeyError, match=DEFAULT_MISS_KEY):
            frontier_points(plain)
