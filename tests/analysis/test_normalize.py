"""Tests for result normalisation."""

import pytest

from repro.analysis.normalize import METRICS, normalize_results, percent_change
from repro.core.results import SimulationResult


def make_result(policy, idle, dynamic, static, makespan):
    return SimulationResult(
        policy=policy, jobs_completed=1, makespan_cycles=makespan,
        idle_energy_nj=idle, dynamic_energy_nj=dynamic,
        busy_static_energy_nj=static, reconfig_energy_nj=0.0,
        profiling_overhead_nj=0.0, reconfig_cycles=0, stall_decisions=0,
        non_best_decisions=0, tuning_executions=0, profiling_executions=0,
    )


class TestNormalize:
    def test_baseline_is_unity(self):
        results = {
            "base": make_result("base", 100, 200, 0, 1000),
            "proposed": make_result("proposed", 50, 100, 0, 900),
        }
        normalized = normalize_results(results, "base")
        for metric in METRICS:
            assert normalized["base"][metric] == pytest.approx(1.0)

    def test_ratios(self):
        results = {
            "base": make_result("base", 100, 200, 100, 1000),
            "proposed": make_result("proposed", 50, 100, 50, 800),
        }
        normalized = normalize_results(results, "base")
        assert normalized["proposed"]["idle_energy"] == pytest.approx(0.5)
        assert normalized["proposed"]["total_energy"] == pytest.approx(0.5)
        assert normalized["proposed"]["cycles"] == pytest.approx(0.8)

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalize_results(
                {"a": make_result("a", 1, 1, 1, 1)}, baseline="base"
            )

    def test_order_preserved(self):
        results = {
            "optimal": make_result("optimal", 1, 1, 1, 1),
            "base": make_result("base", 1, 1, 1, 1),
        }
        assert list(normalize_results(results, "base")) == ["optimal", "base"]


class TestEdgeCases:
    def test_baseline_only(self):
        results = {"base": make_result("base", 10, 20, 5, 100)}
        normalized = normalize_results(results, "base")
        assert list(normalized) == ["base"]
        for metric in METRICS:
            assert normalized["base"][metric] == pytest.approx(1.0)

    def test_metric_set_is_stable(self):
        # The figure renderers index by these names; a silent rename
        # would produce empty columns.
        assert set(METRICS) == {
            "idle_energy", "dynamic_energy", "total_energy", "cycles"
        }
        normalized = normalize_results(
            {"base": make_result("base", 1, 1, 1, 1)}, "base"
        )
        assert set(normalized["base"]) == set(METRICS)


class TestPercentChange:
    def test_reduction(self):
        assert percent_change(0.72) == pytest.approx(-28.0)

    def test_increase(self):
        assert percent_change(1.02) == pytest.approx(2.0)

    def test_unity(self):
        assert percent_change(1.0) == 0.0
