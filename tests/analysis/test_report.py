"""Tests for the text reporting helpers."""

import pytest

from repro.analysis.report import (
    format_table,
    render_figure6,
    render_figure7,
    render_result_summary,
)
from repro.core.results import SimulationResult


def make_result(policy, idle=100.0, dynamic=200.0, static=50.0, makespan=1000):
    return SimulationResult(
        policy=policy, jobs_completed=10, makespan_cycles=makespan,
        idle_energy_nj=idle, dynamic_energy_nj=dynamic,
        busy_static_energy_nj=static, reconfig_energy_nj=1.0,
        profiling_overhead_nj=0.5, reconfig_cycles=10, stall_decisions=2,
        non_best_decisions=3, tuning_executions=4, profiling_executions=5,
    )


ALL = {
    "base": make_result("base"),
    "optimal": make_result("optimal", idle=90, dynamic=150, makespan=1100),
    "energy_centric": make_result("energy_centric", idle=110, dynamic=90),
    "proposed": make_result("proposed", idle=70, dynamic=95, makespan=900),
}


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(("name", "value"), [("a", 1.5), ("bb", 2.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.500" in lines[2]

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert len(text.splitlines()) == 2

    def test_custom_float_format(self):
        text = format_table(("x",), [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in text


class TestFigureRendering:
    def test_figure6_mentions_all_systems(self):
        text = render_figure6(ALL)
        for name in ALL:
            assert name in text
        assert "baseline = base" in text

    def test_figure7_normalised_to_optimal(self):
        text = render_figure7(ALL)
        assert "baseline = optimal" in text
        assert "cycles" in text

    def test_figure6_requires_base(self):
        partial = {k: v for k, v in ALL.items() if k != "base"}
        with pytest.raises(KeyError):
            render_figure6(partial)

    def test_summary_contains_key_metrics(self):
        text = render_result_summary(ALL["proposed"])
        assert "proposed" in text
        assert "makespan" in text
        assert "stall decisions" in text


class TestBenchmarkBreakdown:
    def test_groups_by_benchmark(self):
        from repro.analysis.report import render_benchmark_breakdown
        from repro.core.results import JobRecord

        result = make_result("proposed")
        result.jobs.extend([
            JobRecord(job_id=0, benchmark="a2time", arrival_cycle=0,
                      start_cycle=0, completion_cycle=10, core_index=0,
                      config_name="2KB_1W_16B", profiled=False, tuning=False,
                      energy_nj=100.0),
            JobRecord(job_id=1, benchmark="a2time", arrival_cycle=0,
                      start_cycle=5, completion_cycle=20, core_index=1,
                      config_name="4KB_1W_16B", profiled=False, tuning=True,
                      energy_nj=200.0),
            JobRecord(job_id=2, benchmark="matrix", arrival_cycle=0,
                      start_cycle=0, completion_cycle=30, core_index=3,
                      config_name="8KB_1W_64B", profiled=True, tuning=False,
                      energy_nj=300.0),
        ])
        text = render_benchmark_breakdown(result)
        assert "a2time" in text
        assert "matrix" in text
        assert "2 configs" in text       # a2time used two configurations
        assert "8KB_1W_64B" in text      # matrix used exactly one
        assert "1,2" in text             # a2time's cores (1-based)

    def test_empty_result(self):
        from repro.analysis.report import render_benchmark_breakdown

        text = render_benchmark_breakdown(make_result("base"))
        assert "per-benchmark breakdown" in text


class TestEnergyDecomposition:
    def test_covers_design_space(self):
        from repro.analysis.report import render_energy_decomposition

        text = render_energy_decomposition()
        assert "2KB_1W_16B" in text
        assert "8KB_4W_64B" in text
        assert "bitline" in text

    def test_totals_match_model(self):
        from repro.analysis.report import render_energy_decomposition
        from repro.cache.config import CacheConfig
        from repro.energy.cacti import CactiModel

        config = CacheConfig(4, 2, 32)
        text = render_energy_decomposition([config])
        total = CactiModel().access_energy_nj(config)
        assert f"{total:.3f}" in text
