"""Tests for activation functions, including numerical gradient checks."""

import numpy as np
import pytest

from repro.ann.activations import (
    ACTIVATION_NAMES,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    make_activation,
)

ALL = [Identity(), Tanh(), Sigmoid(), ReLU(), LeakyReLU()]


def numerical_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.ravel()
    out = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x).sum()
        flat[i] = orig - eps
        down = fn(x).sum()
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    return grad


class TestValues:
    def test_identity(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert (Identity().forward(x) == x).all()

    def test_tanh_range(self):
        y = Tanh().forward(np.linspace(-5, 5, 50))
        assert (np.abs(y) < 1).all()

    def test_sigmoid_range_and_midpoint(self):
        sigmoid = Sigmoid()
        y = sigmoid.forward(np.linspace(-30, 30, 100))
        assert ((y > 0) & (y < 1)).all()
        assert sigmoid.forward(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_numerically_stable(self):
        y = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(1.0)

    def test_relu(self):
        y = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert y.tolist() == [0.0, 0.0, 2.0]

    def test_leaky_relu(self):
        y = LeakyReLU(slope=0.1).forward(np.array([-10.0, 5.0]))
        assert y.tolist() == [-1.0, 5.0]

    def test_leaky_relu_validates_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(slope=-0.5)


class TestGradients:
    @pytest.mark.parametrize("act", ALL, ids=lambda a: a.name)
    def test_matches_numerical_gradient(self, act):
        rng = np.random.default_rng(0)
        # Avoid the ReLU kink at exactly zero.
        x = rng.normal(size=(4, 5)) + 0.01
        analytic = act.backward(x, np.ones_like(x))
        numeric = numerical_grad(act.forward, x.copy())
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_backward_scales_with_upstream(self):
        act = Tanh()
        x = np.array([[0.5]])
        g1 = act.backward(x, np.array([[1.0]]))
        g2 = act.backward(x, np.array([[2.0]]))
        assert g2 == pytest.approx(2 * g1)


class TestRegistry:
    def test_all_names(self):
        assert set(ACTIVATION_NAMES) == {
            "identity", "leaky_relu", "relu", "sigmoid", "tanh"
        }

    def test_make_by_name(self):
        assert isinstance(make_activation("tanh"), Tanh)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_activation("swish")
