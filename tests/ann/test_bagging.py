"""Tests for the bagged ensemble (paper §IV.D)."""

import numpy as np
import pytest

from repro.ann.bagging import PAPER_ENSEMBLE_SIZE, BaggedRegressor
from repro.ann.training import TrainingConfig


def make_data(n=80, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = x @ np.array([[0.5], [-0.3], [0.2]]) + 0.05 * rng.normal(size=(n, 1))
    return x, y


FAST = TrainingConfig(epochs=40, seed=0)


class TestConstruction:
    def test_paper_ensemble_size(self):
        assert PAPER_ENSEMBLE_SIZE == 30

    def test_member_count(self):
        bag = BaggedRegressor(in_features=3, n_members=5)
        assert len(bag.members) == 5

    def test_members_independently_initialised(self):
        bag = BaggedRegressor(in_features=3, n_members=3, seed=0)
        w0 = bag.members[0].layers[0].weights
        w1 = bag.members[1].layers[0].weights
        assert not np.allclose(w0, w1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BaggedRegressor(in_features=0)
        with pytest.raises(ValueError):
            BaggedRegressor(in_features=3, n_members=0)


class TestFitPredict:
    def test_predict_before_fit_rejected(self):
        bag = BaggedRegressor(in_features=3, n_members=2)
        with pytest.raises(RuntimeError):
            bag.predict(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            bag.member_predictions(np.zeros((1, 3)))

    def test_fit_learns_linear_target(self):
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=4, hidden=(8,), seed=0)
        bag.fit(x, y, config=TrainingConfig(epochs=150, seed=0))
        pred = bag.predict(x)
        assert np.mean((pred - y.ravel()) ** 2) < 0.05

    def test_prediction_is_member_mean(self):
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=3, hidden=(4,), seed=1)
        bag.fit(x, y, config=FAST)
        members = bag.member_predictions(x[:5])
        assert members.shape == (3, 5)
        assert np.allclose(bag.predict(x[:5]), members.mean(axis=0))

    def test_prediction_std_nonnegative(self):
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=3, hidden=(4,), seed=1)
        bag.fit(x, y, config=FAST)
        std = bag.prediction_std(x[:7])
        assert std.shape == (7,)
        assert (std >= 0).all()

    def test_deterministic_for_seed(self):
        x, y = make_data()
        a = BaggedRegressor(in_features=3, n_members=3, hidden=(4,), seed=2)
        b = BaggedRegressor(in_features=3, n_members=3, hidden=(4,), seed=2)
        a.fit(x, y, config=FAST)
        b.fit(x, y, config=FAST)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_histories_per_member(self):
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=4, hidden=(4,), seed=0)
        histories = bag.fit(x, y, config=FAST)
        assert len(histories) == 4

    def test_one_dim_targets_accepted(self):
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=2, hidden=(4,), seed=0)
        bag.fit(x, y.ravel(), config=FAST)
        assert bag.predict(x).shape == (len(x),)

    def test_empty_training_set_rejected(self):
        bag = BaggedRegressor(in_features=3, n_members=2)
        with pytest.raises(ValueError):
            bag.fit(np.zeros((0, 3)), np.zeros((0, 1)))

    def test_bagging_reduces_variance(self):
        """The ensemble mean varies less across resamples than members."""
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=8, hidden=(6,), seed=0)
        bag.fit(x, y, config=TrainingConfig(epochs=60, seed=0))
        members = bag.member_predictions(x)
        member_mse = np.mean((members - y.ravel()) ** 2, axis=1)
        ensemble_mse = np.mean((bag.predict(x) - y.ravel()) ** 2)
        assert ensemble_mse <= member_mse.mean()
