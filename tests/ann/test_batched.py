"""Batched-vs-sequential training-engine equivalence (PERF tentpole).

The batched engine's whole contract is that it is *the same training*,
just vectorised: identical bootstrap resamples, identical shuffle RNG
streams, identical Adam arithmetic, identical early stopping.  These
tests pin that contract member by member, across topologies and patience
settings, with bit-exact comparisons wherever the design guarantees them.
"""

import numpy as np
import pytest

from repro.ann.bagging import (
    TRAINING_ENGINES,
    BaggedRegressor,
    bootstrap_indices,
)
from repro.ann.batched import train_ensemble_batched
from repro.ann.network import MLP
from repro.ann.training import TrainingConfig, TrainingHistory, train


def make_data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = x @ np.array([[0.5], [-0.3], [0.2]]) + 0.05 * rng.normal(size=(n, 1))
    return x, y


def make_val(n=15, seed=9):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = x @ np.array([[0.5], [-0.3], [0.2]])
    return x, y


def fit_both(topology, config, n_members=5, use_val=True, seed=2):
    x, y = make_data()
    x_val, y_val = make_val() if use_val else (None, None)
    sequential = BaggedRegressor(
        in_features=3, n_members=n_members, hidden=topology, seed=seed
    )
    batched = BaggedRegressor(
        in_features=3, n_members=n_members, hidden=topology, seed=seed
    )
    hs = sequential.fit(
        x, y, x_val=x_val, y_val=y_val, config=config, engine="sequential"
    )
    hb = batched.fit(
        x, y, x_val=x_val, y_val=y_val, config=config, engine="batched"
    )
    return sequential, batched, hs, hb, x


class TestBootstrapIndices:
    def test_matches_per_member_rng_stream(self):
        """Each row is exactly default_rng(seed + i).integers(0, n, n)."""
        matrix = bootstrap_indices(seed=7, n_members=4, n=50)
        assert matrix.shape == (4, 50)
        for i in range(4):
            expected = np.random.default_rng(7 + i).integers(0, 50, size=50)
            assert (matrix[i] == expected).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_indices(seed=0, n_members=0, n=10)
        with pytest.raises(ValueError):
            bootstrap_indices(seed=0, n_members=2, n=0)


class TestEngineEquivalence:
    """The headline: both engines produce bit-identical members."""

    @pytest.mark.parametrize("topology", [(4,), (8, 3), (18, 5)])
    def test_identical_predictions_across_topologies(self, topology):
        config = TrainingConfig(epochs=40, seed=0)
        sequential, batched, _, _, x = fit_both(topology, config)
        np.testing.assert_array_equal(
            sequential.member_predictions(x), batched.member_predictions(x)
        )

    @pytest.mark.parametrize("patience", [None, 3, 40])
    def test_identical_early_stopping(self, patience):
        config = TrainingConfig(epochs=50, patience=patience, seed=1)
        _, _, hs, hb, _ = fit_both((6, 3), config)
        assert [h.epochs_run for h in hs] == [h.epochs_run for h in hb]
        assert [h.best_epoch for h in hs] == [h.best_epoch for h in hb]
        assert [h.stopped_early for h in hs] == [
            h.stopped_early for h in hb
        ]

    def test_identical_loss_curves(self):
        config = TrainingConfig(epochs=30, patience=5, seed=0)
        _, _, hs, hb, _ = fit_both((5,), config)
        for a, b in zip(hs, hb):
            assert a.train_loss == b.train_loss
            assert a.val_loss == b.val_loss

    def test_staggered_stopping_keeps_survivors_in_lockstep(self):
        """Members dropping at different epochs must not perturb the rest."""
        config = TrainingConfig(epochs=60, patience=4, seed=3)
        _, _, hs, hb, _ = fit_both((4,), config, n_members=8)
        epochs = [h.epochs_run for h in hb]
        # The seed/patience choice actually staggers the stops — if every
        # member stopped together the test would not exercise compaction.
        assert len(set(epochs)) > 1
        assert epochs == [h.epochs_run for h in hs]

    def test_no_validation_equivalence(self):
        config = TrainingConfig(epochs=25, seed=4)
        sequential, batched, hs, hb, x = fit_both(
            (5, 4), config, use_val=False
        )
        np.testing.assert_array_equal(
            sequential.member_predictions(x), batched.member_predictions(x)
        )
        assert [h.best_epoch for h in hs] == [h.best_epoch for h in hb]

    def test_no_shuffle_equivalence(self):
        config = TrainingConfig(epochs=20, shuffle=False, seed=0)
        sequential, batched, _, _, x = fit_both((6,), config)
        np.testing.assert_array_equal(
            sequential.member_predictions(x), batched.member_predictions(x)
        )

    def test_odd_batch_remainder_equivalence(self):
        """n not divisible by batch_size exercises the short last batch."""
        config = TrainingConfig(epochs=15, batch_size=7, seed=2)
        sequential, batched, _, _, x = fit_both((4,), config)
        np.testing.assert_array_equal(
            sequential.member_predictions(x), batched.member_predictions(x)
        )


class TestDirectEngineApi:
    def test_matches_reference_train_per_member(self):
        """train_ensemble_batched == train() called member by member."""
        x, y = make_data()
        x_val, y_val = make_val()
        config = TrainingConfig(epochs=30, patience=5, seed=6)
        bootstrap = bootstrap_indices(seed=11, n_members=3, n=len(x))

        reference = [MLP(3, (5,), 1, seed=20 + i) for i in range(3)]
        ref_histories = []
        for i, net in enumerate(reference):
            member_config = TrainingConfig(
                epochs=config.epochs,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                patience=config.patience,
                shuffle=config.shuffle,
                seed=config.seed + i,
            )
            ref_histories.append(
                train(
                    net,
                    x[bootstrap[i]],
                    y[bootstrap[i]],
                    x_val=x_val,
                    y_val=y_val,
                    config=member_config,
                )
            )

        stacked = [MLP(3, (5,), 1, seed=20 + i) for i in range(3)]
        histories = train_ensemble_batched(
            stacked,
            x,
            y,
            bootstrap=bootstrap,
            x_val=x_val,
            y_val=y_val,
            config=config,
        )

        for ref, net, ha, hb in zip(
            reference, stacked, ref_histories, histories
        ):
            np.testing.assert_array_equal(ref.forward(x), net.forward(x))
            assert ha.train_loss == hb.train_loss
            assert ha.val_loss == hb.val_loss
            assert ha.best_epoch == hb.best_epoch
            assert ha.stopped_early == hb.stopped_early

    def test_returns_one_history_per_member(self):
        x, y = make_data()
        members = [MLP(3, (4,), 1, seed=i) for i in range(4)]
        histories = train_ensemble_batched(
            members, x, y, config=TrainingConfig(epochs=3, seed=0)
        )
        assert len(histories) == 4
        assert all(isinstance(h, TrainingHistory) for h in histories)

    def test_heterogeneous_topologies_rejected(self):
        x, y = make_data()
        members = [MLP(3, (4,), 1, seed=0), MLP(3, (5,), 1, seed=1)]
        with pytest.raises(ValueError):
            train_ensemble_batched(members, x, y)

    def test_heterogeneous_activations_rejected(self):
        x, y = make_data()
        members = [
            MLP(3, (4,), 1, hidden_activation="tanh", seed=0),
            MLP(3, (4,), 1, hidden_activation="relu", seed=1),
        ]
        with pytest.raises(ValueError):
            train_ensemble_batched(members, x, y)

    def test_shape_validation(self):
        x, y = make_data()
        members = [MLP(3, (4,), 1, seed=0)]
        with pytest.raises(ValueError):
            train_ensemble_batched(members, x, y[:-1])
        with pytest.raises(ValueError):
            train_ensemble_batched(
                members, x, y, bootstrap=np.zeros((2, len(x)), dtype=int)
            )
        with pytest.raises(ValueError):
            train_ensemble_batched(members, x, y, seeds=[0, 1])
        with pytest.raises(ValueError):
            train_ensemble_batched([], x, y)
        with pytest.raises(ValueError):
            train_ensemble_batched(
                members, np.zeros((0, 3)), np.zeros((0, 1))
            )


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        x, y = make_data()
        bag = BaggedRegressor(in_features=3, n_members=2, hidden=(4,))
        with pytest.raises(ValueError):
            bag.fit(x, y, engine="gpu")

    def test_engine_names(self):
        assert TRAINING_ENGINES == ("batched", "sequential")
