"""Tests for the dense layer, including full numerical gradient checks."""

import numpy as np
import pytest

from repro.ann.activations import Tanh
from repro.ann.layers import Dense


class TestForward:
    def test_output_shape(self):
        layer = Dense(5, 3)
        out = layer.forward(np.zeros((7, 5)))
        assert out.shape == (7, 3)

    def test_single_sample_promoted(self):
        layer = Dense(4, 2)
        out = layer.forward(np.zeros(4))
        assert out.shape == (1, 2)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            Dense(4, 2).forward(np.zeros((1, 5)))

    def test_linear_layer_is_affine(self):
        layer = Dense(3, 2)
        x = np.eye(3)
        out = layer.forward(x)
        assert np.allclose(out, layer.weights + layer.bias)

    def test_glorot_init_bounded(self):
        layer = Dense(10, 10, rng=np.random.default_rng(1))
        limit = np.sqrt(6.0 / 20)
        assert (np.abs(layer.weights) <= limit).all()
        assert (layer.bias == 0).all()

    def test_seeded_init_deterministic(self):
        a = Dense(4, 4, rng=np.random.default_rng(3))
        b = Dense(4, 4, rng=np.random.default_rng(3))
        assert np.allclose(a.weights, b.weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, 0)


class TestBackward:
    def test_numerical_gradcheck(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, Tanh(), rng=rng)
        x = rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 3))

        layer.forward(x)
        grad_x = layer.backward(upstream)

        eps = 1e-6

        def loss():
            return (layer.forward(x) * upstream).sum()

        # Weight gradients.
        numeric_w = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                layer.weights[i, j] += eps
                up = loss()
                layer.weights[i, j] -= 2 * eps
                down = loss()
                layer.weights[i, j] += eps
                numeric_w[i, j] = (up - down) / (2 * eps)
        layer.forward(x)
        layer.backward(upstream)
        assert np.allclose(layer.grad_weights, numeric_w, atol=1e-4)

        # Bias gradients.
        numeric_b = np.zeros_like(layer.bias)
        for j in range(layer.bias.size):
            layer.bias[j] += eps
            up = loss()
            layer.bias[j] -= 2 * eps
            down = loss()
            layer.bias[j] += eps
            numeric_b[j] = (up - down) / (2 * eps)
        assert np.allclose(layer.grad_bias, numeric_b, atol=1e-4)

        # Input gradients.
        numeric_x = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                x[i, j] += eps
                up = loss()
                x[i, j] -= 2 * eps
                down = loss()
                x[i, j] += eps
                numeric_x[i, j] = (up - down) / (2 * eps)
        assert np.allclose(grad_x, numeric_x, atol=1e-4)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_zero_grad(self):
        layer = Dense(2, 2)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        assert layer.grad_weights.any()
        layer.zero_grad()
        assert not layer.grad_weights.any()
        assert not layer.grad_bias.any()


class TestMisc:
    def test_parameter_count(self):
        assert Dense(5, 3).parameter_count == 5 * 3 + 3

    def test_from_activation_name(self):
        layer = Dense.from_activation_name(2, 2, "relu")
        assert layer.activation.name == "relu"
