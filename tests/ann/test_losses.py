"""Tests for loss functions."""

import numpy as np
import pytest

from repro.ann.losses import (
    LOSS_NAMES,
    HuberLoss,
    MAELoss,
    MSELoss,
    make_loss,
)


def numerical_gradient(loss, pred, target, eps=1e-6):
    grad = np.zeros_like(pred)
    flat = pred.ravel()
    out = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = loss.value(pred, target)
        flat[i] = orig - eps
        down = loss.value(pred, target)
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    return grad


class TestMSE:
    def test_zero_on_exact(self):
        pred = np.array([[1.0], [2.0]])
        assert MSELoss().value(pred, pred.copy()) == 0.0

    def test_value(self):
        pred = np.array([[2.0]])
        target = np.array([[0.0]])
        assert MSELoss().value(pred, target) == pytest.approx(4.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))
        analytic = MSELoss().gradient(pred, target)
        numeric = numerical_gradient(MSELoss(), pred, target)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestMAE:
    def test_value(self):
        pred = np.array([[1.0], [-1.0]])
        target = np.array([[0.0], [0.0]])
        assert MAELoss().value(pred, target) == pytest.approx(1.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(5, 2)) + 0.1
        target = np.zeros((5, 2))
        analytic = MAELoss().gradient(pred, target)
        numeric = numerical_gradient(MAELoss(), pred, target)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestHuber:
    def test_quadratic_inside_delta(self):
        loss = HuberLoss(delta=2.0)
        pred = np.array([[1.0]])
        target = np.array([[0.0]])
        assert loss.value(pred, target) == pytest.approx(0.5)

    def test_linear_outside_delta(self):
        loss = HuberLoss(delta=1.0)
        pred = np.array([[5.0]])
        target = np.array([[0.0]])
        assert loss.value(pred, target) == pytest.approx(1.0 * (5.0 - 0.5))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        pred = rng.normal(scale=2.0, size=(6, 1))
        target = np.zeros((6, 1))
        loss = HuberLoss(delta=1.0)
        analytic = loss.gradient(pred, target)
        numeric = numerical_gradient(loss, pred, target)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestValidation:
    @pytest.mark.parametrize("name", LOSS_NAMES)
    def test_shape_mismatch_rejected(self, name):
        loss = make_loss(name)
        with pytest.raises(ValueError):
            loss.value(np.zeros((2, 1)), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            loss.gradient(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((0, 1)), np.zeros((0, 1)))

    def test_make_loss_unknown(self):
        with pytest.raises(ValueError):
            make_loss("hinge")

    def test_registry(self):
        assert set(LOSS_NAMES) == {"huber", "mae", "mse"}
