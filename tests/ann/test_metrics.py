"""Tests for predictor evaluation metrics."""

import numpy as np
import pytest

from repro.ann.metrics import (
    class_accuracy,
    confusion_counts,
    mae,
    mse,
    r2_score,
)


class TestRegressionMetrics:
    def test_mse(self):
        assert mse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_mae(self):
        assert mae([1.0, -3.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_perfect_r2(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_r2_zero(self):
        target = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, target.mean())
        assert r2_score(pred, target) == pytest.approx(0.0)

    def test_constant_target_conventions(self):
        target = np.ones(3)
        assert r2_score(np.ones(3), target) == 1.0
        assert r2_score(np.zeros(3), target) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([], [])


class TestClassificationMetrics:
    def test_accuracy(self):
        pred = np.array([2, 4, 8, 8])
        target = np.array([2, 4, 4, 8])
        assert class_accuracy(pred, target) == pytest.approx(0.75)

    def test_confusion(self):
        pred = np.array([2, 4, 8, 8, 2])
        target = np.array([2, 4, 4, 8, 4])
        counts = confusion_counts(pred, target, classes=[2, 4, 8])
        assert counts[0, 0] == 1  # true 2 -> pred 2
        assert counts[1, 1] == 1  # true 4 -> pred 4
        assert counts[1, 2] == 1  # true 4 -> pred 8
        assert counts[1, 0] == 1  # true 4 -> pred 2
        assert counts[2, 2] == 1  # true 8 -> pred 8
        assert counts.sum() == 5

    def test_confusion_rejects_unknown_values(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([3]), np.array([2]), classes=[2, 4])

    def test_confusion_diagonal_matches_accuracy(self):
        rng = np.random.default_rng(0)
        classes = [2.0, 4.0, 8.0]
        target = rng.choice(classes, size=100)
        pred = rng.choice(classes, size=100)
        counts = confusion_counts(pred, target, classes)
        assert counts.trace() / 100 == pytest.approx(
            class_accuracy(pred, target)
        )
