"""Tests for the k-NN regressor."""

import numpy as np
import pytest

from repro.ann.neighbors import KNNRegressor


def grid_data():
    x = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]])
    y = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
    return x, y


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        with pytest.raises(ValueError):
            KNNRegressor(weights="triangular")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNRegressor().predict(np.zeros((1, 2)))

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor().fit(np.zeros((2, 1)), np.zeros(3))
        with pytest.raises(ValueError):
            KNNRegressor().fit(np.zeros((0, 1)), np.zeros(0))

    def test_n_samples(self):
        knn = KNNRegressor()
        assert knn.n_samples == 0
        knn.fit(*grid_data())
        assert knn.n_samples == 5


class TestPrediction:
    def test_one_nn_exact_recall(self):
        x, y = grid_data()
        knn = KNNRegressor(k=1).fit(x, y)
        assert np.allclose(knn.predict(x), y)

    def test_distance_weighting_dominated_by_exact_match(self):
        x, y = grid_data()
        knn = KNNRegressor(k=3, weights="distance").fit(x, y)
        assert knn.predict(np.array([[2.0]]))[0] == pytest.approx(2.0)

    def test_uniform_weighting_averages(self):
        x, y = grid_data()
        knn = KNNRegressor(k=5, weights="uniform").fit(x, y)
        assert knn.predict(np.array([[2.0]]))[0] == pytest.approx(2.0)

    def test_interpolates_between_points(self):
        x, y = grid_data()
        knn = KNNRegressor(k=2, weights="distance").fit(x, y)
        pred = knn.predict(np.array([[1.5]]))[0]
        assert 1.0 < pred < 2.0

    def test_k_clamped_to_dataset(self):
        x, y = grid_data()
        knn = KNNRegressor(k=50, weights="uniform").fit(x, y)
        assert knn.predict(np.array([[0.0]]))[0] == pytest.approx(y.mean())

    def test_feature_width_checked(self):
        knn = KNNRegressor().fit(*grid_data())
        with pytest.raises(ValueError):
            knn.predict(np.zeros((1, 3)))

    def test_multidimensional(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = x @ np.array([1.0, -0.5, 0.25])
        knn = KNNRegressor(k=5).fit(x, y)
        pred = knn.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_batch_prediction_shape(self):
        knn = KNNRegressor().fit(*grid_data())
        assert knn.predict(np.zeros((7, 1))).shape == (7,)
