"""Tests for the MLP, including the paper's topology."""

import numpy as np
import pytest

from repro.ann.losses import MSELoss
from repro.ann.network import MLP, PAPER_TOPOLOGY


class TestConstruction:
    def test_paper_topology(self):
        # Figure 3's best size {10, 18, 5, 1}.
        net = MLP(10, PAPER_TOPOLOGY, 1)
        assert net.topology == (10, 18, 5, 1)
        assert len(net.layers) == 3

    def test_parameter_count(self):
        net = MLP(10, (18, 5), 1)
        expected = (10 * 18 + 18) + (18 * 5 + 5) + (5 * 1 + 1)
        assert net.parameter_count == expected

    def test_hidden_layers_nonlinear_output_linear(self):
        net = MLP(4, (3,), 2, hidden_activation="tanh")
        assert net.layers[0].activation.name == "tanh"
        assert net.layers[1].activation.name == "identity"

    def test_no_hidden_layers(self):
        net = MLP(3, (), 1)
        assert len(net.layers) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP(0, (5,), 1)
        with pytest.raises(ValueError):
            MLP(3, (0,), 1)
        with pytest.raises(ValueError):
            MLP(3, (5,), 0)

    def test_seeds_decorrelate_weights(self):
        a = MLP(4, (8,), 1, seed=0)
        b = MLP(4, (8,), 1, seed=1)
        assert not np.allclose(a.layers[0].weights, b.layers[0].weights)

    def test_same_seed_same_weights(self):
        a = MLP(4, (8,), 1, seed=5)
        b = MLP(4, (8,), 1, seed=5)
        assert np.allclose(a.layers[0].weights, b.layers[0].weights)


class TestForwardBackward:
    def test_forward_shape(self):
        net = MLP(6, (4, 3), 2)
        assert net.forward(np.zeros((9, 6))).shape == (9, 2)

    def test_predict_alias(self):
        net = MLP(2, (3,), 1)
        x = np.ones((2, 2))
        assert np.allclose(net.predict(x), net.forward(x))

    def test_end_to_end_gradcheck(self):
        rng = np.random.default_rng(0)
        net = MLP(3, (4,), 1, seed=2)
        x = rng.normal(size=(5, 3))
        y = rng.normal(size=(5, 1))
        loss = MSELoss()
        net.train_batch(x, y, loss)
        analytic = net.layers[0].grad_weights.copy()

        eps = 1e-6
        numeric = np.zeros_like(analytic)
        w = net.layers[0].weights
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                w[i, j] += eps
                up = loss.value(net.forward(x), y)
                w[i, j] -= 2 * eps
                down = loss.value(net.forward(x), y)
                w[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_train_batch_returns_loss(self):
        net = MLP(2, (3,), 1)
        x = np.ones((4, 2))
        y = np.zeros((4, 1))
        value = net.train_batch(x, y, MSELoss())
        assert value == pytest.approx(MSELoss().value(net.forward(x), y), rel=1e-6)

    def test_zero_grad(self):
        net = MLP(2, (3,), 1)
        net.train_batch(np.ones((2, 2)), np.zeros((2, 1)), MSELoss())
        net.zero_grad()
        for layer in net.layers:
            assert not layer.grad_weights.any()


class TestWeightIO:
    def test_round_trip(self):
        net = MLP(3, (4,), 1, seed=0)
        saved = net.get_weights()
        x = np.ones((2, 3))
        before = net.forward(x).copy()
        net.train_batch(x, np.zeros((2, 1)), MSELoss())
        from repro.ann.optimizers import SGD

        SGD(0.5).step(net.layers)
        assert not np.allclose(net.forward(x), before)
        net.set_weights(saved)
        assert np.allclose(net.forward(x), before)

    def test_saved_weights_are_copies(self):
        net = MLP(2, (2,), 1)
        saved = net.get_weights()
        saved[0][0][:] = 99.0
        assert not (net.layers[0].weights == 99.0).any()

    def test_set_weights_validates_count(self):
        net = MLP(2, (2,), 1)
        with pytest.raises(ValueError):
            net.set_weights(net.get_weights()[:1])

    def test_set_weights_validates_shapes(self):
        net = MLP(2, (2,), 1)
        other = MLP(2, (3,), 1)
        with pytest.raises(ValueError):
            net.set_weights(other.get_weights())
