"""Tests for SGD and Adam optimisers."""

import numpy as np
import pytest

from repro.ann.layers import Dense
from repro.ann.losses import MSELoss
from repro.ann.network import MLP
from repro.ann.optimizers import (
    OPTIMIZER_NAMES,
    Adam,
    SGD,
    make_optimizer,
)


def quadratic_layer():
    """A 1->1 linear layer; training it on y = 3x is a quadratic bowl."""
    layer = Dense(1, 1, rng=np.random.default_rng(0))
    return layer


def train_steps(opt, steps=200):
    layer = quadratic_layer()
    net = [layer]
    x = np.linspace(-1, 1, 16)[:, None]
    y = 3.0 * x
    loss = MSELoss()
    for _ in range(steps):
        pred = layer.forward(x)
        layer.zero_grad()
        layer.backward(loss.gradient(pred, y))
        opt.step(net)
    return layer


class TestSGD:
    def test_plain_sgd_step_math(self):
        layer = quadratic_layer()
        layer.weights[:] = 0.0
        layer.grad_weights[:] = 2.0
        layer.grad_bias[:] = 1.0
        SGD(learning_rate=0.1, momentum=0.0).step([layer])
        assert layer.weights[0, 0] == pytest.approx(-0.2)
        assert layer.bias[0] == pytest.approx(-0.1)

    def test_momentum_accumulates(self):
        layer = quadratic_layer()
        layer.weights[:] = 0.0
        opt = SGD(learning_rate=0.1, momentum=0.5)
        layer.grad_weights[:] = 1.0
        layer.grad_bias[:] = 0.0
        opt.step([layer])
        first = layer.weights[0, 0]
        layer.grad_weights[:] = 1.0
        opt.step([layer])
        second_step = layer.weights[0, 0] - first
        # v2 = 0.5*(-0.1) - 0.1 = -0.15
        assert second_step == pytest.approx(-0.15)

    def test_converges_on_quadratic(self):
        layer = train_steps(SGD(learning_rate=0.05, momentum=0.9))
        assert layer.weights[0, 0] == pytest.approx(3.0, abs=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        layer = train_steps(Adam(learning_rate=0.05), steps=400)
        assert layer.weights[0, 0] == pytest.approx(3.0, abs=1e-2)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, Adam's first update has magnitude ~lr.
        layer = quadratic_layer()
        layer.weights[:] = 0.0
        layer.grad_weights[:] = 7.0
        layer.grad_bias[:] = 0.0
        Adam(learning_rate=0.01).step([layer])
        assert abs(layer.weights[0, 0]) == pytest.approx(0.01, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
        with pytest.raises(ValueError):
            Adam(eps=0.0)

    def test_trains_full_mlp(self):
        net = MLP(2, (8,), 1, seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] + 2 * x[:, 1:]) * 0.5
        loss = MSELoss()
        opt = Adam(learning_rate=0.01)
        first = loss.value(net.forward(x), y)
        for _ in range(300):
            net.train_batch(x, y, loss)
            opt.step(net.layers)
        final = loss.value(net.forward(x), y)
        assert final < first / 10


class TestFactory:
    def test_names(self):
        assert set(OPTIMIZER_NAMES) == {"adam", "sgd"}

    def test_make(self):
        assert isinstance(make_optimizer("sgd"), SGD)
        assert isinstance(make_optimizer("adam", learning_rate=0.5), Adam)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_optimizer("rmsprop")
