"""Tests for feature preprocessing."""

import numpy as np
import pytest

from repro.ann.preprocessing import StandardScaler, log_transform, snap_to_classes


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_guard(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)
        assert np.isfinite(z).all()

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler()
        scaler.fit(np.array([[0.0], [2.0]]))
        z = scaler.transform(np.array([[4.0]]))
        assert z[0, 0] == pytest.approx(3.0)  # (4-1)/1

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3)) * 7 + 2
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        assert np.allclose(scaler.inverse_transform(z), x)

    def test_use_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.zeros((1, 2)))

    def test_width_mismatch_rejected(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((3, 5)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 2)))


class TestLogTransform:
    def test_values(self):
        x = np.array([0.0, np.e - 1])
        assert np.allclose(log_transform(x), [0.0, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_transform(np.array([-1.0]))

    def test_compresses_scale(self):
        x = np.array([1.0, 1e6])
        z = log_transform(x)
        assert z[1] / z[0] < x[1] / x[0]


class TestSnapToClasses:
    def test_snaps_to_nearest(self):
        classes = [1.0, 2.0, 3.0]
        values = np.array([0.2, 1.4, 1.6, 2.9, 7.0])
        snapped = snap_to_classes(values, classes)
        assert snapped.tolist() == [1.0, 1.0, 2.0, 3.0, 3.0]

    def test_ties_resolve_to_smaller(self):
        snapped = snap_to_classes(np.array([1.5]), [1.0, 2.0])
        assert snapped[0] == 1.0

    def test_idempotent(self):
        classes = [2.0, 4.0, 8.0]
        values = np.array([2.7, 5.1, 8.0])
        once = snap_to_classes(values, classes)
        twice = snap_to_classes(once, classes)
        assert (once == twice).all()

    def test_log2_cache_sizes(self):
        # The predictor snaps log2 sizes: {1, 2, 3} for {2, 4, 8} KB.
        log_sizes = np.log2(np.array([2.0, 4.0, 8.0]))
        pred = np.array([1.1, 2.4, 2.6, 3.9])
        snapped = snap_to_classes(pred, log_sizes)
        assert (2.0 ** snapped).tolist() == [2.0, 4.0, 8.0, 8.0]

    def test_unsorted_classes_accepted(self):
        snapped = snap_to_classes(np.array([5.0]), [8.0, 2.0, 4.0])
        assert snapped[0] == 4.0

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            snap_to_classes(np.array([1.0]), [])
