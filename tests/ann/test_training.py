"""Tests for the training loop and early stopping."""

import numpy as np
import pytest

from repro.ann.network import MLP
from repro.ann.training import TrainingConfig, TrainingHistory, train


def make_data(n=64, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (0.5 * x[:, :1] - 0.25 * x[:, 1:]) + 0.01 * rng.normal(size=(n, 1))
    return x, y


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"patience": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestTrain:
    def test_loss_decreases(self):
        x, y = make_data()
        net = MLP(2, (8,), 1, seed=0)
        history = train(net, x, y, config=TrainingConfig(epochs=100, seed=0))
        assert history.train_loss[-1] < history.train_loss[0] / 5

    def test_history_lengths(self):
        x, y = make_data()
        net = MLP(2, (4,), 1, seed=0)
        history = train(
            net, x, y, x_val=x[:10], y_val=y[:10],
            config=TrainingConfig(epochs=20, patience=None, seed=0),
        )
        assert history.epochs_run == 20
        assert len(history.val_loss) == 20

    def test_early_stopping_triggers(self):
        x, y = make_data()
        x_val, y_val = make_data(n=16, seed=9)
        net = MLP(2, (8,), 1, seed=0)
        history = train(
            net, x, y, x_val=x_val, y_val=y_val,
            config=TrainingConfig(epochs=2000, patience=10, seed=0),
        )
        assert history.stopped_early
        assert history.epochs_run < 2000
        assert history.best_epoch <= history.epochs_run

    def test_best_weights_restored(self):
        from repro.ann.losses import MSELoss

        x, y = make_data()
        x_val, y_val = make_data(n=16, seed=5)
        net = MLP(2, (8,), 1, seed=1)
        history = train(
            net, x, y, x_val=x_val, y_val=y_val,
            config=TrainingConfig(epochs=300, patience=25, seed=1),
        )
        final_val = MSELoss().value(net.forward(x_val), y_val)
        assert final_val == pytest.approx(min(history.val_loss), rel=1e-9)

    def test_no_validation_keeps_final_weights(self):
        x, y = make_data()
        net = MLP(2, (4,), 1, seed=0)
        history = train(net, x, y, config=TrainingConfig(epochs=10, seed=0))
        assert history.best_epoch == 9
        assert not history.val_loss

    def test_deterministic(self):
        x, y = make_data()
        a = MLP(2, (4,), 1, seed=3)
        b = MLP(2, (4,), 1, seed=3)
        train(a, x, y, config=TrainingConfig(epochs=15, seed=3))
        train(b, x, y, config=TrainingConfig(epochs=15, seed=3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_no_shuffle_option(self):
        x, y = make_data()
        net = MLP(2, (4,), 1, seed=0)
        history = train(
            net, x, y, config=TrainingConfig(epochs=5, shuffle=False, seed=0)
        )
        assert history.epochs_run == 5

    def test_row_count_mismatch_rejected(self):
        x, y = make_data()
        net = MLP(2, (4,), 1)
        with pytest.raises(ValueError):
            train(net, x, y[:-1])
        with pytest.raises(ValueError):
            train(net, x, y, x_val=x[:5], y_val=y[:4])

    def test_custom_optimizer_and_loss(self):
        from repro.ann.losses import MAELoss
        from repro.ann.optimizers import SGD

        x, y = make_data()
        net = MLP(2, (8,), 1, seed=0)
        history = train(
            net, x, y,
            config=TrainingConfig(epochs=50, seed=0),
            loss=MAELoss(),
            optimizer=SGD(learning_rate=0.05, momentum=0.9),
        )
        assert history.train_loss[-1] < history.train_loss[0]
