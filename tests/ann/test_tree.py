"""Tests for the CART regression tree and random forest."""

import numpy as np
import pytest

from repro.ann.tree import DecisionTreeRegressor, RandomForestRegressor


def step_data():
    """y jumps at x = 0.5: the easiest split to find."""
    x = np.linspace(0, 1, 40)[:, None]
    y = (x.ravel() > 0.5).astype(float) * 10.0
    return x, y


class TestDecisionTree:
    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 1)), np.zeros(0))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((2, 1)), np.zeros(3))

    def test_depth_zero_is_mean(self):
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        assert tree.predict(x)[0] == pytest.approx(y.mean())
        assert tree.depth == 0
        assert tree.leaf_count == 1

    def test_finds_step_split(self):
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        pred = tree.predict(x)
        assert np.allclose(pred, y)
        assert tree.depth == 1
        assert tree.leaf_count == 2

    def test_constant_target_stays_leaf(self):
        x = np.arange(10)[:, None].astype(float)
        tree = DecisionTreeRegressor().fit(x, np.full(10, 3.0))
        assert tree.leaf_count == 1
        assert tree.predict(x)[0] == 3.0

    def test_min_samples_leaf_respected(self):
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(x, y)
        # 40 samples with >=10 per leaf: at most 4 leaves.
        assert tree.leaf_count <= 4

    def test_piecewise_fit_quality(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(200, 2))
        y = np.where(x[:, 0] > 0, 5.0, -5.0) + np.where(x[:, 1] > 1, 2.0, 0.0)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.5

    def test_feature_width_checked(self):
        x, y = step_data()
        tree = DecisionTreeRegressor().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 4)))

    def test_no_split_between_equal_values(self):
        x = np.zeros((10, 1))
        y = np.arange(10.0)
        tree = DecisionTreeRegressor().fit(x, y)
        # All x identical: no valid split, root predicts the mean.
        assert tree.leaf_count == 1


class TestRandomForest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 1)))
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((0, 1)), np.zeros(0))

    def test_fits_step(self):
        x, y = step_data()
        forest = RandomForestRegressor(n_trees=10, max_depth=3, seed=0).fit(x, y)
        pred = forest.predict(x)
        assert np.mean((pred - y) ** 2) < 1.0

    def test_deterministic(self):
        x, y = step_data()
        a = RandomForestRegressor(n_trees=5, seed=1).fit(x, y)
        b = RandomForestRegressor(n_trees=5, seed=1).fit(x, y)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_trees_differ(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 2))
        y = x[:, 0] * 3 + rng.normal(size=60)
        forest = RandomForestRegressor(n_trees=5, seed=0).fit(x, y)
        preds = np.stack([t.predict(x) for t in forest.trees])
        assert preds.std(axis=0).max() > 0.0
