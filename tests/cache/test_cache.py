"""Tests for the reference cache model and the fast trace path."""

import numpy as np
import pytest

from repro.cache.cache import Cache, simulate_trace
from repro.cache.config import CacheConfig

TINY = CacheConfig(size_kb=2, assoc=1, line_b=16)  # 128 sets, direct mapped
SMALL_2W = CacheConfig(size_kb=2, assoc=2, line_b=16)  # 64 sets, 2-way


class TestBasicBehaviour:
    def test_first_access_misses(self):
        cache = Cache(TINY)
        assert not cache.access(0).hit
        assert cache.stats.misses == 1
        assert cache.stats.compulsory_misses == 1

    def test_second_access_same_line_hits(self):
        cache = Cache(TINY)
        cache.access(0)
        assert cache.access(8).hit  # same 16B line
        assert cache.stats.hits == 1

    def test_different_line_misses(self):
        cache = Cache(TINY)
        cache.access(0)
        assert not cache.access(16).hit

    def test_direct_mapped_conflict(self):
        cache = Cache(TINY)
        stride = TINY.num_sets * TINY.line_b  # same set, different tag
        cache.access(0)
        cache.access(stride)
        assert not cache.access(0).hit  # evicted by the conflicting line

    def test_two_way_absorbs_conflict(self):
        cache = Cache(SMALL_2W)
        stride = SMALL_2W.num_sets * SMALL_2W.line_b
        cache.access(0)
        cache.access(stride)
        assert cache.access(0).hit  # both lines fit in a 2-way set

    def test_lru_eviction_in_set(self):
        cache = Cache(SMALL_2W)
        stride = SMALL_2W.num_sets * SMALL_2W.line_b
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # 0 is now MRU
        cache.access(2 * stride)  # evicts `stride`
        assert cache.access(0).hit
        assert not cache.access(stride).hit

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Cache(TINY).access(-1)

    def test_set_index_and_line_addr(self):
        cache = Cache(TINY)
        assert cache.line_addr(35) == 2
        assert cache.set_index(35) == 2
        wrap = TINY.num_sets * TINY.line_b + 35
        assert cache.set_index(wrap) == 2

    def test_contains_and_resident_lines(self):
        cache = Cache(TINY)
        assert not cache.contains(0)
        cache.access(0)
        assert cache.contains(0)
        assert cache.contains(12)  # same line
        assert cache.resident_lines == 1


class TestWritePolicies:
    def test_write_through_has_no_writebacks(self):
        cache = Cache(TINY, write_back=False)
        cache.access(0, is_write=True)
        cache.access(TINY.num_sets * TINY.line_b, is_write=True)  # evicts
        assert cache.stats.writebacks == 0

    def test_write_back_writes_dirty_victims(self):
        cache = Cache(TINY, write_back=True)
        stride = TINY.num_sets * TINY.line_b
        cache.access(0, is_write=True)
        result = cache.access(stride)
        assert result.writeback_line_addr == 0
        assert cache.stats.writebacks == 1

    def test_clean_victim_not_written_back(self):
        cache = Cache(TINY, write_back=True)
        stride = TINY.num_sets * TINY.line_b
        cache.access(0)  # clean read
        result = cache.access(stride)
        assert result.writeback_line_addr is None

    def test_write_hit_dirties_line(self):
        cache = Cache(TINY, write_back=True)
        stride = TINY.num_sets * TINY.line_b
        cache.access(0)
        cache.access(0, is_write=True)  # hit, dirties
        cache.access(stride)
        assert cache.stats.writebacks == 1

    def test_no_write_allocate_bypasses_fill(self):
        cache = Cache(TINY, write_allocate=False)
        cache.access(0, is_write=True)
        assert cache.resident_lines == 0
        assert not cache.access(0).hit  # still not resident

    def test_write_counters(self):
        cache = Cache(TINY)
        cache.access(0, is_write=True)
        cache.access(0, is_write=False)
        cache.access(16, is_write=True)
        stats = cache.stats
        assert stats.write_accesses == 2
        assert stats.read_accesses == 1
        assert stats.write_misses == 2
        assert stats.read_misses == 0
        stats.validate()


class TestFlush:
    def test_flush_empties_cache(self):
        cache = Cache(TINY)
        for i in range(5):
            cache.access(i * 16)
        assert cache.resident_lines == 5
        cache.flush()
        assert cache.resident_lines == 0
        assert cache.stats.flushed_lines == 5

    def test_flush_writes_back_dirty(self):
        cache = Cache(TINY, write_back=True)
        cache.access(0, is_write=True)
        cache.access(16)
        assert cache.flush() == 1
        assert cache.stats.writebacks == 1

    def test_post_flush_accesses_miss(self):
        cache = Cache(TINY)
        cache.access(0)
        cache.flush()
        assert not cache.access(0).hit
        # A re-fetched line is not compulsory again.
        assert cache.stats.compulsory_misses == 1


class TestRunTrace:
    def test_run_trace_accumulates(self):
        cache = Cache(TINY)
        stats = cache.run_trace([0, 0, 16, 0])
        assert stats.accesses == 4
        assert stats.hits == 2
        assert stats.misses == 2

    def test_run_trace_with_writes(self):
        cache = Cache(TINY)
        stats = cache.run_trace([0, 16], writes=[True, False])
        assert stats.write_accesses == 1

    def test_writes_length_mismatch(self):
        with pytest.raises(ValueError):
            Cache(TINY).run_trace([0, 16], writes=[True])


class TestFastPath:
    def test_matches_reference_on_simple_trace(self):
        trace = [0, 16, 0, 32, 2048, 0, 16]
        fast = simulate_trace(trace, TINY)
        ref = Cache(TINY).run_trace(trace)
        assert fast.hits == ref.hits
        assert fast.misses == ref.misses
        assert fast.compulsory_misses == ref.compulsory_misses

    def test_matches_reference_on_random_traces(self):
        rng = np.random.default_rng(42)
        for config in (TINY, SMALL_2W, CacheConfig(size_kb=8, assoc=4, line_b=64)):
            trace = rng.integers(0, 64 * 1024, size=4000)
            writes = rng.random(4000) < 0.3
            fast = simulate_trace(trace, config, writes=writes)
            ref = Cache(config).run_trace(trace.tolist(), writes.tolist())
            assert fast.hits == ref.hits
            assert fast.misses == ref.misses
            assert fast.write_misses == ref.write_misses
            assert fast.evictions == ref.evictions
            assert fast.fills == ref.fills
            assert fast.compulsory_misses == ref.compulsory_misses

    def test_accepts_numpy_and_lists(self):
        trace = np.array([0, 16, 0])
        a = simulate_trace(trace, TINY)
        b = simulate_trace([0, 16, 0], TINY)
        assert a.hits == b.hits == 1

    def test_write_mask_length_checked(self):
        with pytest.raises(ValueError):
            simulate_trace([0, 16], TINY, writes=[True])

    def test_empty_trace(self):
        stats = simulate_trace([], TINY)
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0

    def test_stats_validate(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 8192, size=1000)
        simulate_trace(trace, SMALL_2W).validate()


class TestPolicyVariants:
    def test_fifo_differs_from_lru_eventually(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 16 * 1024, size=5000).tolist()
        config = CacheConfig(size_kb=2, assoc=2, line_b=16)
        lru = Cache(config, policy="lru").run_trace(trace)
        fifo = Cache(config, policy="fifo").run_trace(trace)
        assert lru.accesses == fifo.accesses
        # Policies must differ on at least some traces (this one does).
        assert lru.hits != fifo.hits

    def test_random_policy_is_seeded(self):
        rng = np.random.default_rng(4)
        trace = rng.integers(0, 16 * 1024, size=2000).tolist()
        config = CacheConfig(size_kb=2, assoc=2, line_b=16)
        a = Cache(config, policy="random", seed=11).run_trace(trace)
        b = Cache(config, policy="random", seed=11).run_trace(trace)
        assert a.hits == b.hits
