"""Tests for the cache configuration design space (paper Table 1)."""

import pytest

from repro.cache.config import (
    BASE_CONFIG,
    CACHE_SIZES_KB,
    DESIGN_SPACE,
    LINE_SIZES_B,
    CacheConfig,
    associativities_for_size,
    configs_for_size,
    design_space,
)


class TestCacheConfig:
    def test_basic_properties(self):
        config = CacheConfig(size_kb=8, assoc=4, line_b=64)
        assert config.size_bytes == 8192
        assert config.num_lines == 128
        assert config.num_sets == 32

    def test_direct_mapped_sets_equal_lines(self):
        config = CacheConfig(size_kb=2, assoc=1, line_b=16)
        assert config.num_sets == config.num_lines == 128

    def test_name_round_trip(self):
        for config in DESIGN_SPACE:
            assert CacheConfig.from_name(config.name) == config

    def test_name_format(self):
        assert CacheConfig(size_kb=4, assoc=2, line_b=32).name == "4KB_2W_32B"

    def test_str_is_name(self):
        config = CacheConfig(size_kb=2, assoc=1, line_b=16)
        assert str(config) == config.name

    @pytest.mark.parametrize(
        "bad", ["", "8KB", "8KB_4W", "8K_4W_64B", "8KB_4W_64", "foo_bar_baz"]
    )
    def test_from_name_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            CacheConfig.from_name(bad)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_kb=0, assoc=1, line_b=16)

    def test_rejects_non_positive_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size_kb=2, assoc=0, line_b=16)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_kb=2, assoc=1, line_b=24)

    def test_rejects_geometry_that_does_not_divide(self):
        # 1 KB cache with 64 ways of 64B lines needs 4 KB.
        with pytest.raises(ValueError):
            CacheConfig(size_kb=1, assoc=64, line_b=64)

    def test_ordering_is_total(self):
        ordered = sorted(DESIGN_SPACE)
        assert ordered[0] == CacheConfig(size_kb=2, assoc=1, line_b=16)
        assert ordered[-1] == CacheConfig(size_kb=8, assoc=4, line_b=64)

    def test_equality_and_hash(self):
        a = CacheConfig(size_kb=4, assoc=2, line_b=32)
        b = CacheConfig(size_kb=4, assoc=2, line_b=32)
        assert a == b
        assert hash(a) == hash(b)
        assert a in {b}


class TestDesignSpace:
    def test_eighteen_configurations(self):
        assert len(DESIGN_SPACE) == 18

    def test_table1_exact_contents(self):
        expected = {
            "2KB_1W_16B", "2KB_1W_32B", "2KB_1W_64B",
            "4KB_1W_16B", "4KB_1W_32B", "4KB_1W_64B",
            "4KB_2W_16B", "4KB_2W_32B", "4KB_2W_64B",
            "8KB_1W_16B", "8KB_1W_32B", "8KB_1W_64B",
            "8KB_2W_16B", "8KB_2W_32B", "8KB_2W_64B",
            "8KB_4W_16B", "8KB_4W_32B", "8KB_4W_64B",
        }
        assert {c.name for c in DESIGN_SPACE} == expected

    def test_no_duplicates(self):
        assert len(set(DESIGN_SPACE)) == len(DESIGN_SPACE)

    def test_all_in_design_space(self):
        for config in DESIGN_SPACE:
            assert config.in_design_space()

    def test_outside_design_space(self):
        assert not CacheConfig(size_kb=16, assoc=1, line_b=16).in_design_space()
        assert not CacheConfig(size_kb=2, assoc=2, line_b=16).in_design_space()
        assert not CacheConfig(size_kb=8, assoc=4, line_b=128).in_design_space()

    def test_generator_matches_tuple(self):
        assert tuple(design_space()) == DESIGN_SPACE

    def test_ordered_smallest_first(self):
        sizes = [c.size_kb for c in DESIGN_SPACE]
        assert sizes == sorted(sizes)

    def test_base_config_is_largest(self):
        assert BASE_CONFIG.name == "8KB_4W_64B"
        assert BASE_CONFIG in DESIGN_SPACE


class TestAssociativities:
    def test_per_size_ranges(self):
        assert associativities_for_size(2) == (1,)
        assert associativities_for_size(4) == (1, 2)
        assert associativities_for_size(8) == (1, 2, 4)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            associativities_for_size(16)

    def test_configs_for_size_counts(self):
        assert len(configs_for_size(2)) == 3
        assert len(configs_for_size(4)) == 6
        assert len(configs_for_size(8)) == 9

    def test_configs_for_size_fixed_size(self):
        for size in CACHE_SIZES_KB:
            for config in configs_for_size(size):
                assert config.size_kb == size
                assert config.line_b in LINE_SIZES_B

    def test_union_of_subsets_is_design_space(self):
        union = set()
        for size in CACHE_SIZES_KB:
            union.update(configs_for_size(size))
        assert union == set(DESIGN_SPACE)
