"""Golden-vector tests: hand-computed hit/miss sequences per policy.

These anchor the replacement policies against worked examples (the kind
one computes on paper in an architecture course), so any behavioural
regression in the cache model is caught by an exact sequence, not just
aggregate counts.
"""

import pytest

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig

# One set, two ways, 16B lines: the minimal interesting cache.
TWO_WAY_ONE_SET = CacheConfig(size_kb=1, assoc=32, line_b=16)
# (1KB/16B = 64 lines; force a single set via assoc = lines.)


def run_sequence(cache, line_ids):
    """Access 16B-aligned lines by small integer id; return hit pattern."""
    return [cache.access(line_id * 16).hit for line_id in line_ids]


class TestFullyAssociativeLRU:
    def make(self, ways):
        # ways lines of 16B in one set.
        return Cache(
            CacheConfig(size_kb=ways * 16 // 1024 if ways * 16 >= 1024 else 1,
                        assoc=ways, line_b=16)
            if ways * 16 >= 1024
            else CacheConfig(size_kb=1, assoc=64, line_b=16),
            policy="lru",
        )

    def test_two_way_classic_sequence(self):
        # 2-way fully associative over lines A B A C B: textbook LRU.
        cache = Cache(CacheConfig(size_kb=1, assoc=2, line_b=16),
                      policy="lru")
        # This cache has 32 sets; keep every line in set 0 by striding
        # by num_sets * line_b.
        stride = cache.config.num_sets
        a, b, c = 0, stride, 2 * stride
        pattern = run_sequence(cache, [a, b, a, c, b])
        #  A:miss  B:miss  A:hit  C:miss(evict B)  B:miss
        assert pattern == [False, False, True, False, False]

    def test_lru_keeps_recently_used(self):
        cache = Cache(CacheConfig(size_kb=1, assoc=2, line_b=16),
                      policy="lru")
        stride = cache.config.num_sets
        a, b, c = 0, stride, 2 * stride
        pattern = run_sequence(cache, [a, b, b, c, b, a])
        #  A:m  B:m  B:h  C:m(evict A, B recent)  B:h  A:m
        assert pattern == [False, False, True, False, True, False]


class TestFIFOVsLRUDivergence:
    def test_classic_divergence_sequence(self):
        """A B A C: LRU evicts B for C (A was touched), FIFO evicts A."""
        def build(policy):
            return Cache(CacheConfig(size_kb=1, assoc=2, line_b=16),
                         policy=policy)

        lru = build("lru")
        fifo = build("fifo")
        stride = lru.config.num_sets
        a, b, c = 0, stride, 2 * stride
        seq = [a, b, a, c, a]
        #            LRU: m m h m h   (C evicts B; A survives)
        assert run_sequence(lru, seq) == [False, False, True, False, True]
        #            FIFO: m m h m m  (C evicts A, the first in)
        assert run_sequence(fifo, seq) == [False, False, True, False, False]


class TestDirectMappedGolden:
    def test_thrash_pair(self):
        cache = Cache(CacheConfig(size_kb=2, assoc=1, line_b=16))
        stride = cache.config.num_sets  # same-set conflict in line ids
        a, b = 0, stride
        pattern = run_sequence(cache, [a, b, a, b, a])
        assert pattern == [False, False, False, False, False]

    def test_disjoint_sets_no_conflict(self):
        cache = Cache(CacheConfig(size_kb=2, assoc=1, line_b=16))
        pattern = run_sequence(cache, [0, 1, 0, 1])
        assert pattern == [False, False, True, True]


class TestPLRUGolden:
    def test_four_way_tree_victim(self):
        """Fill ways 0-3 in order, then access 0 and 1: PLRU points the
        tree away from the {0,1} half, so the next victim is in {2,3}."""
        cache = Cache(CacheConfig(size_kb=1, assoc=4, line_b=16),
                      policy="plru")
        stride = cache.config.num_sets
        lines = [i * stride for i in range(5)]
        for line in lines[:4]:
            assert not cache.access(line * 16).hit
        cache.access(lines[0] * 16)
        cache.access(lines[1] * 16)
        cache.access(lines[4] * 16)  # evicts from the {2,3} half
        # Probe without touching (access would refill and evict again).
        assert cache.contains(lines[0] * 16)
        assert cache.contains(lines[1] * 16)
        resident = [cache.contains(lines[i] * 16) for i in (2, 3)]
        assert resident.count(False) == 1  # exactly one was evicted


class TestWriteGolden:
    def test_write_back_dirty_propagation_sequence(self):
        cache = Cache(CacheConfig(size_kb=2, assoc=1, line_b=16),
                      write_back=True)
        stride = cache.config.num_sets * 16
        cache.access(0, is_write=True)     # fill dirty
        cache.access(16)                   # different set, clean
        result = cache.access(stride)      # evicts dirty line 0
        assert result.writeback_line_addr == 0
        result = cache.access(16 + stride) # evicts clean line 1
        assert result.writeback_line_addr is None
        assert cache.stats.writebacks == 1
