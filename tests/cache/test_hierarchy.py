"""Tests for the two-level cache hierarchy."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import DEFAULT_L2_CONFIG, CacheHierarchy

L1 = CacheConfig(size_kb=2, assoc=1, line_b=16)
L2 = CacheConfig(size_kb=8, assoc=2, line_b=16)


class TestHierarchy:
    def test_l1_hit_never_reaches_l2(self):
        h = CacheHierarchy(L1, L2)
        h.access(0)
        result = h.access(0)
        assert result.l1_hit
        assert not result.memory_access
        assert h.l2.stats.accesses == 1  # only the first miss went down

    def test_l1_miss_l2_hit(self):
        h = CacheHierarchy(L1, L2)
        stride = L1.num_sets * L1.line_b
        h.access(0)
        h.access(stride)  # evicts 0 from L1, both now in L2
        result = h.access(0)
        assert not result.l1_hit
        assert result.l2_hit
        assert not result.memory_access

    def test_cold_miss_reaches_memory(self):
        h = CacheHierarchy(L1, L2)
        result = h.access(0)
        assert not result.l1_hit
        assert result.l2_hit is False
        assert result.memory_access

    def test_no_l2_means_miss_goes_to_memory(self):
        h = CacheHierarchy(L1)
        result = h.access(0)
        assert result.memory_access
        assert h.l2 is None

    def test_l1_writeback_reaches_l2(self):
        h = CacheHierarchy(L1, L2, write_back=True)
        stride = L1.num_sets * L1.line_b
        h.access(0, is_write=True)
        l2_accesses_before = h.l2.stats.accesses
        h.access(stride)  # evicts dirty line 0 -> L2 write
        assert h.l2.stats.accesses == l2_accesses_before + 2

    def test_l2_must_be_at_least_l1(self):
        with pytest.raises(ValueError):
            CacheHierarchy(L2, L1)

    def test_run_trace_counts_memory_accesses(self):
        h = CacheHierarchy(L1, L2)
        stats = h.run_trace([0, 0, 16, 0])
        assert stats.l1.accesses == 4
        assert stats.memory_accesses == 2
        assert stats.global_miss_rate == pytest.approx(0.5)

    def test_run_trace_write_mask_checked(self):
        with pytest.raises(ValueError):
            CacheHierarchy(L1).run_trace([0, 16], writes=[True])

    def test_flush_clears_both_levels(self):
        h = CacheHierarchy(L1, L2)
        h.access(0)
        h.flush()
        assert h.l1.resident_lines == 0
        assert h.l2.resident_lines == 0

    def test_l2_filters_misses(self):
        """With L2, far fewer accesses reach memory than without."""
        import numpy as np

        rng = np.random.default_rng(7)
        # Working set larger than L1 (2KB) but inside L2 (32KB).
        trace = (rng.integers(0, 16 * 1024 // 4, size=6000) * 4).tolist()
        with_l2 = CacheHierarchy(L1, DEFAULT_L2_CONFIG).run_trace(trace)
        without = CacheHierarchy(L1).run_trace(trace)
        assert with_l2.memory_accesses < without.memory_accesses

    def test_global_miss_rate_empty(self):
        h = CacheHierarchy(L1)
        stats = h.run_trace([])
        assert stats.global_miss_rate == 0.0
