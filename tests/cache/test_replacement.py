"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    POLICY_NAMES,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        assert policy.victim([0, 1, 2, 3]) == 0

    def test_touch_reorders(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)
        assert policy.victim([0, 1, 2, 3]) == 1

    def test_untouched_occupied_way_preferred(self):
        policy = LRUPolicy(2)
        policy.touch(1)
        assert policy.victim([0, 1]) == 0

    def test_reset_clears_history(self):
        policy = LRUPolicy(2)
        policy.touch(1)
        policy.touch(0)
        policy.reset()
        # After a reset both occupied ways are untouched; the first listed
        # occupied way is evicted.
        assert policy.victim([0, 1]) == 0

    def test_victim_requires_occupied(self):
        with pytest.raises(ValueError):
            LRUPolicy(2).victim([])

    def test_touch_validates_way(self):
        with pytest.raises(ValueError):
            LRUPolicy(2).touch(2)
        with pytest.raises(ValueError):
            LRUPolicy(2).touch(-1)

    def test_single_way(self):
        policy = LRUPolicy(1)
        policy.touch(0)
        assert policy.victim([0]) == 0


class TestFIFO:
    def test_victim_is_first_inserted(self):
        policy = FIFOPolicy(3)
        for way in (2, 0, 1):
            policy.touch(way)
        assert policy.victim([0, 1, 2]) == 2

    def test_hit_does_not_reorder(self):
        policy = FIFOPolicy(2)
        policy.touch(0)
        policy.touch(1)
        policy.touch(0)  # hit on way 0 does not move it
        assert policy.victim([0, 1]) == 0

    def test_victim_removed_from_queue(self):
        policy = FIFOPolicy(2)
        policy.touch(0)
        policy.touch(1)
        assert policy.victim([0, 1]) == 0
        policy.touch(0)  # refill
        assert policy.victim([0, 1]) == 1

    def test_reset(self):
        policy = FIFOPolicy(2)
        policy.touch(1)
        policy.reset()
        assert policy.victim([0, 1]) == 0

    def test_victim_requires_occupied(self):
        with pytest.raises(ValueError):
            FIFOPolicy(2).victim([])


class TestRandom:
    def test_deterministic_for_seed(self):
        a = RandomPolicy(4, seed=7)
        b = RandomPolicy(4, seed=7)
        seq_a = [a.victim([0, 1, 2, 3]) for _ in range(20)]
        seq_b = [b.victim([0, 1, 2, 3]) for _ in range(20)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = RandomPolicy(4, seed=1)
        b = RandomPolicy(4, seed=2)
        seq_a = [a.victim([0, 1, 2, 3]) for _ in range(50)]
        seq_b = [b.victim([0, 1, 2, 3]) for _ in range(50)]
        assert seq_a != seq_b

    def test_victims_are_occupied(self):
        policy = RandomPolicy(4, seed=3)
        for _ in range(50):
            assert policy.victim([1, 3]) in (1, 3)

    def test_reset_restarts_stream(self):
        policy = RandomPolicy(4, seed=9)
        first = [policy.victim([0, 1, 2, 3]) for _ in range(10)]
        policy.reset()
        second = [policy.victim([0, 1, 2, 3]) for _ in range(10)]
        assert first == second

    def test_victim_requires_occupied(self):
        with pytest.raises(ValueError):
            RandomPolicy(2).victim([])


class TestPLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PLRUPolicy(3)

    def test_two_way_behaves_like_lru(self):
        policy = PLRUPolicy(2)
        policy.touch(0)
        policy.touch(1)
        assert policy.victim([0, 1]) == 0
        policy.touch(0)
        assert policy.victim([0, 1]) == 1

    def test_four_way_points_away_from_recent(self):
        policy = PLRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        victim = policy.victim([0, 1, 2, 3])
        assert victim != 3  # most recently used never evicted

    def test_prefers_unoccupied_way(self):
        policy = PLRUPolicy(4)
        policy.touch(0)
        assert policy.victim([0]) in (1, 2, 3)

    def test_reset(self):
        policy = PLRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.reset()
        assert policy.victim([0, 1, 2, 3]) == 0


class TestFactory:
    def test_all_names_constructible(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, 4)
            assert policy.num_ways == 4

    def test_names_complete(self):
        assert set(POLICY_NAMES) == {"fifo", "lru", "plru", "random"}

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("mru", 4)

    def test_seed_reaches_random(self):
        a = make_policy("random", 4, seed=5)
        b = make_policy("random", 4, seed=5)
        assert [a.victim([0, 1])] * 5 == [b.victim([0, 1])] * 5

    def test_non_positive_ways_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)
