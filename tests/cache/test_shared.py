"""Tests for the shared-L2 model and interference measurement."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.shared import (
    CORE_ADDRESS_STRIDE,
    SharedL2System,
    interference_penalty,
)

L1 = CacheConfig(2, 1, 32)
L2 = CacheConfig(16, 4, 64)


def looping_trace(lines, sweeps, line_b=32):
    base = np.arange(lines, dtype=np.int64) * line_b
    return np.tile(base, sweeps)


class TestSharedL2System:
    def test_single_core_matches_private_hierarchy(self):
        """With one core, the shared L2 *is* a private L2."""
        from repro.cache.hierarchy import CacheHierarchy

        trace = looping_trace(200, 5)
        shared = SharedL2System([L1], L2).run([trace])
        private = CacheHierarchy(L1, L2).run_trace(trace.tolist())
        assert shared.l1_stats[0].misses == private.l1.misses
        assert shared.memory_accesses[0] == private.memory_accesses

    def test_l2_counts_partition_l1_misses(self):
        traces = [looping_trace(100, 3), looping_trace(150, 3)]
        result = SharedL2System([L1, L1], L2).run(traces)
        for core in range(2):
            assert (
                result.l2_hits[core] + result.l2_misses[core]
                == result.l1_stats[core].misses
            )

    def test_cores_do_not_alias(self):
        """Identical traces on two cores occupy disjoint address space."""
        trace = looping_trace(50, 2)
        result = SharedL2System([L1, L1], L2).run([trace, trace])
        # Both cores see identical L1 behaviour.
        assert result.l1_stats[0].misses == result.l1_stats[1].misses
        assert CORE_ADDRESS_STRIDE > trace.max()

    def test_interference_increases_l2_misses(self):
        """Two working sets that fit the L2 alone but not together."""
        # Each loop: 300 lines * 64B-ish footprint ~ 9.6KB; two ~ 19KB > 16KB.
        a = looping_trace(300, 10)
        b = looping_trace(300, 10)
        alone = SharedL2System([L1], L2).run([a])
        together = SharedL2System([L1, L1], L2).run([a, b])
        assert together.memory_accesses[0] > alone.memory_accesses[0]

    def test_l2_miss_rate_helper(self):
        result = SharedL2System([L1], L2).run([looping_trace(50, 2)])
        assert 0.0 <= result.l2_miss_rate(0) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedL2System([], L2)
        with pytest.raises(ValueError):
            SharedL2System([L1], L2, window=0)
        with pytest.raises(ValueError):
            SharedL2System([CacheConfig(8, 4, 64)], CacheConfig(4, 1, 16))
        system = SharedL2System([L1, L1], L2)
        with pytest.raises(ValueError):
            system.run([looping_trace(10, 1)])  # one trace, two cores
        with pytest.raises(ValueError):
            system.run(
                [looping_trace(10, 1), looping_trace(10, 1)],
                writes=[[True]],
            )

    def test_writes_mask_accepted(self):
        trace = looping_trace(20, 2)
        mask = np.zeros(len(trace), dtype=bool)
        mask[::3] = True
        result = SharedL2System([L1], L2).run([trace], writes=[mask])
        assert result.l1_stats[0].write_accesses == int(mask.sum())


class TestInterferencePenalty:
    def test_no_interference_when_l2_holds_everything(self):
        small = [looping_trace(20, 5), looping_trace(20, 5)]
        penalties = interference_penalty([L1, L1], small, L2)
        for value in penalties.values():
            assert value == pytest.approx(1.0)

    def test_penalty_when_working_sets_collide(self):
        heavy = [looping_trace(300, 10), looping_trace(300, 10)]
        penalties = interference_penalty([L1, L1], heavy, L2)
        assert max(penalties.values()) > 1.5

    def test_penalty_never_below_one_for_lru_loops(self):
        traces = [looping_trace(100, 5), looping_trace(250, 5)]
        penalties = interference_penalty([L1, L1], traces, L2)
        for value in penalties.values():
            assert value >= 0.99
