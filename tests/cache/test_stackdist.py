"""Unit tests for the stack-distance characterisation engine."""

import numpy as np
import pytest

from repro.cache.cache import Cache
from repro.cache.config import DESIGN_SPACE, CacheConfig
from repro.cache.stackdist import (
    StackDistanceProfile,
    profile_trace,
    simulate_many,
)


def _profile(addresses, *, line_b=64, num_sets=4, max_assoc=4, writes=None):
    return profile_trace(
        addresses, line_b=line_b, num_sets=num_sets,
        max_assoc=max_assoc, writes=writes,
    )


class TestProfileTrace:
    def test_repeated_line_hits_at_depth_zero(self):
        profile = _profile([0, 0, 0, 0])
        assert profile.accesses == 4
        assert profile.depth_hist[0] == 3
        assert profile.compulsory_misses == 1

    def test_distinct_lines_all_miss(self):
        # Four lines, same set (num_sets=4, stride 4 lines of 64B).
        profile = _profile([0, 1024, 2048, 4096])
        assert profile.hits_for_assoc(4) == 0
        assert profile.compulsory_misses == 4

    def test_depth_histogram_shape(self):
        profile = _profile([0, 64, 0], max_assoc=2, num_sets=1)
        # max_assoc + 1 buckets; the last one is the miss bucket.
        assert len(profile.depth_hist) == 3
        assert sum(profile.depth_hist) == profile.accesses
        # 0 then 64 miss; the second 0 hits at depth 1.
        assert profile.depth_hist[1] == 1
        assert profile.depth_hist[2] == 2

    def test_hits_monotone_in_assoc(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 14, size=500)
        profile = _profile(addresses, num_sets=8)
        hits = [profile.hits_for_assoc(a) for a in range(1, 5)]
        assert hits == sorted(hits)

    def test_miss_curve_decreasing(self):
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 1 << 14, size=500)
        profile = _profile(addresses, num_sets=8)
        curve = profile.miss_curve()
        assert len(curve) == 4
        assert list(curve) == sorted(curve, reverse=True)

    def test_empty_trace(self):
        profile = _profile([])
        assert profile.accesses == 0
        stats = profile.stats_for_assoc(1)
        assert stats.accesses == 0
        assert stats.misses == 0

    def test_numpy_and_list_inputs_agree(self):
        addresses = [0, 64, 128, 0, 64, 4096]
        from_list = _profile(addresses)
        from_array = _profile(np.asarray(addresses, dtype=np.int64))
        assert from_list == from_array

    def test_write_mask_counted(self):
        writes = [True, False, True, False]
        profile = _profile([0, 0, 64, 64], num_sets=1, writes=writes)
        assert profile.write_accesses == 2
        assert sum(profile.write_depth_hist) == 2

    def test_mismatched_write_mask_rejected(self):
        with pytest.raises(ValueError, match="writes mask length"):
            _profile([0, 64], writes=[True])

    def test_multidimensional_addresses_rejected(self):
        with pytest.raises(ValueError):
            _profile(np.zeros((2, 2), dtype=np.int64))

    def test_assoc_out_of_range_rejected(self):
        profile = _profile([0, 64], max_assoc=2)
        with pytest.raises(ValueError):
            profile.stats_for_assoc(0)
        with pytest.raises(ValueError):
            profile.stats_for_assoc(3)


class TestStatsForAssoc:
    def test_matches_reference_cache_exactly(self):
        rng = np.random.default_rng(2)
        addresses = rng.integers(0, 1 << 15, size=800)
        writes = rng.random(800) < 0.3
        for config in (CacheConfig(2, 1, 64), CacheConfig(8, 4, 64)):
            profile = profile_trace(
                addresses, line_b=config.line_b,
                num_sets=config.num_sets, max_assoc=config.assoc,
                writes=writes,
            )
            cache = Cache(config, policy="lru")
            ref = cache.run_trace(addresses, writes)
            assert profile.stats_for_assoc(config.assoc) == ref

    def test_one_profile_serves_all_associativities(self):
        # 8KB_4W, 4KB_2W and 2KB_1W at 64B lines share num_sets=32.
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 1 << 15, size=600)
        profile = profile_trace(
            addresses, line_b=64, num_sets=32, max_assoc=4
        )
        for size_kb, assoc in ((2, 1), (4, 2), (8, 4)):
            config = CacheConfig(size_kb, assoc, 64)
            ref = Cache(config, policy="lru").run_trace(addresses)
            assert profile.stats_for_assoc(assoc) == ref


class TestSimulateMany:
    def test_covers_requested_configs(self):
        rng = np.random.default_rng(4)
        addresses = rng.integers(0, 1 << 14, size=300)
        many = simulate_many(addresses, DESIGN_SPACE)
        assert set(many) == set(DESIGN_SPACE)

    def test_duplicate_configs_accepted(self):
        config = CacheConfig(4, 2, 32)
        many = simulate_many([0, 32, 64, 0], (config, config))
        assert set(many) == {config}

    def test_requires_configs(self):
        many = simulate_many([0, 64], ())
        assert many == {}

    def test_deep_assoc_uses_generic_path(self):
        config = CacheConfig(8, 8, 64)
        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 1 << 14, size=400)
        many = simulate_many(addresses, (config,))
        ref = Cache(config, policy="lru").run_trace(addresses)
        assert many[config] == ref

    def test_mismatched_writes_rejected(self):
        with pytest.raises(ValueError, match="writes mask length"):
            simulate_many([0, 64], (CacheConfig(4, 2, 32),), writes=[True])
