"""Tests for cache statistics counters."""

import pytest

from repro.cache.stats import CacheStats


class TestRecording:
    def test_record_hit(self):
        stats = CacheStats()
        stats.record_hit(is_write=False)
        stats.record_hit(is_write=True)
        assert stats.accesses == 2
        assert stats.hits == 2
        assert stats.read_accesses == 1
        assert stats.write_accesses == 1
        stats.validate()

    def test_record_miss(self):
        stats = CacheStats()
        stats.record_miss(is_write=False, compulsory=True)
        stats.record_miss(is_write=True)
        assert stats.misses == 2
        assert stats.read_misses == 1
        assert stats.write_misses == 1
        assert stats.compulsory_misses == 1
        stats.validate()

    def test_rates(self):
        stats = CacheStats()
        stats.record_hit(is_write=False)
        stats.record_miss(is_write=False)
        assert stats.miss_rate == pytest.approx(0.5)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_rates_empty(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0


class TestMergeAndCopy:
    def test_merge_sums_all_fields(self):
        a = CacheStats()
        a.record_hit(is_write=False)
        b = CacheStats()
        b.record_miss(is_write=True, compulsory=True)
        merged = a.merge(b)
        assert merged.accesses == 2
        assert merged.hits == 1
        assert merged.misses == 1
        assert merged.compulsory_misses == 1
        merged.validate()

    def test_merge_leaves_inputs_unchanged(self):
        a = CacheStats()
        a.record_hit(is_write=False)
        b = CacheStats()
        a.merge(b)
        assert a.accesses == 1
        assert b.accesses == 0

    def test_copy_is_independent(self):
        a = CacheStats()
        a.record_hit(is_write=False)
        c = a.copy()
        c.record_miss(is_write=False)
        assert a.misses == 0
        assert c.misses == 1


class TestValidation:
    def test_inconsistent_hit_miss_sum(self):
        stats = CacheStats(accesses=3, hits=1, misses=1)
        with pytest.raises(ValueError):
            stats.validate()

    def test_inconsistent_read_write_split(self):
        stats = CacheStats(accesses=2, hits=2, read_accesses=1)
        with pytest.raises(ValueError):
            stats.validate()

    def test_inconsistent_miss_split(self):
        stats = CacheStats(
            accesses=2, misses=2, read_accesses=1, write_accesses=1,
            read_misses=0, write_misses=1,
        )
        with pytest.raises(ValueError):
            stats.validate()

    def test_compulsory_bounded_by_misses(self):
        stats = CacheStats(
            accesses=1, misses=1, read_accesses=1, read_misses=1,
            compulsory_misses=2,
        )
        with pytest.raises(ValueError):
            stats.validate()

    def test_negative_counter(self):
        stats = CacheStats(evictions=-1)
        with pytest.raises(ValueError):
            stats.validate()

    def test_fresh_stats_valid(self):
        CacheStats().validate()
