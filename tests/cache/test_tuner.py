"""Tests for the cache tuner / reconfiguration model."""

import pytest

from repro.cache.config import CacheConfig
from repro.cache.tuner import CacheTuner, ReconfigurationCost, TunerCostModel

A = CacheConfig(size_kb=8, assoc=1, line_b=16)
B = CacheConfig(size_kb=8, assoc=4, line_b=64)
OTHER_SIZE = CacheConfig(size_kb=4, assoc=1, line_b=16)


class TestCostModel:
    def test_noop_is_free(self):
        model = TunerCostModel()
        assert model.cost(A, A) == ReconfigurationCost.ZERO

    def test_cost_scales_with_old_lines(self):
        model = TunerCostModel(flush_cycles_per_line=2, control_cycles=10)
        cost = model.cost(A, B)
        assert cost.cycles == 10 + 2 * A.num_lines

    def test_energy_components(self):
        model = TunerCostModel(
            flush_energy_per_line_nj=0.5, control_energy_nj=3.0
        )
        cost = model.cost(A, B)
        assert cost.energy_nj == pytest.approx(3.0 + 0.5 * A.num_lines)

    def test_zero_constant(self):
        assert ReconfigurationCost.ZERO.cycles == 0
        assert ReconfigurationCost.ZERO.energy_nj == 0.0


class TestCacheTuner:
    def test_initial_config(self):
        tuner = CacheTuner(A)
        assert tuner.current == A
        assert tuner.reconfigurations == 0

    def test_reconfigure_updates_current(self):
        tuner = CacheTuner(A)
        cost = tuner.reconfigure(B)
        assert tuner.current == B
        assert cost.cycles > 0
        assert tuner.reconfigurations == 1

    def test_noop_not_counted(self):
        tuner = CacheTuner(A)
        cost = tuner.reconfigure(A)
        assert cost == ReconfigurationCost.ZERO
        assert tuner.reconfigurations == 0
        assert tuner.total_cycles == 0

    def test_size_change_rejected(self):
        tuner = CacheTuner(A)
        with pytest.raises(ValueError):
            tuner.reconfigure(OTHER_SIZE)
        assert tuner.current == A

    def test_accumulates_totals(self):
        tuner = CacheTuner(A)
        c1 = tuner.reconfigure(B)
        c2 = tuner.reconfigure(A)
        assert tuner.total_cycles == c1.cycles + c2.cycles
        assert tuner.total_energy_nj == pytest.approx(
            c1.energy_nj + c2.energy_nj
        )
        assert tuner.reconfigurations == 2

    def test_cost_depends_on_old_config(self):
        # Flushing a 64B-line cache flushes fewer (larger) lines.
        model = TunerCostModel(control_cycles=0, flush_cycles_per_line=1)
        from_small_lines = CacheTuner(A, model).reconfigure(B)
        from_large_lines = CacheTuner(B, model).reconfigure(A)
        assert from_small_lines.cycles == A.num_lines
        assert from_large_lines.cycles == B.num_lines
        assert from_small_lines.cycles > from_large_lines.cycles
