"""Tests for the ANN dataset builder."""

import numpy as np
import pytest

from repro.cache.config import configs_for_size
from repro.characterization.dataset import (
    Dataset,
    build_dataset,
    expand_suite,
)
from repro.characterization.store import CharacterizationStore
from repro.workloads.counters import ANN_SELECTED_FEATURES
from repro.workloads.eembc import eembc_suite

SMALL_CONFIGS = configs_for_size(2) + configs_for_size(4) + configs_for_size(8)


@pytest.fixture(scope="module")
def built():
    # Four families, three variants each over the full design space.
    return build_dataset(
        eembc_suite()[:4], variants_per_family=3, configs=SMALL_CONFIGS, seed=0
    )


class TestExpandSuite:
    def test_counts(self):
        expanded = expand_suite(eembc_suite()[:2], variants_per_family=4)
        assert len(expanded) == 8

    def test_variant_zero_is_original(self):
        expanded = expand_suite(eembc_suite()[:1], variants_per_family=3)
        assert expanded[0] is eembc_suite()[0]
        assert expanded[1].name == "a2time.v1"

    def test_validation(self):
        with pytest.raises(ValueError):
            expand_suite(eembc_suite()[:1], variants_per_family=0)


class TestBuildDataset:
    def test_shapes(self, built):
        dataset, store = built
        assert len(dataset) == 12
        assert dataset.features.shape == (12, len(ANN_SELECTED_FEATURES))
        assert len(store) == 12

    def test_labels_are_legal_sizes(self, built):
        dataset, _ = built
        assert set(np.unique(dataset.labels_kb)) <= {2.0, 4.0, 8.0}

    def test_labels_match_store(self, built):
        dataset, store = built
        for name, label in zip(dataset.names, dataset.labels_kb):
            assert store.best_size_kb(name) == label

    def test_families_recorded(self, built):
        dataset, _ = built
        assert set(dataset.families) == {s.name for s in eembc_suite()[:4]}

    def test_store_reuse_skips_recharacterisation(self, built):
        _, store = built
        before = len(store)
        dataset2, store2 = build_dataset(
            eembc_suite()[:4],
            variants_per_family=3,
            configs=SMALL_CONFIGS,
            seed=0,
            store=store,
        )
        assert store2 is store
        assert len(store) == before
        assert len(dataset2) == 12

    def test_features_match_counters(self, built):
        dataset, store = built
        for i, name in enumerate(dataset.names):
            expected = store.counters(name).as_vector(ANN_SELECTED_FEATURES)
            assert np.allclose(dataset.features[i], expected)


class TestSplit:
    def test_family_aware_no_leakage(self, built):
        dataset, _ = built
        split = dataset.split(train=0.5, val=0.25, seed=0, by_family=True)
        train_fams = set(split.train.families)
        val_fams = set(split.val.families)
        test_fams = set(split.test.families)
        assert not (train_fams & val_fams)
        assert not (train_fams & test_fams)
        assert not (val_fams & test_fams)

    def test_partition_complete(self, built):
        dataset, _ = built
        split = dataset.split(seed=1)
        total = len(split.train) + len(split.val) + len(split.test)
        assert total == len(dataset)

    def test_random_split_fractions(self, built):
        dataset, _ = built
        split = dataset.split(train=0.5, val=0.25, seed=0, by_family=False)
        assert len(split.train) == 6
        assert len(split.val) == 3
        assert len(split.test) == 3

    def test_split_deterministic(self, built):
        dataset, _ = built
        a = dataset.split(seed=3, by_family=False)
        b = dataset.split(seed=3, by_family=False)
        assert a.train.names == b.train.names

    def test_invalid_fractions(self, built):
        dataset, _ = built
        with pytest.raises(ValueError):
            dataset.split(train=0.9, val=0.2)
        with pytest.raises(ValueError):
            dataset.split(train=0.0)


class TestDatasetContainer:
    def test_take(self, built):
        dataset, _ = built
        sub = dataset.take([0, 2])
        assert len(sub) == 2
        assert sub.names == (dataset.names[0], dataset.names[2])
        assert np.allclose(sub.features[1], dataset.features[2])

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                features=np.zeros((3, 2)),
                labels_kb=np.zeros(2),
                names=("a", "b", "c"),
                families=("a", "b", "c"),
                feature_names=("f1", "f2"),
            )

    def test_feature_name_width_checked(self):
        with pytest.raises(ValueError):
            Dataset(
                features=np.zeros((2, 2)),
                labels_kb=np.zeros(2),
                names=("a", "b"),
                families=("a", "b"),
                feature_names=("f1",),
            )
