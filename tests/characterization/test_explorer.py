"""Tests for design-space characterisation."""

import pytest

from repro.cache.config import BASE_CONFIG, DESIGN_SPACE, CacheConfig, configs_for_size
from repro.characterization.explorer import (
    characterize_benchmark,
    characterize_suite,
)
from repro.workloads.eembc import eembc_benchmark, eembc_suite


@pytest.fixture(scope="module")
def char():
    return characterize_benchmark(eembc_benchmark("a2time"))


class TestCharacterizeBenchmark:
    def test_covers_all_configs(self, char):
        assert set(char.configs()) == set(DESIGN_SPACE)

    def test_stats_consistent(self, char):
        spec = eembc_benchmark("a2time")
        for config in char.configs():
            result = char.result(config)
            result.stats.validate()
            assert result.stats.accesses == spec.mem_accesses

    def test_same_trace_all_configs(self, char):
        # Same dynamic execution everywhere: access counts equal.
        counts = {char.result(c).stats.accesses for c in char.configs()}
        assert len(counts) == 1

    def test_estimates_positive(self, char):
        for config in char.configs():
            result = char.result(config)
            assert result.total_energy_nj > 0
            assert result.total_cycles > 0

    def test_best_config_minimises_energy(self, char):
        best = char.best_config()
        best_energy = char.result(best).total_energy_nj
        for config in char.configs():
            assert best_energy <= char.result(config).total_energy_nj

    def test_best_config_for_size(self, char):
        for size in (2, 4, 8):
            best = char.best_config_for_size(size)
            assert best.size_kb == size
            for config in configs_for_size(size):
                assert (
                    char.result(best).total_energy_nj
                    <= char.result(config).total_energy_nj
                )

    def test_best_size_matches_best_config(self, char):
        assert char.best_size_kb() == char.best_config().size_kb

    def test_energy_degradation(self, char):
        assert char.energy_degradation(char.best_config()) == pytest.approx(0.0)
        assert char.energy_degradation(BASE_CONFIG) >= 0.0

    def test_unknown_config_rejected(self, char):
        with pytest.raises(KeyError):
            char.result(CacheConfig(size_kb=16, assoc=1, line_b=16))
        with pytest.raises(ValueError):
            char.best_config_for_size(16)

    def test_counters_from_base_config(self, char):
        base = char.result(BASE_CONFIG)
        assert char.counters.cache_misses == base.stats.misses
        assert char.counters.cycles == base.total_cycles

    def test_subset_of_configs(self):
        subset = configs_for_size(2)
        char = characterize_benchmark(eembc_benchmark("puwmod"), configs=subset)
        assert set(char.configs()) == set(subset)
        assert char.best_size_kb() == 2

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            characterize_benchmark(eembc_benchmark("puwmod"), configs=[])

    def test_deterministic(self):
        a = characterize_benchmark(eembc_benchmark("rspeed"), seed=4)
        b = characterize_benchmark(eembc_benchmark("rspeed"), seed=4)
        assert a.result(BASE_CONFIG).total_energy_nj == pytest.approx(
            b.result(BASE_CONFIG).total_energy_nj
        )


class TestCharacterizeSuite:
    def test_all_benchmarks(self):
        subset = eembc_suite()[:3]
        chars = characterize_suite(subset, configs=configs_for_size(2))
        assert set(chars) == {s.name for s in subset}

    def test_duplicate_names_rejected(self):
        spec = eembc_benchmark("a2time")
        with pytest.raises(ValueError):
            characterize_suite([spec, spec], configs=configs_for_size(2))


class TestMonotoneBehaviour:
    def test_misses_never_increase_with_assoc_same_sets(self):
        """LRU inclusion: same set count, more ways => no more misses."""
        char = characterize_benchmark(eembc_benchmark("idctrn"))
        # 4KB 1-way and 8KB 2-way share the set count at equal line size.
        for line in (16, 32, 64):
            fewer = char.result(CacheConfig(4, 1, line)).stats.misses
            more = char.result(CacheConfig(8, 2, line)).stats.misses
            assert more <= fewer


class TestWriteBackCharacterisation:
    def test_write_back_counts_writebacks(self):
        from repro.energy.model import EnergyModel

        spec = eembc_benchmark("canrdr")
        char = characterize_benchmark(
            spec,
            configs=configs_for_size(2),
            energy_model=EnergyModel(include_writeback_energy=True),
            write_back=True,
        )
        total_writebacks = sum(
            char.result(c).stats.writebacks for c in char.configs()
        )
        assert total_writebacks > 0

    def test_write_back_same_access_counts(self):
        spec = eembc_benchmark("puwmod")
        wt = characterize_benchmark(spec, configs=configs_for_size(2))
        wb = characterize_benchmark(
            spec, configs=configs_for_size(2), write_back=True
        )
        for config in wt.configs():
            assert (
                wt.result(config).stats.accesses
                == wb.result(config).stats.accesses
            )
            # Hit/miss behaviour is identical (write-allocate both ways);
            # only dirty-line writebacks differ.
            assert (
                wt.result(config).stats.misses
                == wb.result(config).stats.misses
            )
