"""Tests for the process-parallel suite sweep and its instrumentation."""

import pytest

from repro.characterization.explorer import characterize_suite
from repro.characterization.instrumentation import SweepTiming, TaskTiming
from repro.characterization.parallel import characterize_suite_parallel
from repro.workloads.eembc import eembc_suite


@pytest.fixture(scope="module")
def specs():
    return eembc_suite()[:4]


@pytest.fixture(scope="module")
def serial(specs):
    return characterize_suite(specs, seed=0)


def _assert_same_characterizations(a, b):
    assert set(a) == set(b)
    for name in a:
        assert a[name].counters == b[name].counters
        assert set(a[name].results) == set(b[name].results)
        for config in a[name].results:
            assert a[name].result(config).stats == b[name].result(config).stats


class TestParallelEquivalence:
    def test_two_workers_match_serial(self, specs, serial):
        result = characterize_suite_parallel(specs, seed=0, workers=2)
        _assert_same_characterizations(serial, result.characterizations)

    def test_single_worker_matches_serial(self, specs, serial):
        result = characterize_suite_parallel(specs, seed=0, workers=1)
        _assert_same_characterizations(serial, result.characterizations)
        assert result.timing.workers == 1

    def test_workers_clamped_to_suite_size(self, specs):
        result = characterize_suite_parallel(specs, seed=0, workers=64)
        assert result.timing.workers == len(specs)

    def test_preserves_suite_order(self, specs):
        result = characterize_suite_parallel(specs, seed=0, workers=2)
        assert list(result.characterizations) == [s.name for s in specs]
        assert [t.name for t in result.timing.tasks] == [s.name for s in specs]

    def test_duplicate_names_rejected(self, specs):
        with pytest.raises(ValueError, match="duplicate"):
            characterize_suite_parallel(list(specs) + [specs[0]], seed=0)

    def test_engine_passthrough(self, specs, serial):
        result = characterize_suite_parallel(
            specs, seed=0, workers=2, engine="legacy"
        )
        _assert_same_characterizations(serial, result.characterizations)

    def test_characterize_suite_workers_param(self, specs, serial):
        via_suite = characterize_suite(specs, seed=0, workers=2)
        _assert_same_characterizations(serial, via_suite)


class TestTiming:
    def test_task_timings_sane(self, specs):
        result = characterize_suite_parallel(specs, seed=0, workers=2)
        timing = result.timing
        assert timing.wall_seconds > 0
        assert len(timing.tasks) == len(specs)
        for task in timing.tasks:
            assert task.seconds > 0
            assert task.accesses > 0
            assert task.configs == 18

    def test_throughput_properties(self):
        timing = SweepTiming(
            tasks=(
                TaskTiming(name="a", seconds=1.0, accesses=100, configs=18),
                TaskTiming(name="b", seconds=3.0, accesses=300, configs=18),
            ),
            wall_seconds=2.0,
            workers=2,
        )
        assert timing.total_accesses == 400
        assert timing.total_task_seconds == pytest.approx(4.0)
        assert timing.traces_per_second == pytest.approx(1.0)
        assert timing.accesses_per_second == pytest.approx(200.0)
        assert timing.replays_per_second == pytest.approx(18.0)
        assert "2 workers" in timing.summary()

    def test_zero_wall_time_guard(self):
        timing = SweepTiming(tasks=(), wall_seconds=0.0, workers=1)
        assert timing.traces_per_second == 0.0
        assert timing.accesses_per_second == 0.0
        assert timing.replays_per_second == 0.0
