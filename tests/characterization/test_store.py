"""Tests for the characterisation store and its persistence."""

import pytest

from repro.cache.config import BASE_CONFIG, configs_for_size
from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.workloads.eembc import eembc_suite


@pytest.fixture(scope="module")
def store():
    # Small but real: three benchmarks over the 2KB and 4KB subspaces.
    configs = configs_for_size(2) + configs_for_size(4) + configs_for_size(8)
    return CharacterizationStore(
        characterize_suite(eembc_suite()[:3], configs=configs)
    )


class TestMappingInterface:
    def test_contains_and_len(self, store):
        assert len(store) == 3
        assert "a2time" in store
        assert "matrix" not in store

    def test_names_order(self, store):
        assert store.names() == ["a2time", "aifftr", "aifirf"]

    def test_get_unknown_rejected(self, store):
        with pytest.raises(KeyError):
            store.get("nonexistent")

    def test_lookups(self, store):
        estimate = store.estimate("a2time", BASE_CONFIG)
        assert estimate.total_cycles > 0
        assert store.best_config("a2time").size_kb == store.best_size_kb("a2time")
        assert store.counters("a2time").instructions > 0

    def test_subset(self, store):
        sub = store.subset(["a2time"])
        assert len(sub) == 1
        with pytest.raises(KeyError):
            store.subset(["missing"])


class TestPersistence:
    def test_json_round_trip(self, store, tmp_path):
        path = tmp_path / "store.json"
        store.to_json(path)
        loaded = CharacterizationStore.from_json(path)
        assert set(loaded.names()) == set(store.names())
        for name in store.names():
            original = store.get(name)
            restored = loaded.get(name)
            assert set(restored.results) == set(original.results)
            for config in original.results:
                a = original.result(config)
                b = restored.result(config)
                assert a.stats.hits == b.stats.hits
                assert a.stats.misses == b.stats.misses
                assert a.estimate.total_cycles == b.estimate.total_cycles
                assert a.estimate.total_energy_nj == pytest.approx(
                    b.estimate.total_energy_nj
                )
            assert restored.counters == original.counters

    def test_round_trip_preserves_best_config(self, store, tmp_path):
        path = tmp_path / "store.json"
        store.to_json(path)
        loaded = CharacterizationStore.from_json(path)
        for name in store.names():
            assert loaded.best_config(name) == store.best_config(name)

    def test_add_replaces(self, store):
        fresh = CharacterizationStore()
        char = store.get("a2time")
        fresh.add(char)
        fresh.add(char)
        assert len(fresh) == 1
