"""Tests for the characterisation store and its persistence."""

import json

import pytest

from repro.cache.config import BASE_CONFIG, DESIGN_SPACE, configs_for_size
from repro.characterization.explorer import GENERATOR_VERSION, characterize_suite
from repro.characterization.store import (
    CharacterizationStore,
    StoreMeta,
    design_space_fingerprint,
)
from repro.workloads.eembc import eembc_suite


@pytest.fixture(scope="module")
def store():
    # Small but real: three benchmarks over the 2KB and 4KB subspaces.
    configs = configs_for_size(2) + configs_for_size(4) + configs_for_size(8)
    return CharacterizationStore(
        characterize_suite(eembc_suite()[:3], configs=configs)
    )


class TestMappingInterface:
    def test_contains_and_len(self, store):
        assert len(store) == 3
        assert "a2time" in store
        assert "matrix" not in store

    def test_names_order(self, store):
        assert store.names() == ["a2time", "aifftr", "aifirf"]

    def test_get_unknown_rejected(self, store):
        with pytest.raises(KeyError):
            store.get("nonexistent")

    def test_lookups(self, store):
        estimate = store.estimate("a2time", BASE_CONFIG)
        assert estimate.total_cycles > 0
        assert store.best_config("a2time").size_kb == store.best_size_kb("a2time")
        assert store.counters("a2time").instructions > 0

    def test_subset(self, store):
        sub = store.subset(["a2time"])
        assert len(sub) == 1
        with pytest.raises(KeyError):
            store.subset(["missing"])


class TestPersistence:
    def test_json_round_trip(self, store, tmp_path):
        path = tmp_path / "store.json"
        store.to_json(path)
        loaded = CharacterizationStore.from_json(path)
        assert set(loaded.names()) == set(store.names())
        for name in store.names():
            original = store.get(name)
            restored = loaded.get(name)
            assert set(restored.results) == set(original.results)
            for config in original.results:
                a = original.result(config)
                b = restored.result(config)
                assert a.stats.hits == b.stats.hits
                assert a.stats.misses == b.stats.misses
                assert a.estimate.total_cycles == b.estimate.total_cycles
                assert a.estimate.total_energy_nj == pytest.approx(
                    b.estimate.total_energy_nj
                )
            assert restored.counters == original.counters

    def test_round_trip_preserves_best_config(self, store, tmp_path):
        path = tmp_path / "store.json"
        store.to_json(path)
        loaded = CharacterizationStore.from_json(path)
        for name in store.names():
            assert loaded.best_config(name) == store.best_config(name)

    def test_add_replaces(self, store):
        fresh = CharacterizationStore()
        char = store.get("a2time")
        fresh.add(char)
        fresh.add(char)
        assert len(fresh) == 1


def _meta(**overrides):
    defaults = dict(
        seed=0,
        configs_fingerprint=design_space_fingerprint(DESIGN_SPACE),
    )
    defaults.update(overrides)
    return StoreMeta(**defaults)


class TestStoreMeta:
    def test_fingerprint_order_insensitive(self):
        forward = design_space_fingerprint(DESIGN_SPACE)
        backward = design_space_fingerprint(tuple(reversed(DESIGN_SPACE)))
        assert forward == backward

    def test_fingerprint_distinguishes_spaces(self):
        full = design_space_fingerprint(DESIGN_SPACE)
        partial = design_space_fingerprint(configs_for_size(2))
        assert full != partial

    def test_cache_key_varies_with_every_field(self):
        base = _meta()
        assert base.generator_version == GENERATOR_VERSION
        variants = (
            _meta(seed=1),
            _meta(configs_fingerprint=design_space_fingerprint(
                configs_for_size(4)
            )),
            _meta(generator_version="0"),
            _meta(variant="dataset:variants=12"),
        )
        keys = {base.cache_key()} | {m.cache_key() for m in variants}
        assert len(keys) == 5

    def test_cache_key_deterministic(self):
        assert _meta().cache_key() == _meta().cache_key()

    def test_meta_round_trips_through_json(self, store, tmp_path):
        meta = _meta(seed=42, variant="unit-test")
        tagged = CharacterizationStore(
            {name: store.get(name) for name in store.names()}, meta=meta
        )
        path = tmp_path / "tagged.json"
        tagged.to_json(path)
        loaded = CharacterizationStore.from_json(path)
        assert loaded.meta == meta
        assert loaded.names() == tagged.names()

    def test_subset_preserves_meta(self, store):
        meta = _meta(seed=5)
        tagged = CharacterizationStore(
            {name: store.get(name) for name in store.names()}, meta=meta
        )
        assert tagged.subset(["a2time"]).meta == meta

    def test_legacy_flat_json_loads_with_none_meta(self, store, tmp_path):
        path = tmp_path / "legacy.json"
        store.to_json(path)
        # Strip the envelope down to the pre-metadata flat layout.
        benchmarks = json.loads(path.read_text())["benchmarks"]
        path.write_text(json.dumps(benchmarks))
        loaded = CharacterizationStore.from_json(path)
        assert loaded.meta is None
        assert set(loaded.names()) == set(store.names())
        for name in store.names():
            assert loaded.best_config(name) == store.best_config(name)
