"""Tests for benchmark parameter sweeps."""

import pytest

from repro.characterization.sweep import (
    sweep_instructions,
    sweep_working_set,
)
from repro.workloads.eembc import eembc_benchmark


class TestWorkingSetSweep:
    def test_best_size_transitions_upward(self):
        # Scaling idctrn's ~3KB loop up pushes the best size from 4KB
        # toward 8KB; scaling down pulls it to 2KB.
        spec = eembc_benchmark("idctrn")
        points = sweep_working_set(spec, scales=(0.3, 1.0, 2.2))
        sizes = [p.best_size_kb for p in points]
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sizes[0] < sizes[2]

    def test_footprint_scales(self):
        spec = eembc_benchmark("puwmod")
        points = sweep_working_set(spec, scales=(0.5, 2.0))
        assert points[0].footprint_bytes < points[1].footprint_bytes

    def test_energy_by_size_covers_design_space(self):
        spec = eembc_benchmark("puwmod")
        (point,) = sweep_working_set(spec, scales=(1.0,))
        assert set(point.energy_by_size_nj) == {2, 4, 8}
        assert point.best_energy_nj == pytest.approx(
            min(point.energy_by_size_nj.values())
        )

    def test_scale_one_matches_plain_characterisation(self):
        from repro.characterization.explorer import characterize_benchmark

        spec = eembc_benchmark("a2time")
        (point,) = sweep_working_set(spec, scales=(1.0,))
        plain = characterize_benchmark(spec)
        assert point.best_config == plain.best_config()

    def test_validation(self):
        spec = eembc_benchmark("puwmod")
        with pytest.raises(ValueError):
            sweep_working_set(spec, scales=())
        with pytest.raises(ValueError):
            sweep_working_set(spec, scales=(0.0,))


class TestInstructionSweep:
    def test_best_size_is_length_invariant(self):
        # The best cache size is a property of the access pattern, not
        # the execution length.
        spec = eembc_benchmark("idctrn")
        points = sweep_instructions(spec, scales=(0.5, 1.0, 2.0))
        sizes = {p.best_size_kb for p in points}
        assert len(sizes) == 1

    def test_energy_grows_with_length(self):
        spec = eembc_benchmark("puwmod")
        points = sweep_instructions(spec, scales=(1.0, 3.0))
        assert points[1].best_energy_nj > points[0].best_energy_nj

    def test_validation(self):
        spec = eembc_benchmark("puwmod")
        with pytest.raises(ValueError):
            sweep_instructions(spec, scales=())
        with pytest.raises(ValueError):
            sweep_instructions(spec, scales=(-1.0,))
