"""DAG scheduling: precedence gating, deadline policies, engine limits.

The three acceptance properties of the task-graph axis:

* an **edge-free** graph set run through :meth:`run_dags` is
  bit-identical to the equivalent plain-arrival run on the same engine
  (releases degrade to arrivals when there is nothing to gate);
* precedence is a hard gate: no task starts before its last
  predecessor completes, under full invariant checking;
* on the congested edge-free scenario, deadline-order dispatch (EDF)
  strictly beats arrival-order dispatch on deadline misses.

HEFT is exempt from the bit-identity grid by design: its queue key
includes graph-level pressure (criticality x upward rank + pending
work) that has no counterpart in a plain run.
"""

import dataclasses

import pytest

from repro.core.policies import (
    ALL_POLICY_NAMES,
    DEADLINE_POLICY_NAMES,
    POLICY_NAMES,
    make_policy,
)
from repro.core.system import base_system, paper_system
from repro.workloads.dag import TaskGraph, TaskSpec, dag_arrivals

from tests.scenarios import congested_dag_graphs, dag_test_graphs

from .conftest import make_simulation


def chain_graphs():
    """One three-task chain with a generous final deadline."""
    return [TaskGraph(
        graph_id=0, name="chain", arrival_cycle=0,
        tasks=(
            TaskSpec(task_id=0, benchmark="a2time",
                     deadline_offset=5_000_000),
            TaskSpec(task_id=1, benchmark="puwmod", predecessors=(0,),
                     deadline_offset=10_000_000),
            TaskSpec(task_id=2, benchmark="idctrn", predecessors=(1,),
                     deadline_offset=15_000_000),
        ),
    )]


class TestPolicyRegistry:
    def test_deadline_policies_are_separate_from_paper_grid(self):
        assert DEADLINE_POLICY_NAMES == ("edf", "heft")
        assert set(POLICY_NAMES).isdisjoint(DEADLINE_POLICY_NAMES)
        assert ALL_POLICY_NAMES == POLICY_NAMES + DEADLINE_POLICY_NAMES

    @pytest.mark.parametrize("name", DEADLINE_POLICY_NAMES)
    def test_make_policy_resolves_ordering_policies(self, name):
        policy = make_policy(name)
        assert policy.name == name
        assert policy.orders_queue

    def test_paper_policies_do_not_order_queue(self):
        for name in POLICY_NAMES:
            assert not make_policy(name).orders_queue

    def test_unknown_policy_error_names_full_registry(self):
        with pytest.raises(ValueError, match="heft"):
            make_policy("nonesuch")

    def test_base_queue_key_is_not_implemented(self):
        job = object()
        with pytest.raises(NotImplementedError):
            make_policy("base").queue_key(job, None)


class TestPrecedenceGating:
    def test_chain_runs_strictly_in_order(self, small_store, oracle,
                                          energy_table):
        sim = make_simulation("proposed", small_store, oracle,
                              energy_table, validate=True)
        result = sim.run_dags(chain_graphs())
        records = sorted(result.jobs, key=lambda r: r.job_id)
        assert len(records) == 3
        assert records[1].start_cycle >= records[0].completion_cycle
        assert records[2].start_cycle >= records[1].completion_cycle
        # Released tasks inherit the graph arrival for turnaround
        # accounting.
        assert all(r.arrival_cycle == 0 for r in records)

    @pytest.mark.parametrize("policy", ["base", "edf", "heft"])
    def test_dense_graphs_respect_precedence(self, small_store, oracle,
                                             energy_table, policy):
        graphs = dag_test_graphs(edge_density=0.7)
        sim = make_simulation(policy, small_store, oracle, energy_table,
                              system=paper_system(), validate=True)
        result = sim.run_dags(graphs)
        records = {r.job_id: r for r in result.jobs}
        assert len(records) == sum(g.task_count for g in graphs)
        job_id = 0
        for graph in graphs:
            base = job_id
            by_task = {t.task_id: base + i
                       for i, t in enumerate(graph.tasks)}
            for i, task in enumerate(graph.tasks):
                for pred in task.predecessors:
                    assert records[base + i].start_cycle >= \
                        records[by_task[pred]].completion_cycle
            job_id += graph.task_count

    def test_all_tasks_complete(self, small_store, oracle, energy_table):
        graphs = dag_test_graphs()
        sim = make_simulation("edf", small_store, oracle, energy_table,
                              validate=True)
        result = sim.run_dags(graphs)
        assert result.jobs_completed == sum(g.task_count for g in graphs)


class TestEdgeFreeBitIdentity:
    GRID = [
        (policy, discipline)
        for policy in ("base", "optimal", "energy_centric", "proposed",
                       "edf")
        for discipline in ("fifo", "priority", "edf")
        # An ordering policy supersedes the queue discipline, so only
        # its canonical (fifo) cell is meaningful.
        if policy != "edf" or discipline == "fifo"
    ]

    @pytest.mark.parametrize("policy,discipline", GRID)
    def test_edge_free_dag_equals_plain_run(self, small_store, oracle,
                                            energy_table, policy,
                                            discipline):
        graphs = dag_test_graphs(edge_density=0.0)
        arrivals = dag_arrivals(graphs)
        dag_result = make_simulation(
            policy, small_store, oracle, energy_table,
            discipline=discipline, engine="reference",
        ).run_dags(graphs)
        plain_result = make_simulation(
            policy, small_store, oracle, energy_table,
            discipline=discipline, engine="reference",
        ).run(arrivals)
        assert dataclasses.asdict(dag_result) == \
            dataclasses.asdict(plain_result)


class TestDeadlinePolicies:
    def test_edf_strictly_beats_fifo_on_congested_scenario(
            self, small_store, oracle, energy_table):
        graphs = congested_dag_graphs()
        misses = {}
        for policy in ("base", "edf"):
            sim = make_simulation(policy, small_store, oracle,
                                  energy_table, system=base_system())
            result = sim.run_dags(graphs)
            misses[policy] = result.deadline_misses
            assert result.deadline_jobs == \
                sum(g.task_count for g in graphs)
        assert misses["edf"] < misses["base"], misses

    def test_edf_orders_queue_by_deadline(self, small_store, oracle,
                                          energy_table):
        policy = make_policy("edf")
        sim = make_simulation("edf", small_store, oracle, energy_table)
        from repro.core.scheduler import Job

        early = Job(job_id=0, benchmark="a2time", arrival_cycle=0,
                    deadline_cycle=100)
        late = Job(job_id=1, benchmark="a2time", arrival_cycle=0,
                   deadline_cycle=900)
        unbounded = Job(job_id=2, benchmark="a2time", arrival_cycle=0)
        keys = [policy.queue_key(j, sim) for j in (late, early, unbounded)]
        assert sorted(keys) == [100.0, 900.0, float("inf")]

    def test_heft_ranks_upstream_tasks_higher(self, small_store, oracle,
                                              energy_table):
        # In a chain, the root carries the whole downstream rank, so its
        # key (negated rank + pending) must sort first.
        graphs = chain_graphs()
        policy = make_policy("heft")
        sim = make_simulation("heft", small_store, oracle, energy_table)
        from repro.core.scheduler import Job

        jobs = {
            t.task_id: Job(job_id=t.task_id, benchmark=t.benchmark,
                           arrival_cycle=0)
            for t in graphs[0].tasks
        }
        policy.observe_graphs([(graphs[0], jobs)], sim)
        keys = [policy.queue_key(jobs[tid], sim) for tid in (0, 1, 2)]
        assert keys == sorted(keys)

    def test_heft_dispatch_bumps_order_version(self, small_store, oracle,
                                               energy_table):
        policy = make_policy("heft")
        sim = make_simulation("heft", small_store, oracle, energy_table)
        from repro.core.scheduler import Job

        graphs = chain_graphs()
        jobs = {
            t.task_id: Job(job_id=t.task_id, benchmark=t.benchmark,
                           arrival_cycle=0)
            for t in graphs[0].tasks
        }
        policy.observe_graphs([(graphs[0], jobs)], sim)
        version = policy.order_version
        policy.on_dispatch(jobs[0], sim)
        assert policy.order_version > version

    def test_deadline_metrics_recorded(self, small_store, oracle,
                                       energy_table):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = make_simulation("edf", small_store, oracle, energy_table,
                              metrics=registry, system=base_system())
        result = sim.run_dags(congested_dag_graphs())
        scalars = registry.scalars()
        assert scalars["sim.deadline.jobs"] == result.deadline_jobs
        assert scalars["sim.deadline.misses"] == result.deadline_misses
        assert scalars["sim.dag.graphs"] == 10
        # Non-root tasks are released by predecessor completion; the
        # congested set is edge-free, so nothing is released that way.
        assert scalars["sim.dag.tasks_released"] == 0


class TestEngineLimits:
    def test_fast_engine_rejects_ordering_policy(self, small_store,
                                                 oracle, energy_table):
        with pytest.raises(ValueError, match="policy-ordered ready "
                                             "queue"):
            make_simulation("edf", small_store, oracle, energy_table,
                            engine="fast")

    def test_fast_engine_rejects_run_dags(self, small_store, oracle,
                                          energy_table):
        sim = make_simulation("proposed", small_store, oracle,
                              energy_table, engine="fast")
        with pytest.raises(ValueError, match="precedence"):
            sim.run_dags(dag_test_graphs())

    def test_stream_rejects_ordering_policy(self, small_store, oracle,
                                            energy_table):
        sim = make_simulation("edf", small_store, oracle, energy_table)
        with pytest.raises(ValueError, match="discipline='edf'"):
            sim.stream(None, None)

    def test_run_dags_rejects_empty_set(self, small_store, oracle,
                                        energy_table):
        sim = make_simulation("proposed", small_store, oracle,
                              energy_table)
        with pytest.raises(ValueError, match="at least one"):
            sim.run_dags([])

    def test_run_dags_rejects_duplicate_graph_ids(self, small_store,
                                                  oracle, energy_table):
        graph = chain_graphs()[0]
        sim = make_simulation("proposed", small_store, oracle,
                              energy_table)
        with pytest.raises(ValueError, match="duplicate graph"):
            sim.run_dags([graph, graph])

    def test_run_dags_rejects_unknown_benchmark(self, small_store,
                                                oracle, energy_table):
        graph = TaskGraph(
            graph_id=0, name="alien", arrival_cycle=0,
            tasks=(TaskSpec(task_id=0, benchmark="nonesuch"),),
        )
        sim = make_simulation("proposed", small_store, oracle,
                              energy_table)
        with pytest.raises(KeyError, match="nonesuch"):
            sim.run_dags([graph])

    def test_auto_engine_routes_dags_to_reference(self, small_store,
                                                  oracle, energy_table):
        # engine='auto' with hooks off would normally take the fast
        # path; run_dags must still gate precedence on the reference
        # loop and produce ordered results.
        sim = make_simulation("proposed", small_store, oracle,
                              energy_table, engine="auto")
        result = sim.run_dags(chain_graphs())
        records = sorted(result.jobs, key=lambda r: r.job_id)
        assert records[1].start_cycle >= records[0].completion_cycle
