"""Tests for the energy-advantageous decision (paper §IV.E)."""

import pytest

from repro.cache.config import CacheConfig
from repro.core.decision import (
    evaluate_stall_decision,
    remaining_energy_nj,
)
from repro.core.profiling import ExecutionRecord


class TestRemainingEnergy:
    def test_average_energy_per_cycle(self):
        record = ExecutionRecord(
            CacheConfig(2, 1, 16), total_energy_nj=1000.0, total_cycles=100
        )
        assert remaining_energy_nj(record, 40) == pytest.approx(400.0)

    def test_zero_remaining(self):
        record = ExecutionRecord(
            CacheConfig(2, 1, 16), total_energy_nj=1000.0, total_cycles=100
        )
        assert remaining_energy_nj(record, 0) == 0.0

    def test_negative_rejected(self):
        record = ExecutionRecord(
            CacheConfig(2, 1, 16), total_energy_nj=1000.0, total_cycles=100
        )
        with pytest.raises(ValueError):
            remaining_energy_nj(record, -1)


class TestStallDecision:
    def test_short_wait_favours_stalling(self):
        decision = evaluate_stall_decision(
            best_core_energy_nj=100.0,
            non_best_energy_nj=150.0,
            wait_cycles=10,
            idle_power_non_best_nj_per_cycle=0.1,
        )
        assert decision.stall
        assert decision.stall_energy_nj == pytest.approx(101.0)
        assert decision.run_energy_nj == 150.0
        assert decision.margin_nj == pytest.approx(49.0)

    def test_long_wait_favours_non_best_core(self):
        decision = evaluate_stall_decision(
            best_core_energy_nj=100.0,
            non_best_energy_nj=150.0,
            wait_cycles=1000,
            idle_power_non_best_nj_per_cycle=0.1,
        )
        assert not decision.stall
        assert decision.margin_nj == pytest.approx(-50.0)

    def test_crossover_point(self):
        # Stall energy equals run energy exactly at wait = delta / power.
        delta = 50.0
        power = 0.1
        crossover = int(delta / power)
        at = evaluate_stall_decision(
            best_core_energy_nj=100.0,
            non_best_energy_nj=150.0,
            wait_cycles=crossover,
            idle_power_non_best_nj_per_cycle=power,
        )
        beyond = evaluate_stall_decision(
            best_core_energy_nj=100.0,
            non_best_energy_nj=150.0,
            wait_cycles=crossover + 1,
            idle_power_non_best_nj_per_cycle=power,
        )
        assert at.stall  # ties favour stalling
        assert not beyond.stall

    def test_zero_wait_always_stalls(self):
        # With the best core about to free, the best configuration wins.
        decision = evaluate_stall_decision(
            best_core_energy_nj=100.0,
            non_best_energy_nj=100.1,
            wait_cycles=0,
            idle_power_non_best_nj_per_cycle=1.0,
        )
        assert decision.stall

    def test_equal_energies_with_wait_runs_non_best(self):
        decision = evaluate_stall_decision(
            best_core_energy_nj=100.0,
            non_best_energy_nj=100.0,
            wait_cycles=5,
            idle_power_non_best_nj_per_cycle=1.0,
        )
        assert not decision.stall

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_stall_decision(
                best_core_energy_nj=1.0,
                non_best_energy_nj=1.0,
                wait_cycles=-1,
                idle_power_non_best_nj_per_cycle=0.1,
            )
        with pytest.raises(ValueError):
            evaluate_stall_decision(
                best_core_energy_nj=1.0,
                non_best_energy_nj=1.0,
                wait_cycles=1,
                idle_power_non_best_nj_per_cycle=-0.1,
            )
