"""Tests for the per-domain predictor (paper §IV.D multiple-ANN idea)."""

import pytest

from repro.ann.neighbors import KNNRegressor
from repro.ann.training import TrainingConfig
from repro.cache.config import configs_for_size
from repro.characterization.dataset import build_dataset
from repro.core.predictor import AnnPredictor, DomainPredictor, RegressorPredictor
from repro.workloads.eembc import EEMBC_DOMAINS, eembc_suite

ALL_CONFIGS = configs_for_size(2) + configs_for_size(4) + configs_for_size(8)
FAST = TrainingConfig(epochs=60, seed=0)


@pytest.fixture(scope="module")
def small_dataset():
    # Two families from each domain keep the fixture fast.
    names = ("a2time", "puwmod", "aifftr", "idctrn", "matrix", "pntrch")
    specs = [s for s in eembc_suite() if s.name in names]
    return build_dataset(
        specs, variants_per_family=4, configs=ALL_CONFIGS, seed=0
    )


class TestDomainMapping:
    def test_every_family_has_a_domain(self):
        for spec in eembc_suite():
            assert spec.name in EEMBC_DOMAINS

    def test_three_domains(self):
        assert set(EEMBC_DOMAINS.values()) == {"control", "dsp", "memory"}

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            DomainPredictor({})


class TestFitPredict:
    def test_one_subpredictor_per_domain(self, small_dataset):
        dataset, _ = small_dataset
        predictor = DomainPredictor(
            EEMBC_DOMAINS,
            make_predictor=lambda i: AnnPredictor(n_members=2, seed=i),
        )
        predictor.fit(dataset, config=FAST)
        assert set(predictor.by_domain) == {"control", "dsp", "memory"}

    def test_variant_names_route_through_family(self, small_dataset):
        dataset, store = small_dataset
        predictor = DomainPredictor(
            EEMBC_DOMAINS,
            make_predictor=lambda i: AnnPredictor(n_members=2, seed=i),
        )
        predictor.fit(dataset, config=FAST)
        size = predictor.predict_size_kb(
            "a2time.v2", store.counters("a2time.v2")
        )
        assert size in (2, 4, 8)

    def test_predict_before_fit_rejected(self, small_dataset):
        dataset, store = small_dataset
        predictor = DomainPredictor(EEMBC_DOMAINS)
        with pytest.raises(RuntimeError):
            predictor.predict_size_kb("a2time", store.counters("a2time"))

    def test_unknown_family_rejected(self, small_dataset):
        dataset, store = small_dataset
        predictor = DomainPredictor(
            EEMBC_DOMAINS,
            make_predictor=lambda i: AnnPredictor(n_members=1, seed=i),
        )
        predictor.fit(dataset, config=FAST)
        with pytest.raises(KeyError):
            predictor.predict_size_kb("doom", store.counters("a2time"))

    def test_unmapped_dataset_family_rejected(self, small_dataset):
        dataset, _ = small_dataset
        predictor = DomainPredictor({"a2time": "control"})
        with pytest.raises(KeyError):
            predictor.fit(dataset, config=FAST)

    def test_non_ann_factory(self, small_dataset):
        dataset, store = small_dataset
        predictor = DomainPredictor(
            EEMBC_DOMAINS,
            make_predictor=lambda i: RegressorPredictor(KNNRegressor(k=1)),
        )
        predictor.fit(dataset, config=FAST)
        size = predictor.predict_size_kb("matrix", store.counters("matrix"))
        assert size in (2, 4, 8)

    def test_routing_uses_correct_submodel(self, small_dataset):
        dataset, store = small_dataset
        predictor = DomainPredictor(
            EEMBC_DOMAINS,
            make_predictor=lambda i: RegressorPredictor(KNNRegressor(k=1)),
        )
        predictor.fit(dataset, config=FAST)
        # 1-NN per domain memorises its training rows: canonical
        # benchmarks present in the dataset predict exactly.
        for name in ("a2time", "matrix", "aifftr"):
            assert predictor.predict_size_kb(
                name, store.counters(name)
            ) == store.best_size_kb(name)
