"""Tests for the content-addressed trained-model store."""

import json

import numpy as np
import pytest

from repro.ann.training import TrainingConfig
from repro.characterization.dataset import Dataset
from repro.core.modelstore import (
    MODEL_STORE_FORMAT,
    ModelMeta,
    dataset_fingerprint,
    load_ann_predictor,
    save_ann_predictor,
    training_config_key,
)
from repro.core.predictor import AnnPredictor


def make_dataset(n=40, seed=0, feature_names=("a", "b", "c")):
    rng = np.random.default_rng(seed)
    features = np.abs(rng.normal(size=(n, len(feature_names)))) * 100
    labels = rng.choice([2.0, 4.0, 8.0], size=n)
    return Dataset(
        features=features,
        labels_kb=labels,
        names=tuple(f"bench{i}" for i in range(n)),
        families=tuple(f"fam{i % 5}" for i in range(n)),
        feature_names=tuple(feature_names),
    )


def make_fitted(dataset, n_members=3, seed=0, epochs=8):
    predictor = AnnPredictor(
        feature_names=dataset.feature_names,
        n_members=n_members,
        hidden=(5,),
        seed=seed,
    )
    predictor.fit(dataset, config=TrainingConfig(epochs=epochs, seed=seed))
    return predictor


def make_meta(dataset, predictor, config=TrainingConfig(epochs=8, seed=0)):
    return ModelMeta(
        dataset_fingerprint=dataset_fingerprint(dataset),
        topology=repr(predictor.ensemble.members[0].topology),
        n_members=predictor.ensemble.n_members,
        training_key=training_config_key(config),
        seed=predictor.ensemble.seed,
    )


class TestFingerprints:
    def test_dataset_fingerprint_stable(self):
        assert dataset_fingerprint(make_dataset()) == dataset_fingerprint(
            make_dataset()
        )

    def test_dataset_fingerprint_sees_features(self):
        a = make_dataset(seed=0)
        b = make_dataset(seed=1)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_dataset_fingerprint_sees_labels(self):
        a = make_dataset()
        b = Dataset(
            features=a.features,
            labels_kb=np.where(a.labels_kb == 2.0, 4.0, a.labels_kb),
            names=a.names,
            families=a.families,
            feature_names=a.feature_names,
        )
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_dataset_fingerprint_sees_names(self):
        a = make_dataset()
        b = Dataset(
            features=a.features,
            labels_kb=a.labels_kb,
            names=tuple(reversed(a.names)),
            families=a.families,
            feature_names=a.feature_names,
        )
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_training_config_key_sees_every_field(self):
        base = TrainingConfig()
        variants = (
            TrainingConfig(epochs=base.epochs + 1),
            TrainingConfig(batch_size=base.batch_size + 1),
            TrainingConfig(learning_rate=base.learning_rate * 2),
            TrainingConfig(patience=99),
            TrainingConfig(shuffle=not base.shuffle),
            TrainingConfig(seed=base.seed + 1),
        )
        keys = {training_config_key(v) for v in variants}
        assert len(keys) == len(variants)
        assert training_config_key(base) not in keys


class TestModelMeta:
    def test_cache_key_sensitivity(self):
        dataset = make_dataset()
        predictor = make_fitted(dataset)
        meta = make_meta(dataset, predictor)
        for changed in (
            ModelMeta(**{**vars(meta), "dataset_fingerprint": "deadbeef"}),
            ModelMeta(**{**vars(meta), "topology": "(3, 9, 1)"}),
            ModelMeta(**{**vars(meta), "n_members": meta.n_members + 1}),
            ModelMeta(**{**vars(meta), "training_key": "cafebabe"}),
            ModelMeta(**{**vars(meta), "seed": meta.seed + 1}),
            ModelMeta(**{**vars(meta), "trainer_version": "other"}),
        ):
            assert changed.cache_key() != meta.cache_key()


class TestRoundTrip:
    def test_predictions_identical_after_reload(self, tmp_path):
        dataset = make_dataset()
        predictor = make_fitted(dataset)
        meta = make_meta(dataset, predictor)
        path = tmp_path / "model.json"
        save_ann_predictor(path, predictor, meta)
        loaded = load_ann_predictor(path, expected_meta=meta)
        assert loaded is not None
        # Bit-exact: weights, scaler and snapping all round-trip.
        x = dataset.features
        assert (
            loaded.predict_sizes_kb(x) == predictor.predict_sizes_kb(x)
        ).all()
        a = predictor.ensemble.member_predictions(
            predictor.scaler.transform(predictor._pre(x))
        )
        b = loaded.ensemble.member_predictions(
            loaded.scaler.transform(loaded._pre(x))
        )
        np.testing.assert_array_equal(a, b)

    def test_loaded_predictor_is_usable_without_fit(self, tmp_path):
        dataset = make_dataset()
        predictor = make_fitted(dataset)
        meta = make_meta(dataset, predictor)
        path = tmp_path / "model.json"
        save_ann_predictor(path, predictor, meta)
        loaded = load_ann_predictor(path)
        assert loaded.predict_sizes_kb(dataset.features[:3]).shape == (3,)

    def test_unfitted_predictor_rejected(self, tmp_path):
        dataset = make_dataset()
        predictor = AnnPredictor(
            feature_names=dataset.feature_names, n_members=2, hidden=(4,)
        )
        meta = make_meta(dataset, predictor)
        with pytest.raises(ValueError):
            save_ann_predictor(tmp_path / "model.json", predictor, meta)


class TestLoadRejections:
    def test_missing_file(self, tmp_path):
        assert load_ann_predictor(tmp_path / "absent.json") is None

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{not json")
        assert load_ann_predictor(path) is None

    def test_wrong_format_version(self, tmp_path):
        dataset = make_dataset()
        predictor = make_fitted(dataset)
        meta = make_meta(dataset, predictor)
        path = tmp_path / "model.json"
        save_ann_predictor(path, predictor, meta)
        payload = json.loads(path.read_text())
        payload["format"] = MODEL_STORE_FORMAT + 1
        path.write_text(json.dumps(payload))
        assert load_ann_predictor(path) is None

    def test_meta_mismatch(self, tmp_path):
        dataset = make_dataset()
        predictor = make_fitted(dataset)
        meta = make_meta(dataset, predictor)
        path = tmp_path / "model.json"
        save_ann_predictor(path, predictor, meta)
        other = ModelMeta(**{**vars(meta), "seed": meta.seed + 1})
        assert load_ann_predictor(path, expected_meta=other) is None
        assert load_ann_predictor(path, expected_meta=meta) is not None

    def test_truncated_payload(self, tmp_path):
        dataset = make_dataset()
        predictor = make_fitted(dataset)
        meta = make_meta(dataset, predictor)
        path = tmp_path / "model.json"
        save_ann_predictor(path, predictor, meta)
        payload = json.loads(path.read_text())
        del payload["scaler"]
        path.write_text(json.dumps(payload))
        assert load_ann_predictor(path) is None
