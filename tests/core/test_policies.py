"""Behavioural tests for the four scheduling policies.

Policies are exercised through small real simulations (the ``sim``
argument they receive is the live simulation object), probing the
specific branch behaviour of each policy's dispatch rule.
"""

import pytest

from repro.cache.config import BASE_CONFIG
from repro.core.policies import (
    POLICY_NAMES,
    BasePolicy,
    EnergyCentricPolicy,
    OptimalPolicy,
    ProposedPolicy,
    make_policy,
)
from repro.workloads.arrivals import JobArrival

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestFactory:
    def test_names(self):
        assert POLICY_NAMES == ("base", "optimal", "energy_centric", "proposed")

    def test_make(self):
        assert isinstance(make_policy("base"), BasePolicy)
        assert isinstance(make_policy("optimal"), OptimalPolicy)
        assert isinstance(make_policy("energy_centric"), EnergyCentricPolicy)
        assert isinstance(make_policy("proposed"), ProposedPolicy)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_policy("random")

    def test_flags(self):
        assert not BasePolicy.requires_profiling
        assert OptimalPolicy.requires_profiling
        assert not OptimalPolicy.uses_predictor
        assert EnergyCentricPolicy.uses_predictor
        assert ProposedPolicy.uses_predictor


class TestBasePolicy:
    def test_first_idle_core_taken(self, small_store, oracle, energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(["puwmod", "puwmod"], gap=0))
        cores = sorted(r.core_index for r in result.jobs)
        assert cores == [0, 1]

    def test_waits_when_all_busy(self, small_store, oracle, energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        # Five simultaneous arrivals on four cores: one must wait.
        result = sim.run(arrivals_for(["puwmod"] * 5, gap=0))
        waits = [r.waiting_cycles for r in result.jobs]
        assert sorted(waits)[-1] > 0
        assert sorted(waits)[:4] == [0, 0, 0, 0]


class TestEnergyCentricPolicy:
    def test_stalls_with_idle_non_best_cores(self, small_store, oracle,
                                             energy_table):
        # Two 2KB-best jobs: second must wait for Core 1 even though
        # cores 2-4 are idle.
        sim = make_simulation("energy_centric", small_store, oracle,
                              energy_table)
        # Pre-profile via an earlier pair of arrivals, spaced out.
        names = ["puwmod", "puwmod", "puwmod", "puwmod"]
        arrivals = [
            JobArrival(job_id=0, benchmark="puwmod", arrival_cycle=0),
            JobArrival(job_id=1, benchmark="puwmod", arrival_cycle=3_000_000),
            JobArrival(job_id=2, benchmark="puwmod", arrival_cycle=6_000_000),
            JobArrival(job_id=3, benchmark="puwmod", arrival_cycle=6_000_001),
        ]
        result = sim.run(arrivals)
        later = [r for r in result.jobs if r.job_id >= 2]
        assert all(r.core_index == 0 for r in later)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[3].start_cycle >= by_id[2].completion_cycle


class TestOptimalPolicy:
    def test_never_stalls_with_idle_cores(self, small_store, oracle,
                                          energy_table):
        sim = make_simulation("optimal", small_store, oracle, energy_table)
        # After profiling, simultaneous arrivals spread over idle cores.
        arrivals = (
            arrivals_for(SUITE_NAMES, gap=3_000_000)
            + [
                JobArrival(job_id=10 + i, benchmark="puwmod",
                           arrival_cycle=20_000_000 + i)
                for i in range(4)
            ]
        )
        result = sim.run(arrivals)
        burst = [r for r in result.jobs if r.job_id >= 10]
        assert {r.core_index for r in burst} == {0, 1, 2, 3}

    def test_exploration_configs_increase(self, small_store, oracle,
                                          energy_table):
        sim = make_simulation("optimal", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(["idctrn"] * 6, gap=3_000_000))
        explored = [r.config_name for r in result.jobs]
        # Every execution tries a new configuration (profiling included).
        assert len(set(explored)) == len(explored)


class TestProposedPolicy:
    def test_prefers_best_core_when_idle(self, small_store, oracle,
                                         energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(["puwmod"] * 4, gap=3_000_000))
        # After profiling, puwmod (2KB-best) lands on Core 1 (index 0).
        later = [r for r in result.jobs if not r.profiled]
        assert all(r.core_index == 0 for r in later)

    def test_explores_unknown_non_best_cores_when_best_busy(
        self, small_store, oracle, energy_table
    ):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        # Burst of same-benchmark jobs: best core busy, others unknown ->
        # tuning executions on non-best cores.
        arrivals = arrivals_for(["puwmod"], gap=0) + [
            JobArrival(job_id=1 + i, benchmark="puwmod",
                       arrival_cycle=3_000_000 + i)
            for i in range(4)
        ]
        result = sim.run(arrivals)
        burst = [r for r in result.jobs if r.job_id >= 1]
        cores = {r.core_index for r in burst}
        assert len(cores) > 1  # spilled beyond the single best core

    def test_stall_vs_non_best_counted(self, small_store, oracle,
                                       energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        arrivals = [
            JobArrival(job_id=i, benchmark="puwmod",
                       arrival_cycle=(i // 2) * 40_000)
            for i in range(30)
        ]
        result = sim.run(arrivals)
        assert result.stall_decisions + result.non_best_decisions > 0

    def test_profiled_jobs_complete_without_prediction_error(
        self, small_store, oracle, energy_table
    ):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 2, gap=100_000))
        assert result.jobs_completed == 8
