"""Tests for the best-core predictors."""

import numpy as np
import pytest

from repro.ann.training import TrainingConfig
from repro.cache.config import configs_for_size
from repro.characterization.dataset import Dataset, build_dataset
from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.core.predictor import AnnPredictor, FixedPredictor, OraclePredictor
from repro.workloads.counters import ANN_SELECTED_FEATURES
from repro.workloads.eembc import eembc_suite

ALL_CONFIGS = configs_for_size(2) + configs_for_size(4) + configs_for_size(8)


@pytest.fixture(scope="module")
def store():
    return CharacterizationStore(
        characterize_suite(eembc_suite()[:4], configs=ALL_CONFIGS)
    )


class TestOraclePredictor:
    def test_returns_true_best(self, store):
        oracle = OraclePredictor(store)
        for name in store.names():
            assert oracle.predict_size_kb(name, store.counters(name)) == (
                store.best_size_kb(name)
            )

    def test_unknown_benchmark_raises(self, store):
        with pytest.raises(KeyError):
            OraclePredictor(store).predict_size_kb("unknown", None)


class TestFixedPredictor:
    def test_constant(self):
        predictor = FixedPredictor(4)
        assert predictor.predict_size_kb("anything", None) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPredictor(0)


def synthetic_dataset(n=120, seed=0):
    """A dataset whose label is a simple function of the features."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(1e3, 1e6, size=(n, len(ANN_SELECTED_FEATURES)))
    # Label derives from the cycles/instructions ratio: an easy pattern.
    ratio = features[:, 1] / features[:, 0]
    tertiles = np.quantile(ratio, [1 / 3, 2 / 3])
    labels = np.where(
        ratio < tertiles[0], 2.0, np.where(ratio < tertiles[1], 4.0, 8.0)
    )
    return Dataset(
        features=features,
        labels_kb=labels,
        names=tuple(f"s{i}" for i in range(n)),
        families=tuple(f"f{i % 10}" for i in range(n)),
        feature_names=ANN_SELECTED_FEATURES,
    )


class TestAnnPredictor:
    def test_fit_predict_on_learnable_pattern(self):
        dataset = synthetic_dataset()
        split = dataset.split(seed=0, by_family=False)
        predictor = AnnPredictor(n_members=5, seed=0)
        predictor.fit(
            split.train, val_dataset=split.val,
            config=TrainingConfig(epochs=150, seed=0),
        )
        pred = predictor.predict_sizes_kb(split.train.features)
        accuracy = (pred == split.train.labels_kb).mean()
        assert accuracy > 0.8

    def test_predictions_are_legal_sizes(self):
        dataset = synthetic_dataset(n=60)
        predictor = AnnPredictor(n_members=2, seed=0)
        predictor.fit(dataset, config=TrainingConfig(epochs=20, seed=0))
        pred = predictor.predict_sizes_kb(dataset.features)
        assert set(np.unique(pred)) <= {2, 4, 8}

    def test_predict_before_fit_rejected(self):
        predictor = AnnPredictor(n_members=2)
        with pytest.raises(RuntimeError):
            predictor.predict_sizes_kb(np.zeros((1, 7)))

    def test_feature_names_must_match(self):
        dataset = synthetic_dataset(n=30)
        predictor = AnnPredictor(feature_names=("instructions",), n_members=1)
        with pytest.raises(ValueError):
            predictor.fit(dataset)

    def test_counter_interface(self, store):
        dataset, _ = build_dataset(
            eembc_suite()[:4], variants_per_family=3,
            configs=ALL_CONFIGS, seed=0, store=store,
        )
        predictor = AnnPredictor(n_members=2, seed=0)
        predictor.fit(dataset, config=TrainingConfig(epochs=30, seed=0))
        size = predictor.predict_size_kb(
            "a2time", store.counters("a2time")
        )
        assert size in (2, 4, 8)

    def test_deterministic(self):
        dataset = synthetic_dataset(n=60)
        a = AnnPredictor(n_members=3, seed=1)
        b = AnnPredictor(n_members=3, seed=1)
        config = TrainingConfig(epochs=30, seed=1)
        a.fit(dataset, config=config)
        b.fit(dataset, config=config)
        assert (
            a.predict_sizes_kb(dataset.features)
            == b.predict_sizes_kb(dataset.features)
        ).all()

    def test_log_features_toggle(self):
        dataset = synthetic_dataset(n=60)
        predictor = AnnPredictor(n_members=1, seed=0, log_features=False)
        predictor.fit(dataset, config=TrainingConfig(epochs=10, seed=0))
        assert predictor.predict_sizes_kb(dataset.features).shape == (60,)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnPredictor(feature_names=())
        with pytest.raises(ValueError):
            AnnPredictor(sizes_kb=())
