"""Tests for preemptive scheduling (paper future work §VIII)."""

import pytest

from repro.cache.config import BASE_CONFIG
from repro.core.scheduler import CoreState, Job
from repro.core.system import CoreSpec
from repro.workloads.arrivals import JobArrival

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


def blockers_plus_urgent(urgent_priority=9, urgent_arrival=10_000):
    """Four long jobs at t=0 on all cores, one urgent job later."""
    arrivals = [
        JobArrival(job_id=i, benchmark="pntrch", arrival_cycle=0)
        for i in range(4)
    ]
    arrivals.append(
        JobArrival(job_id=4, benchmark="puwmod",
                   arrival_cycle=urgent_arrival, priority=urgent_priority)
    )
    return arrivals


class TestCorePreempt:
    def make_busy_core(self):
        core = CoreState(CoreSpec(index=0, cache_size_kb=8))
        job = Job(job_id=0, benchmark="b", arrival_cycle=0)
        core.begin(job, now=0, service_cycles=100)
        return core, job

    def test_preempt_returns_fraction(self):
        core, job = self.make_busy_core()
        victim, fraction = core.preempt(now=25)
        assert victim is job
        assert fraction == pytest.approx(0.25)
        assert core.is_idle(25)

    def test_preempt_refunds_busy_cycles(self):
        core, _ = self.make_busy_core()
        core.preempt(now=40)
        assert core.busy_cycles == 40

    def test_preempt_advances_epoch(self):
        core, _ = self.make_busy_core()
        epoch = core.epoch
        core.preempt(now=10)
        assert core.epoch == epoch + 1

    def test_preempt_idle_rejected(self):
        core = CoreState(CoreSpec(index=0, cache_size_kb=8))
        with pytest.raises(RuntimeError):
            core.preempt(now=0)

    def test_preempt_after_finish_time_rejected(self):
        core, _ = self.make_busy_core()
        with pytest.raises(RuntimeError):
            core.preempt(now=100)


class TestPreemptionAccounting:
    """Satellite coverage: refunds, stale completions, fraction guards."""

    def test_zero_length_service_rejected(self):
        core = CoreState(CoreSpec(index=0, cache_size_kb=8))
        job = Job(job_id=0, benchmark="b", arrival_cycle=0)
        with pytest.raises(ValueError, match="service_cycles"):
            core.begin(job, now=0, service_cycles=0)
        with pytest.raises(ValueError, match="service_cycles"):
            core.begin(job, now=0, service_cycles=-5)

    def test_immediate_preemption_runs_zero_fraction(self):
        core = CoreState(CoreSpec(index=0, cache_size_kb=8))
        job = Job(job_id=0, benchmark="b", arrival_cycle=0)
        core.begin(job, now=10, service_cycles=100)
        victim, fraction = core.preempt(now=10)
        assert victim is job
        assert fraction == 0.0
        # The whole scheduled window is refunded.
        assert core.busy_cycles == 0
        assert core.busy_until == 10

    def test_fraction_run_is_proportional(self):
        core = CoreState(CoreSpec(index=0, cache_size_kb=8))
        job = Job(job_id=0, benchmark="b", arrival_cycle=0)
        core.begin(job, now=100, service_cycles=400)
        _, fraction = core.preempt(now=400)
        assert fraction == pytest.approx(0.75)
        assert core.busy_cycles == 300

    def test_stale_completion_event_is_ignored(self, small_store, oracle,
                                               energy_table):
        """The preempted execution's completion event must go stale.

        blockers_plus_urgent schedules 6 completion events (4 blockers +
        1 resumed victim + 1 urgent job) but only 5 jobs complete — the
        victim's original completion arrives with an outdated epoch and
        is dropped without freeing the core twice.
        """
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(blockers_plus_urgent())
        assert result.jobs_completed == 5
        assert result.preemption_count == 1
        # 5 arrivals + 6 scheduled completions all flowed through the
        # engine; exactly one completion was stale.
        assert sim.engine.processed == 11
        assert all(core.current_job is None for core in sim.cores)

    def test_busy_cycle_refund_matches_trace_timeline(self, small_store,
                                                      oracle, energy_table):
        """Per-core busy accounting equals the traced execution windows.

        A preempted window is truncated at the preemption cycle, so the
        segment sum only matches ``core_busy_cycles`` if the simulation
        actually refunded the unexecuted share.
        """
        from repro.obs.recorder import ListRecorder
        from repro.obs.report import per_core_timeline

        recorder = ListRecorder()
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder)
        result = sim.run(blockers_plus_urgent())
        assert result.preemption_count == 1
        timeline = per_core_timeline(recorder.events)
        for core_index, segments in timeline.items():
            busy = sum(segment.cycles for segment in segments)
            assert busy == result.core_busy_cycles[core_index]
        preempted = [
            s for segments in timeline.values() for s in segments
            if not s.completed
        ]
        assert len(preempted) == 1

    def test_preemption_energy_refund_is_pro_rata(self, small_store,
                                                  oracle, energy_table):
        """The refunded share equals (1 - fraction_run) of the charges."""
        from repro.obs.events import EnergyAccrued, JobPreempted
        from repro.obs.recorder import ListRecorder

        recorder = ListRecorder()
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder)
        sim.run(blockers_plus_urgent())
        [preempted] = [
            e for e in recorder.events if isinstance(e, JobPreempted)
        ]
        [charge] = [
            e for e in recorder.events
            if isinstance(e, EnergyAccrued)
            and e.job_id == preempted.job_id
            and e.cycle <= preempted.cycle
        ]
        refund = 1.0 - preempted.fraction_run
        assert preempted.refunded_dynamic_nj == pytest.approx(
            charge.dynamic_nj * refund
        )
        assert preempted.refunded_static_nj == pytest.approx(
            charge.static_nj * refund
        )

    def test_resumed_fraction_compounds(self, small_store, oracle,
                                        energy_table):
        """A victim resumes with remaining_fraction < 1 and finishes."""
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(blockers_plus_urgent())
        victim = next(r for r in result.jobs if r.preemptions == 1)
        # The job record is complete and consistent after the resume.
        assert victim.completion_cycle > victim.start_cycle
        assert result.jobs_completed == 5


class TestPreemptiveSimulation:
    def test_requires_urgency_discipline(self, small_store, oracle,
                                         energy_table):
        with pytest.raises(ValueError):
            make_simulation("base", small_store, oracle, energy_table,
                            discipline="fifo", preemptive=True)

    def test_urgent_job_starts_immediately(self, small_store, oracle,
                                           energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(blockers_plus_urgent())
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[4].start_cycle == 10_000
        assert result.preemption_count == 1

    def test_without_preemption_urgent_job_waits(self, small_store, oracle,
                                                 energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=False)
        result = sim.run(blockers_plus_urgent())
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[4].start_cycle > 10_000
        assert result.preemption_count == 0

    def test_victim_completes_with_remaining_work(self, small_store, oracle,
                                                  energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(blockers_plus_urgent())
        assert result.jobs_completed == 5
        victim = next(r for r in result.jobs if r.preemptions == 1)
        unpreempted = next(
            r for r in result.jobs
            if r.preemptions == 0 and r.benchmark == "pntrch"
        )
        # The victim's total span exceeds an uninterrupted run's span.
        assert (
            victim.completion_cycle - victim.start_cycle
            > unpreempted.completion_cycle - unpreempted.start_cycle
        )

    def test_equal_priority_never_preempts(self, small_store, oracle,
                                           energy_table):
        arrivals = blockers_plus_urgent(urgent_priority=0)
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(arrivals)
        assert result.preemption_count == 0

    def test_profiling_runs_never_preempted(self, small_store, oracle,
                                            energy_table):
        # Proposed policy: first executions are profiling runs on cores
        # 3/4; an urgent arrival must not preempt them.
        arrivals = [
            JobArrival(job_id=0, benchmark="pntrch", arrival_cycle=0),
            JobArrival(job_id=1, benchmark="idctrn", arrival_cycle=0),
            JobArrival(job_id=2, benchmark="puwmod", arrival_cycle=1000,
                       priority=9),
        ]
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(arrivals)
        profiled = [r for r in result.jobs if r.profiled]
        assert all(r.preemptions == 0 for r in profiled)

    def test_energy_refund_is_consistent(self, small_store, oracle,
                                         energy_table):
        """Preempted work is charged pro-rata: the preemptive run's total
        energy stays close to the non-preemptive one (same executions,
        one split in two)."""
        arrivals = blockers_plus_urgent()
        preemptive = make_simulation(
            "base", small_store, oracle, energy_table,
            discipline="priority", preemptive=True,
        ).run(arrivals)
        plain = make_simulation(
            "base", small_store, oracle, energy_table,
            discipline="priority", preemptive=False,
        ).run(arrivals)
        ratio = preemptive.total_energy_nj / plain.total_energy_nj
        assert 0.9 < ratio < 1.1

    def test_edf_preemption(self, small_store, oracle, energy_table):
        arrivals = [
            JobArrival(job_id=i, benchmark="pntrch", arrival_cycle=0)
            for i in range(4)
        ] + [
            JobArrival(job_id=4, benchmark="puwmod", arrival_cycle=12_000,
                       deadline_cycle=80_000),
        ]
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="edf", preemptive=True)
        result = sim.run(arrivals)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[4].start_cycle == 12_000
        assert by_id[4].met_deadline is True

    def test_heavy_qos_run_completes(self, small_store, oracle,
                                     energy_table):
        from repro.workloads.arrivals import with_qos

        arrivals = with_qos(
            arrivals_for(SUITE_NAMES * 10, gap=40_000),
            service_estimate=lambda name: small_store.estimate(
                name, BASE_CONFIG
            ).total_cycles,
            priority_levels=4,
            seed=1,
        )
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        result = sim.run(arrivals)
        assert result.jobs_completed == len(arrivals)
        # The run is internally consistent even with preemptions.
        assert result.total_energy_nj > 0
        for record in result.jobs:
            assert record.arrival_cycle <= record.start_cycle
            assert record.start_cycle < record.completion_cycle
