"""Tests for pre-loaded profiling information (paper §IV.B)."""

import pytest

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestPreloadProfiles:
    def test_no_runtime_profiling(self, small_store, oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              preload_profiles=True)
        result = sim.run(arrivals_for(SUITE_NAMES * 5))
        assert result.profiling_executions == 0
        assert all(not r.profiled for r in result.jobs)

    def test_no_runtime_tuning(self, small_store, oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              preload_profiles=True)
        result = sim.run(arrivals_for(SUITE_NAMES * 5))
        assert result.tuning_executions == 0
        assert all(not r.tuning for r in result.jobs)

    def test_predictions_installed_upfront(self, small_store, oracle,
                                           energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              preload_profiles=True)
        for name in SUITE_NAMES:
            assert sim.table.predicted_size_kb(name) is not None
            for size in (2, 4, 8):
                assert sim.table.is_best_config_known(name, size)

    def test_first_job_runs_best_config_immediately(self, small_store,
                                                    oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              preload_profiles=True)
        result = sim.run(arrivals_for(["puwmod"]))
        record = result.jobs[0]
        best = small_store.get("puwmod").best_config()
        assert record.config_name == best.name

    def test_preloaded_beats_cold_start_energy(self, small_store, oracle,
                                               energy_table):
        arrivals = arrivals_for(SUITE_NAMES * 6, gap=150_000)
        cold = make_simulation(
            "proposed", small_store, oracle, energy_table
        ).run(arrivals)
        warm = make_simulation(
            "proposed", small_store, oracle, energy_table,
            preload_profiles=True,
        ).run(arrivals)
        # No profiling runs at the pessimistic base configuration and no
        # tuning exploration: the warm start spends less energy.
        assert warm.total_energy_nj < cold.total_energy_nj
        assert warm.jobs_completed == cold.jobs_completed

    def test_preload_without_predictor_only_profiles(self, small_store,
                                                     oracle, energy_table):
        # The optimal policy has no predictor: preloading installs
        # counters only, leaving its exhaustive exploration untouched.
        sim = make_simulation("optimal", small_store, oracle, energy_table,
                              preload_profiles=True)
        result = sim.run(arrivals_for(SUITE_NAMES * 2, gap=2_000_000))
        assert result.profiling_executions == 0
        assert result.tuning_executions > 0  # still explores
