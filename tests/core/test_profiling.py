"""Tests for the profiling table."""

import pytest

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.core.profiling import ExecutionRecord, ProfilingTable

CFG_2K = CacheConfig(2, 1, 16)
CFG_2K_B = CacheConfig(2, 1, 32)
CFG_8K = CacheConfig(8, 1, 16)


def make_counters():
    from repro.workloads.counters import HardwareCounters

    return HardwareCounters(
        instructions=1000, cycles=1200, ipc=1000 / 1200, loads=200,
        stores=100, branches=100, taken_branches=60, int_ops=500,
        fp_ops=100, mem_accesses=300, cache_hits=290, cache_misses=10,
        miss_rate=10 / 300, stall_cycles=200, compulsory_misses=5,
        unique_lines=20, compute_intensity=2.0, memory_intensity=0.3,
    )


class TestExecutionRecord:
    def test_energy_per_cycle(self):
        record = ExecutionRecord(CFG_2K, total_energy_nj=500.0, total_cycles=100)
        assert record.energy_per_cycle_nj == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionRecord(CFG_2K, total_energy_nj=-1.0, total_cycles=10)
        with pytest.raises(ValueError):
            ExecutionRecord(CFG_2K, total_energy_nj=1.0, total_cycles=0)


class TestProfilingLifecycle:
    def test_unknown_benchmark_empty(self):
        table = ProfilingTable()
        assert not table.has_profile("x")
        assert table.predicted_size_kb("x") is None
        assert table.execution("x", CFG_2K) is None
        assert table.best_known_config("x", 2) is None
        assert not table.is_best_config_known("x", 2)

    def test_record_profiling(self):
        table = ProfilingTable()
        table.record_profiling("bench", make_counters())
        assert table.has_profile("bench")
        assert table.profile("bench").counters.instructions == 1000

    def test_record_prediction(self):
        table = ProfilingTable()
        table.record_prediction("bench", 4)
        assert table.predicted_size_kb("bench") == 4
        with pytest.raises(ValueError):
            table.record_prediction("bench", 0)

    def test_touching_creates_profile(self):
        table = ProfilingTable()
        table.profile("a")
        assert "a" in table
        assert len(table) == 1
        assert table.benchmarks() == ("a",)


class TestExecutions:
    def test_record_and_lookup(self):
        table = ProfilingTable()
        table.record_execution("b", CFG_2K, 100.0, 50)
        record = table.execution("b", CFG_2K)
        assert record.total_energy_nj == 100.0
        assert record.total_cycles == 50

    def test_re_execution_overwrites(self):
        table = ProfilingTable()
        table.record_execution("b", CFG_2K, 100.0, 50)
        table.record_execution("b", CFG_2K, 90.0, 45)
        assert table.execution("b", CFG_2K).total_energy_nj == 90.0

    def test_best_known_config_per_size(self):
        table = ProfilingTable()
        table.record_execution("b", CFG_2K, 100.0, 50)
        table.record_execution("b", CFG_2K_B, 80.0, 40)
        table.record_execution("b", CFG_8K, 10.0, 10)
        assert table.best_known_config("b", 2) == CFG_2K_B
        assert table.best_known_config("b", 8) == CFG_8K
        assert table.best_known_config("b", 4) is None

    def test_best_known_tie_resolves_canonically(self):
        table = ProfilingTable()
        table.record_execution("b", CFG_2K_B, 100.0, 50)
        table.record_execution("b", CFG_2K, 100.0, 50)
        assert table.best_known_config("b", 2) == CFG_2K  # smaller first

    def test_explored_configs_sorted(self):
        table = ProfilingTable()
        table.record_execution("b", CFG_2K_B, 1.0, 1)
        table.record_execution("b", CFG_2K, 1.0, 1)
        profile = table.profile("b")
        assert profile.explored_configs_for_size(2) == (CFG_2K, CFG_2K_B)


class TestTunedState:
    def test_mark_tuned(self):
        table = ProfilingTable()
        table.mark_tuned("b", 2)
        assert table.is_best_config_known("b", 2)
        assert not table.is_best_config_known("b", 4)

    def test_exploration_counts(self):
        table = ProfilingTable()
        table.record_execution("a", CFG_2K, 1.0, 1)
        table.record_execution("a", CFG_8K, 1.0, 1)
        table.record_execution("b", BASE_CONFIG, 1.0, 1)
        assert table.exploration_counts() == {"a": 2, "b": 1}
