"""Tests for the priority/deadline scheduling extension (paper §VIII)."""

import pytest

from repro.cache.config import BASE_CONFIG
from repro.core.scheduler import Job
from repro.workloads.arrivals import JobArrival, with_qos

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestJobQoSFields:
    def test_defaults_are_paper_behaviour(self):
        job = Job(job_id=0, benchmark="b", arrival_cycle=0)
        assert job.priority == 0
        assert job.deadline_cycle is None

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id=0, benchmark="b", arrival_cycle=100, deadline_cycle=50)
        with pytest.raises(ValueError):
            JobArrival(job_id=0, benchmark="b", arrival_cycle=100,
                       deadline_cycle=50)


class TestWithQos:
    def make(self, **kwargs):
        arrivals = [
            JobArrival(job_id=i, benchmark="puwmod", arrival_cycle=i * 1000)
            for i in range(50)
        ]
        return with_qos(
            arrivals, service_estimate=lambda name: 40_000, **kwargs
        )

    def test_priorities_in_range(self):
        annotated = self.make(priority_levels=3, seed=0)
        assert {a.priority for a in annotated} == {0, 1, 2}

    def test_deadline_formula(self):
        annotated = self.make(deadline_slack=2.5, deadline_fraction=1.0, seed=0)
        for arrival in annotated:
            assert arrival.deadline_cycle == arrival.arrival_cycle + 100_000

    def test_deadline_fraction(self):
        annotated = self.make(deadline_fraction=0.0, seed=0)
        assert all(a.deadline_cycle is None for a in annotated)

    def test_deterministic(self):
        assert self.make(seed=3) == self.make(seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(priority_levels=0)
        with pytest.raises(ValueError):
            self.make(deadline_slack=0)
        with pytest.raises(ValueError):
            self.make(deadline_fraction=1.5)
        with pytest.raises(ValueError):
            with_qos(
                [JobArrival(job_id=0, benchmark="x", arrival_cycle=0)],
                service_estimate=lambda name: 0,
            )


class TestDisciplines:
    def test_unknown_discipline_rejected(self, small_store, oracle,
                                         energy_table):
        with pytest.raises(ValueError):
            make_simulation(
                "base", small_store, oracle, energy_table, discipline="lifo"
            )

    def test_priority_jumps_queue(self, small_store, oracle, energy_table):
        # Four simultaneous arrivals occupy all cores; two more arrive:
        # under priority discipline the high-priority one starts first
        # even though it arrived with a later id.
        # Blockers with distinct service times so cores free one at a
        # time (same-benchmark blockers would all complete at once).
        arrivals = [
            JobArrival(job_id=i, benchmark=name, arrival_cycle=0)
            for i, name in enumerate(SUITE_NAMES)
        ] + [
            JobArrival(job_id=4, benchmark="puwmod", arrival_cycle=1,
                       priority=0),
            JobArrival(job_id=5, benchmark="puwmod", arrival_cycle=1,
                       priority=5),
        ]
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority")
        result = sim.run(arrivals)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[5].start_cycle < by_id[4].start_cycle

    def test_fifo_keeps_arrival_order(self, small_store, oracle,
                                      energy_table):
        arrivals = [
            JobArrival(job_id=i, benchmark=name, arrival_cycle=0)
            for i, name in enumerate(SUITE_NAMES)
        ] + [
            JobArrival(job_id=4, benchmark="puwmod", arrival_cycle=1,
                       priority=0),
            JobArrival(job_id=5, benchmark="puwmod", arrival_cycle=1,
                       priority=5),
        ]
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[4].start_cycle <= by_id[5].start_cycle

    def test_edf_serves_tightest_deadline_first(self, small_store, oracle,
                                                energy_table):
        arrivals = [
            JobArrival(job_id=i, benchmark=name, arrival_cycle=0)
            for i, name in enumerate(SUITE_NAMES)
        ] + [
            JobArrival(job_id=4, benchmark="puwmod", arrival_cycle=1,
                       deadline_cycle=100_000_000),
            JobArrival(job_id=5, benchmark="puwmod", arrival_cycle=1,
                       deadline_cycle=200_000),
            JobArrival(job_id=6, benchmark="puwmod", arrival_cycle=1),
        ]
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="edf")
        result = sim.run(arrivals)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[5].start_cycle < by_id[4].start_cycle
        # Deadline-free jobs go last.
        assert by_id[6].start_cycle >= by_id[4].start_cycle

    def test_deadline_metrics(self, small_store, oracle, energy_table):
        base_cycles = small_store.estimate("puwmod", BASE_CONFIG).total_cycles
        arrivals = [
            # Generous deadline: met.
            JobArrival(job_id=0, benchmark="puwmod", arrival_cycle=0,
                       deadline_cycle=base_cycles * 10),
            # Impossible deadline: missed.
            JobArrival(job_id=1, benchmark="puwmod", arrival_cycle=0,
                       deadline_cycle=base_cycles // 2),
            # No deadline.
            JobArrival(job_id=2, benchmark="puwmod", arrival_cycle=0),
        ]
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals)
        assert result.deadline_jobs == 2
        assert result.deadline_misses == 1
        assert result.deadline_miss_rate == pytest.approx(0.5)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[0].met_deadline is True
        assert by_id[1].met_deadline is False
        assert by_id[2].met_deadline is None

    def test_disciplines_do_not_change_energy_model(self, small_store,
                                                    oracle, energy_table):
        """Same jobs, different order: per-job energies are identical."""
        arrivals = arrivals_for(SUITE_NAMES * 4, gap=50_000)
        fifo = make_simulation("base", small_store, oracle, energy_table)
        edf = make_simulation("base", small_store, oracle, energy_table,
                              discipline="edf")
        result_fifo = fifo.run(arrivals)
        result_edf = edf.run(arrivals)
        energy_fifo = {r.job_id: r.energy_nj for r in result_fifo.jobs}
        energy_edf = {r.job_id: r.energy_nj for r in result_edf.jobs}
        assert energy_fifo == energy_edf

    def test_priority_discipline_with_proposed_policy(self, small_store,
                                                      oracle, energy_table):
        arrivals = with_qos(
            arrivals_for(SUITE_NAMES * 6, gap=50_000),
            service_estimate=lambda name: small_store.estimate(
                name, BASE_CONFIG
            ).total_cycles,
            seed=0,
        )
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority")
        result = sim.run(arrivals)
        assert result.jobs_completed == len(arrivals)
        assert result.deadline_jobs > 0
