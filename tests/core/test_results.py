"""Tests for result containers and normalisation."""

import pytest

from repro.core.results import JobRecord, SimulationResult


def make_record(arrival=0, start=10, completion=110, **kwargs):
    defaults = dict(
        job_id=0, benchmark="b", arrival_cycle=arrival, start_cycle=start,
        completion_cycle=completion, core_index=1, config_name="2KB_1W_16B",
        profiled=False, tuning=False, energy_nj=5.0,
    )
    defaults.update(kwargs)
    return JobRecord(**defaults)


def make_result(policy="base", idle=100.0, dynamic=200.0, static=50.0,
                makespan=1000, jobs=None):
    return SimulationResult(
        policy=policy,
        jobs_completed=len(jobs or []),
        makespan_cycles=makespan,
        idle_energy_nj=idle,
        dynamic_energy_nj=dynamic,
        busy_static_energy_nj=static,
        reconfig_energy_nj=1.0,
        profiling_overhead_nj=0.5,
        reconfig_cycles=10,
        stall_decisions=0,
        non_best_decisions=0,
        tuning_executions=0,
        profiling_executions=0,
        jobs=jobs or [],
    )


class TestJobRecord:
    def test_derived_metrics(self):
        record = make_record(arrival=5, start=20, completion=120)
        assert record.waiting_cycles == 15
        assert record.service_cycles == 100
        assert record.turnaround_cycles == 115

    def test_ordering_validated(self):
        with pytest.raises(ValueError):
            make_record(arrival=10, start=5)
        with pytest.raises(ValueError):
            make_record(start=10, completion=5)


class TestSimulationResult:
    def test_total_energy(self):
        result = make_result(idle=10.0, dynamic=20.0, static=5.0)
        assert result.total_energy_nj == pytest.approx(35.0)

    def test_mean_metrics(self):
        jobs = [
            make_record(arrival=0, start=10, completion=20),
            make_record(arrival=0, start=30, completion=40),
        ]
        result = make_result(jobs=jobs)
        assert result.mean_waiting_cycles == pytest.approx(20.0)
        assert result.mean_turnaround_cycles == pytest.approx(30.0)

    def test_mean_metrics_empty(self):
        result = make_result()
        assert result.mean_waiting_cycles == 0.0
        assert result.mean_turnaround_cycles == 0.0

    def test_normalized_to(self):
        base = make_result(idle=100.0, dynamic=200.0, static=0.0, makespan=1000)
        mine = make_result(idle=50.0, dynamic=100.0, static=0.0, makespan=800)
        ratios = mine.normalized_to(base)
        assert ratios["idle_energy"] == pytest.approx(0.5)
        assert ratios["dynamic_energy"] == pytest.approx(0.5)
        assert ratios["total_energy"] == pytest.approx(0.5)
        assert ratios["cycles"] == pytest.approx(0.8)

    def test_normalized_to_self_is_unity(self):
        result = make_result()
        for value in result.normalized_to(result).values():
            assert value == pytest.approx(1.0)


class TestPerBenchmarkStats:
    def test_aggregation(self):
        jobs = [
            make_record(arrival=0, start=0, completion=100,
                        benchmark="a2time", core_index=0, energy_nj=10.0),
            make_record(arrival=0, start=50, completion=250,
                        benchmark="a2time", core_index=1, energy_nj=30.0,
                        config_name="4KB_1W_16B"),
            make_record(arrival=10, start=10, completion=60,
                        benchmark="matrix", core_index=3, energy_nj=5.0),
        ]
        result = make_result(jobs=jobs)
        stats = result.per_benchmark_stats()
        assert set(stats) == {"a2time", "matrix"}
        a2 = stats["a2time"]
        assert a2.jobs == 2
        assert a2.mean_energy_nj == 20.0
        assert a2.mean_waiting_cycles == 25.0
        assert a2.cores_used == (0, 1)
        assert len(a2.configs_used) == 2
        assert stats["matrix"].cores_used == (3,)

    def test_deadline_misses_counted(self):
        jobs = [
            make_record(arrival=0, start=0, completion=100,
                        deadline_cycle=50),
            make_record(arrival=0, start=0, completion=100,
                        deadline_cycle=200),
        ]
        result = make_result(jobs=jobs)
        stats = result.per_benchmark_stats()["b"]
        assert stats.deadline_misses == 1

    def test_empty(self):
        assert make_result().per_benchmark_stats() == {}


class TestCoreUtilizations:
    def test_fractions(self):
        result = make_result(makespan=1000)
        result.core_busy_cycles.update({0: 500, 1: 1000, 2: 0})
        util = result.core_utilizations
        assert util == {0: 0.5, 1: 1.0, 2: 0.0}

    def test_zero_makespan(self):
        result = make_result(makespan=0)
        result.core_busy_cycles.update({0: 0})
        assert result.core_utilizations == {0: 0.0}
