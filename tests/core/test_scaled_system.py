"""Tests for scaled-up/down systems (paper §III)."""

import pytest

from repro.cache.config import BASE_CONFIG
from repro.core.system import scaled_system
from repro.workloads.arrivals import JobArrival

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestScaledSystemConstruction:
    def test_dual_core(self):
        system = scaled_system((4, 8))
        assert len(system) == 2
        assert system.cache_sizes_kb == (4, 8)
        assert system.primary_profiling_core.index == 1

    def test_eight_core(self):
        system = scaled_system((2, 2, 4, 4, 8, 8, 8, 8))
        assert len(system) == 8
        assert system.primary_profiling_core.index == 7
        # Two profiling cores, like the paper's Cores 3 and 4.
        assert len(system.profiling_cores) == 2
        assert system.profiling_cores[0].primary_profiling

    def test_primary_starts_in_base_config(self):
        system = scaled_system((2, 8))
        assert system.primary_profiling_core.reset_config == BASE_CONFIG

    def test_needs_base_size_core(self):
        with pytest.raises(ValueError):
            scaled_system((2, 4))

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            scaled_system(())

    def test_paper_shape(self):
        system = scaled_system((2, 4, 8, 8))
        assert [c.cache_size_kb for c in system.cores] == [2, 4, 8, 8]
        assert system.primary_profiling_core.index == 3


class TestScaledSimulation:
    @pytest.mark.parametrize(
        "sizes", [(4, 8), (2, 8, 8), (2, 2, 4, 4, 8, 8, 8, 8)]
    )
    def test_proposed_policy_runs_on_any_scale(self, sizes, small_store,
                                               oracle, energy_table):
        system = scaled_system(sizes)
        sim = make_simulation(
            "proposed", small_store, oracle, energy_table, system=system
        )
        result = sim.run(arrivals_for(SUITE_NAMES * 6, gap=100_000))
        assert result.jobs_completed == 24
        assert {r.core_index for r in result.jobs} <= set(range(len(sizes)))

    def test_missing_size_maps_to_nearest(self, small_store, oracle,
                                          energy_table):
        # A (4, 8) system has no 2KB core; 2KB-best jobs (puwmod) must
        # map to the 4KB core.
        system = scaled_system((4, 8))
        sim = make_simulation(
            "energy_centric", small_store, oracle, energy_table,
            system=system,
        )
        result = sim.run(arrivals_for(["puwmod"] * 4, gap=3_000_000))
        placements = {r.core_index for r in result.jobs if not r.profiled}
        assert placements == {0}

    def test_more_cores_shorter_makespan_under_load(self, small_store,
                                                    oracle, energy_table):
        arrivals = arrivals_for(SUITE_NAMES * 10, gap=30_000)
        small = make_simulation(
            "proposed", small_store, oracle, energy_table,
            system=scaled_system((4, 8)),
        ).run(arrivals)
        large = make_simulation(
            "proposed", small_store, oracle, energy_table,
            system=scaled_system((2, 2, 4, 4, 8, 8, 8, 8)),
        ).run(arrivals)
        assert large.makespan_cycles < small.makespan_cycles

    def test_profiling_lands_on_profiling_cores(self, small_store, oracle,
                                                energy_table):
        system = scaled_system((2, 2, 4, 4, 8, 8, 8, 8))
        sim = make_simulation(
            "proposed", small_store, oracle, energy_table, system=system
        )
        result = sim.run(arrivals_for(SUITE_NAMES, gap=3_000_000))
        for record in result.jobs:
            if record.profiled:
                assert record.core_index in (6, 7)
