"""Tests for scheduler runtime types (Job, CoreState, Assignment)."""

import pytest

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.core.scheduler import Assignment, CoreState, Job
from repro.core.system import CoreSpec


def make_core(size_kb=8):
    return CoreState(CoreSpec(index=0, cache_size_kb=size_kb))


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            Job(job_id=-1, benchmark="x", arrival_cycle=0)
        with pytest.raises(ValueError):
            Job(job_id=0, benchmark="x", arrival_cycle=-1)

    def test_started(self):
        job = Job(job_id=0, benchmark="x", arrival_cycle=0)
        assert not job.started
        job.start_cycle = 5
        assert job.started


class TestCoreState:
    def test_initial_state(self):
        core = make_core()
        assert core.is_idle(0)
        assert core.current_config == CacheConfig(8, 4, 64)
        assert core.remaining_cycles(0) == 0
        assert core.size_kb == 8

    def test_begin_occupies(self):
        core = make_core()
        job = Job(job_id=1, benchmark="b", arrival_cycle=0)
        core.begin(job, now=10, service_cycles=100)
        assert not core.is_idle(10)
        assert core.busy_until == 110
        assert core.remaining_cycles(50) == 60
        assert core.busy_cycles == 100
        assert core.executions == 1

    def test_begin_while_busy_rejected(self):
        core = make_core()
        job = Job(job_id=1, benchmark="b", arrival_cycle=0)
        core.begin(job, now=0, service_cycles=10)
        with pytest.raises(RuntimeError):
            core.begin(Job(job_id=2, benchmark="c", arrival_cycle=0), 5, 10)

    def test_non_positive_service_rejected(self):
        core = make_core()
        job = Job(job_id=1, benchmark="b", arrival_cycle=0)
        with pytest.raises(ValueError):
            core.begin(job, now=0, service_cycles=0)

    def test_finish_returns_job(self):
        core = make_core()
        job = Job(job_id=1, benchmark="b", arrival_cycle=0)
        core.begin(job, now=0, service_cycles=10)
        finished = core.finish(now=10)
        assert finished is job
        assert core.is_idle(10)

    def test_finish_wrong_time_rejected(self):
        core = make_core()
        core.begin(Job(job_id=1, benchmark="b", arrival_cycle=0), 0, 10)
        with pytest.raises(RuntimeError):
            core.finish(now=9)

    def test_finish_idle_rejected(self):
        with pytest.raises(RuntimeError):
            make_core().finish(now=0)

    def test_busy_cycles_accumulate(self):
        core = make_core()
        core.begin(Job(job_id=1, benchmark="b", arrival_cycle=0), 0, 10)
        core.finish(10)
        core.begin(Job(job_id=2, benchmark="b", arrival_cycle=0), 20, 30)
        core.finish(50)
        assert core.busy_cycles == 40
        assert core.executions == 2

    def test_tuner_attached(self):
        core = make_core()
        cost = core.tuner.reconfigure(CacheConfig(8, 1, 16))
        assert cost.cycles > 0
        assert core.current_config == CacheConfig(8, 1, 16)


class TestAssignment:
    def test_defaults(self):
        assignment = Assignment(core_index=2, config=BASE_CONFIG)
        assert not assignment.profiling
        assert not assignment.tuning
