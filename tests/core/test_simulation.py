"""End-to-end tests of the scheduler simulation for every policy."""

import pytest

from repro.cache.config import BASE_CONFIG
from repro.core.policies import POLICY_NAMES
from repro.workloads.arrivals import JobArrival

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestAllPoliciesComplete:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_all_jobs_complete(self, policy, small_store, oracle, energy_table):
        sim = make_simulation(policy, small_store, oracle, energy_table)
        arrivals = arrivals_for(SUITE_NAMES * 10, gap=60_000)
        result = sim.run(arrivals)
        assert result.jobs_completed == 40
        assert result.policy == policy
        assert result.makespan_cycles > 0

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_job_records_consistent(self, policy, small_store, oracle,
                                    energy_table):
        sim = make_simulation(policy, small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 5, gap=100_000))
        for record in result.jobs:
            assert record.arrival_cycle <= record.start_cycle
            assert record.start_cycle < record.completion_cycle
            assert record.energy_nj > 0
            assert 0 <= record.core_index < 4

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_cores_never_overlap(self, policy, small_store, oracle,
                                 energy_table):
        sim = make_simulation(policy, small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 8, gap=40_000))
        by_core = {}
        for record in result.jobs:
            by_core.setdefault(record.core_index, []).append(record)
        for records in by_core.values():
            records.sort(key=lambda r: r.start_cycle)
            for prev, cur in zip(records, records[1:]):
                assert prev.completion_cycle <= cur.start_cycle

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_deterministic(self, policy, small_store, oracle, energy_table):
        arrivals = arrivals_for(SUITE_NAMES * 4, gap=70_000)
        a = make_simulation(policy, small_store, oracle, energy_table).run(arrivals)
        b = make_simulation(policy, small_store, oracle, energy_table).run(arrivals)
        assert a.total_energy_nj == pytest.approx(b.total_energy_nj)
        assert a.makespan_cycles == b.makespan_cycles
        assert [r.core_index for r in a.jobs] == [r.core_index for r in b.jobs]


class TestEnergyAccounting:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_total_is_sum_of_buckets(self, policy, small_store, oracle,
                                     energy_table):
        sim = make_simulation(policy, small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 3))
        assert result.total_energy_nj == pytest.approx(
            result.idle_energy_nj
            + result.busy_static_energy_nj
            + result.dynamic_energy_nj
        )
        assert result.idle_energy_nj >= 0
        assert result.dynamic_energy_nj > 0

    def test_overheads_inside_dynamic(self, small_store, oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 3))
        assert result.reconfig_energy_nj > 0
        assert result.profiling_overhead_nj > 0
        assert result.dynamic_energy_nj > (
            result.reconfig_energy_nj + result.profiling_overhead_nj
        )

    def test_job_energy_matches_store(self, small_store, oracle, energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(["puwmod"]))
        record = result.jobs[0]
        expected = small_store.estimate("puwmod", BASE_CONFIG).total_energy_nj
        assert record.energy_nj == pytest.approx(expected)


class TestProfilingBehaviour:
    def test_profiling_once_per_benchmark(self, small_store, oracle,
                                          energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 5))
        assert result.profiling_executions == len(SUITE_NAMES)
        profiled = [r for r in result.jobs if r.profiled]
        assert {r.benchmark for r in profiled} == set(SUITE_NAMES)

    def test_profiling_on_profiling_core_in_base_config(
        self, small_store, oracle, energy_table
    ):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES))
        for record in result.jobs:
            if record.profiled:
                assert record.core_index in (2, 3)
                assert record.config_name == "8KB_4W_64B"

    def test_base_policy_never_profiles(self, small_store, oracle,
                                        energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 2))
        assert result.profiling_executions == 0
        assert all(not r.profiled for r in result.jobs)

    def test_predictions_recorded(self, small_store, oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 2))
        assert set(result.predictions_kb) == set(SUITE_NAMES)
        for name, size in result.predictions_kb.items():
            assert size == small_store.best_size_kb(name)


class TestPolicyBehaviour:
    def test_base_runs_everything_in_base_config(self, small_store, oracle,
                                                 energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 3))
        assert {r.config_name for r in result.jobs} == {"8KB_4W_64B"}

    def test_energy_centric_only_best_size_cores(self, small_store, oracle,
                                                 energy_table):
        sim = make_simulation("energy_centric", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 6, gap=50_000))
        core_sizes = {0: 2, 1: 4, 2: 8, 3: 8}
        for record in result.jobs:
            if record.profiled:
                continue
            best = small_store.best_size_kb(record.benchmark)
            assert core_sizes[record.core_index] == best

    def test_optimal_explores_whole_design_space(self, small_store, oracle,
                                                 energy_table):
        sim = make_simulation("optimal", small_store, oracle, energy_table)
        # Exploration is opportunistic (only on the core the job lands
        # on); with sparse arrivals every dispatch sees an idle machine,
        # so 20 executions cover all 18 configurations deterministically.
        result = sim.run(arrivals_for(SUITE_NAMES * 20, gap=2_000_000))
        assert all(
            count == 18 for count in result.exploration_counts.values()
        )

    def test_proposed_explores_far_less_than_optimal(self, small_store,
                                                     oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 25, gap=30_000))
        # Tuning heuristic: at most 2+4+5 per size, plus the base-config
        # profiling record.
        assert all(
            count <= 12 for count in result.exploration_counts.values()
        )

    def test_proposed_decisions_counted(self, small_store, oracle,
                                        energy_table):
        # Force contention: all four benchmarks arrive nearly together,
        # repeatedly.
        arrivals = [
            JobArrival(job_id=i, benchmark=SUITE_NAMES[i % 4],
                       arrival_cycle=(i // 4) * 50_000)
            for i in range(40)
        ]
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals)
        assert result.stall_decisions + result.non_best_decisions > 0


class TestValidation:
    def test_unknown_benchmark_rejected(self, small_store, oracle,
                                        energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        with pytest.raises(KeyError):
            sim.run([JobArrival(job_id=0, benchmark="ghost", arrival_cycle=0)])

    def test_empty_arrivals_rejected(self, small_store, oracle, energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        with pytest.raises(ValueError):
            sim.run([])

    def test_predictor_required_for_ann_policies(self, small_store,
                                                 energy_table):
        from repro.core.policies import make_policy
        from repro.core.simulation import SchedulerSimulation
        from repro.core.system import paper_system

        with pytest.raises(ValueError):
            SchedulerSimulation(
                paper_system(), make_policy("proposed"), small_store,
                predictor=None, energy_table=energy_table,
            )

    def test_negative_profiling_overhead_rejected(self, small_store, oracle,
                                                  energy_table):
        with pytest.raises(ValueError):
            make_simulation(
                "proposed", small_store, oracle, energy_table,
                profiling_overhead_fraction=-0.1,
            )


class TestCoreUtilizationRecording:
    def test_busy_cycles_recorded_per_core(self, small_store, oracle,
                                           energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 4, gap=50_000))
        assert set(result.core_busy_cycles) == {0, 1, 2, 3}
        for core, busy in result.core_busy_cycles.items():
            assert 0 <= busy <= result.makespan_cycles
        for fraction in result.core_utilizations.values():
            assert 0.0 <= fraction <= 1.0
        # The sum of per-core busy time equals the total service time.
        total_service = sum(r.service_cycles for r in result.jobs)
        assert sum(result.core_busy_cycles.values()) == total_service
