"""Error-path and edge-case tests for the scheduler simulation."""

import pytest

from repro.cache.config import CacheConfig, configs_for_size
from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.core.policies import make_policy
from repro.core.predictor import FixedPredictor, OraclePredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import CoreSpec, SystemConfig, paper_system
from repro.workloads.arrivals import JobArrival
from repro.workloads.eembc import eembc_benchmark

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestStoreGaps:
    def test_missing_config_in_store_raises_cleanly(self, oracle,
                                                    energy_table):
        """A store characterised only for 8KB cannot serve 2KB cores."""
        partial = CharacterizationStore(
            characterize_suite(
                [eembc_benchmark("puwmod")], configs=configs_for_size(8)
            )
        )
        sim = make_simulation(
            "proposed", partial, OraclePredictor(partial), energy_table
        )
        # puwmod's best size within an 8KB-only store is 8 -> fine; but
        # the proposed policy explores idle non-best cores, whose
        # configurations the store lacks.
        with pytest.raises(KeyError):
            sim.run(arrivals_for(["puwmod"] * 6, gap=0))


class TestDegenerateSystems:
    def test_single_core_system(self, small_store, oracle, energy_table):
        system = SystemConfig(cores=(
            CoreSpec(index=0, cache_size_kb=8, profiling=True,
                     primary_profiling=True),
        ))
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              system=system)
        result = sim.run(arrivals_for(SUITE_NAMES * 3, gap=0))
        assert result.jobs_completed == 12
        # Everything serialises through the one core.
        assert all(r.core_index == 0 for r in result.jobs)

    def test_fixed_predictor_maps_to_nearest_size(self, small_store,
                                                  energy_table):
        # A predictor insisting on 16 KB maps onto the largest real core.
        sim = make_simulation(
            "energy_centric", small_store, FixedPredictor(16), energy_table
        )
        result = sim.run(arrivals_for(["puwmod"] * 3, gap=3_000_000))
        placements = {r.core_index for r in result.jobs if not r.profiled}
        assert placements <= {2, 3}  # the 8KB cores


class TestSimultaneityAndOrdering:
    def test_simultaneous_arrival_and_completion(self, small_store, oracle,
                                                 energy_table):
        """An arrival at the exact completion instant sees the freed core
        (completions sort before arrivals at equal timestamps)."""
        store = small_store
        service = store.estimate(
            "puwmod", store.get("puwmod").best_config()
        ).total_cycles
        sim = make_simulation("base", store, oracle, energy_table)
        base_service = store.estimate(
            "puwmod", CacheConfig(8, 4, 64)
        ).total_cycles
        arrivals = [
            JobArrival(job_id=i, benchmark="puwmod", arrival_cycle=0)
            for i in range(4)
        ] + [
            JobArrival(job_id=4, benchmark="puwmod",
                       arrival_cycle=base_service),
        ]
        result = sim.run(arrivals)
        by_id = {r.job_id: r for r in result.jobs}
        assert by_id[4].start_cycle == base_service
        assert by_id[4].waiting_cycles == 0

    def test_zero_cycle_arrival_burst_completes(self, small_store, oracle,
                                                energy_table):
        arrivals = [
            JobArrival(job_id=i, benchmark=SUITE_NAMES[i % 4],
                       arrival_cycle=0)
            for i in range(20)
        ]
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals)
        assert result.jobs_completed == 20

    def test_duplicate_job_ids_allowed_but_tracked(self, small_store,
                                                   oracle, energy_table):
        # Job ids are caller-provided; the simulation treats them as
        # labels and still completes everything.
        arrivals = [
            JobArrival(job_id=7, benchmark="puwmod", arrival_cycle=0),
            JobArrival(job_id=7, benchmark="puwmod", arrival_cycle=10),
        ]
        sim = make_simulation("base", small_store, oracle, energy_table)
        result = sim.run(arrivals)
        assert result.jobs_completed == 2


class TestReconfigurationAccounting:
    def test_reconfig_cycles_extend_service(self, small_store, oracle,
                                            energy_table):
        """Back-to-back different-config runs on one core include the
        tuner's flush cycles in the occupancy."""
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 4, gap=0))
        assert result.reconfig_cycles > 0
        # Total core busy time covers at least the raw execution cycles.
        busy = sum(core.busy_cycles for core in sim.cores)
        raw = sum(
            small_store.estimate(
                r.benchmark, CacheConfig.from_name(r.config_name)
            ).total_cycles
            for r in result.jobs
        )
        assert busy >= raw
