"""Tests for the heterogeneous system description."""

import pytest

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.core.system import CoreSpec, SystemConfig, base_system, paper_system


class TestPaperSystem:
    def test_quad_core_layout(self):
        system = paper_system()
        assert len(system) == 4
        assert [c.cache_size_kb for c in system.cores] == [2, 4, 8, 8]

    def test_profiling_roles(self):
        system = paper_system()
        assert system.primary_profiling_core.index == 3
        profiling = system.profiling_cores
        assert [c.index for c in profiling] == [3, 2]  # primary first

    def test_core4_starts_in_base_config(self):
        system = paper_system()
        assert system.cores[3].reset_config == BASE_CONFIG

    def test_cache_sizes(self):
        assert paper_system().cache_sizes_kb == (2, 4, 8)

    def test_cores_with_size(self):
        system = paper_system()
        assert len(system.cores_with_size(8)) == 2
        assert len(system.cores_with_size(2)) == 1
        assert system.cores_with_size(16) == ()

    def test_core_names(self):
        assert paper_system().cores[0].name == "Core 1"
        assert paper_system().cores[3].name == "Core 4"


class TestBaseSystem:
    def test_all_cores_base_config(self):
        system = base_system()
        for core in system.cores:
            assert core.reset_config == BASE_CONFIG
            assert core.cache_size_kb == 8

    def test_custom_core_count(self):
        assert len(base_system(2)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            base_system(0)


class TestCoreSpec:
    def test_configs_follow_size(self):
        core = CoreSpec(index=0, cache_size_kb=4)
        assert len(core.configs) == 6
        assert all(c.size_kb == 4 for c in core.configs)

    def test_default_reset_config_is_largest(self):
        core = CoreSpec(index=0, cache_size_kb=8)
        assert core.reset_config == CacheConfig(8, 4, 64)

    def test_supports(self):
        core = CoreSpec(index=0, cache_size_kb=2)
        assert core.supports(CacheConfig(2, 1, 32))
        assert not core.supports(CacheConfig(4, 1, 32))

    def test_initial_config_size_checked(self):
        with pytest.raises(ValueError):
            CoreSpec(index=0, cache_size_kb=2, initial_config=BASE_CONFIG)

    def test_primary_implies_profiling(self):
        with pytest.raises(ValueError):
            CoreSpec(index=0, cache_size_kb=8, primary_profiling=True)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            CoreSpec(index=-1, cache_size_kb=8)


class TestSystemValidation:
    def make_core(self, index, primary=False):
        return CoreSpec(
            index=index, cache_size_kb=8,
            profiling=primary, primary_profiling=primary,
        )

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=())

    def test_indices_must_be_sequential(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=(self.make_core(1, primary=True),))

    def test_needs_profiling_core(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=(CoreSpec(index=0, cache_size_kb=8),))

    def test_exactly_one_primary(self):
        with pytest.raises(ValueError):
            SystemConfig(
                cores=(self.make_core(0, primary=True),
                       self.make_core(1, primary=True))
            )


class TestNearestSize:
    def test_exact_match(self):
        assert paper_system().nearest_size_kb(4) == 4

    def test_maps_to_closest(self):
        system = SystemConfig(
            cores=(
                CoreSpec(index=0, cache_size_kb=2),
                CoreSpec(index=1, cache_size_kb=8, profiling=True,
                         primary_profiling=True),
            )
        )
        assert system.nearest_size_kb(4) == 2  # tie resolves smaller
        assert system.nearest_size_kb(8) == 8
        assert system.nearest_size_kb(6) == 8
