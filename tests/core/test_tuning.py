"""Tests for the cache tuning heuristic (paper Figure 5)."""

import pytest

from repro.cache.config import CacheConfig, configs_for_size
from repro.core.tuning import TuningHeuristic, TuningSession


def run_session(size_kb, energy_fn):
    """Drive a session to completion with a config -> energy function."""
    session = TuningSession(size_kb=size_kb)
    steps = []
    while not session.done:
        config = session.next_config()
        steps.append(config)
        session.record(config, energy_fn(config))
    return session, steps


class TestExplorationOrder:
    def test_starts_smallest_both_parameters(self):
        session = TuningSession(size_kb=8)
        assert session.next_config() == CacheConfig(8, 1, 16)

    def test_assoc_swept_before_line(self):
        # Monotonically improving energy: full sweep of both parameters.
        session, steps = run_session(8, lambda c: 1000.0 - (c.assoc * 10 + c.line_b))
        names = [c.name for c in steps]
        assert names == [
            "8KB_1W_16B", "8KB_2W_16B", "8KB_4W_16B",
            "8KB_4W_32B", "8KB_4W_64B",
        ]

    def test_stops_assoc_on_energy_increase(self):
        # 2-way worse than 1-way: associativity fixed at 1.
        energies = {1: 100.0, 2: 150.0, 4: 50.0}
        session, steps = run_session(
            8, lambda c: energies[c.assoc] + c.line_b * 0.01
        )
        assert all(c.assoc in (1, 2) for c in steps)
        assert session.best_config.assoc == 1

    def test_stops_line_on_energy_increase(self):
        def energy(c):
            line_cost = {16: 100.0, 32: 90.0, 64: 95.0}
            return line_cost[c.line_b] + c.assoc
        session, steps = run_session(8, energy)
        assert session.best_config.line_b == 32
        assert session.done

    def test_line_sweep_skips_remeasured_smallest(self):
        _, steps = run_session(8, lambda c: 100.0 + c.assoc + c.line_b * 0.001)
        # Assoc sweep: 1W (best), 2W worse -> line phase starts at 32B.
        line_phase = [c for c in steps if c.assoc == 1 and c.line_b > 16]
        assert line_phase[0].line_b == 32


class TestExplorationBounds:
    def test_minimum_three_on_8kb(self):
        # Worst case for improvement: everything after the first is worse.
        session, steps = run_session(
            8, lambda c: 1.0 + c.assoc + c.line_b * 0.01
        )
        assert len(steps) == 3

    def test_maximum_five_on_8kb(self):
        session, steps = run_session(8, lambda c: 1000.0 - (c.assoc * 100 + c.line_b))
        assert len(steps) == 5

    def test_2kb_range(self):
        # Direct-mapped only: 2 (line worse) to 3 (line keeps improving).
        _, worst = run_session(2, lambda c: c.line_b)
        assert len(worst) == 2
        _, best = run_session(2, lambda c: 1000.0 - c.line_b)
        assert len(best) == 3

    def test_4kb_range(self):
        _, worst = run_session(4, lambda c: c.assoc + c.line_b * 0.01)
        assert len(worst) == 3
        _, best = run_session(4, lambda c: 1000.0 - (c.assoc * 100 + c.line_b))
        assert len(best) == 4

    def test_always_fewer_than_exhaustive(self):
        import itertools

        # Across many random energy landscapes the heuristic never
        # exceeds the per-size exhaustive count.
        import random

        rng = random.Random(0)
        for size in (2, 4, 8):
            exhaustive = len(configs_for_size(size))
            for _ in range(20):
                costs = {c: rng.random() for c in configs_for_size(size)}
                session, steps = run_session(size, lambda c: costs[c])
                assert len(steps) <= min(5, exhaustive)


class TestQuality:
    def test_best_config_is_best_explored(self):
        import random

        rng = random.Random(1)
        for _ in range(30):
            costs = {c: rng.random() for c in configs_for_size(8)}
            session, steps = run_session(8, lambda c: costs[c])
            assert session.best_config in steps
            assert session.best_energy_nj == min(costs[c] for c in steps)

    def test_finds_global_best_on_separable_landscape(self):
        # When the two parameters contribute independently and
        # monotonically, greedy coordinate descent is optimal.
        def energy(c):
            return {1: 30, 2: 20, 4: 10}[c.assoc] + {16: 3, 32: 2, 64: 1}[c.line_b]

        session, _ = run_session(8, energy)
        exhaustive_best = min(configs_for_size(8), key=energy)
        assert session.best_config == exhaustive_best


class TestSessionProtocol:
    def test_record_wrong_config_rejected(self):
        session = TuningSession(size_kb=8)
        with pytest.raises(ValueError):
            session.record(CacheConfig(8, 4, 64), 1.0)

    def test_record_after_done_rejected(self):
        session, _ = run_session(2, lambda c: c.line_b)
        with pytest.raises(RuntimeError):
            session.record(CacheConfig(2, 1, 16), 1.0)

    def test_negative_energy_rejected(self):
        session = TuningSession(size_kb=2)
        with pytest.raises(ValueError):
            session.record(session.next_config(), -1.0)

    def test_next_config_none_when_done(self):
        session, _ = run_session(2, lambda c: c.line_b)
        assert session.next_config() is None

    def test_exploration_count(self):
        session, steps = run_session(4, lambda c: c.assoc)
        assert session.exploration_count == len(steps)

    def test_explored_are_unique(self):
        session, steps = run_session(8, lambda c: 1000.0 - (c.assoc + c.line_b))
        assert len(set(steps)) == len(steps)


class TestLineFirstOrder:
    def test_line_swept_before_assoc(self):
        session = TuningSession(size_kb=8, line_first=True)
        steps = []
        while not session.done:
            config = session.next_config()
            steps.append(config)
            session.record(config, 1000.0 - config.line_b - config.assoc * 0.01)
        names = [c.name for c in steps]
        assert names == [
            "8KB_1W_16B", "8KB_1W_32B", "8KB_1W_64B",
            "8KB_2W_64B", "8KB_4W_64B",
        ]

    def test_line_first_same_bounds(self):
        import random

        rng = random.Random(5)
        for _ in range(20):
            costs = {c: rng.random() for c in configs_for_size(8)}
            session = TuningSession(size_kb=8, line_first=True)
            steps = []
            while not session.done:
                config = session.next_config()
                steps.append(config)
                session.record(config, costs[config])
            assert 3 <= len(steps) <= 5
            assert session.best_config in steps

    def test_orders_can_disagree(self):
        # A landscape where the greedy orders find different optima.
        def energy(c):
            table = {
                (1, 16): 50, (1, 32): 60, (1, 64): 70,
                (2, 16): 45, (2, 32): 20, (2, 64): 65,
                (4, 16): 55, (4, 32): 60, (4, 64): 75,
            }
            return float(table[(c.assoc, c.line_b)])

        assoc_first = TuningSession(size_kb=8)
        while not assoc_first.done:
            config = assoc_first.next_config()
            assoc_first.record(config, energy(config))
        line_first = TuningSession(size_kb=8, line_first=True)
        while not line_first.done:
            config = line_first.next_config()
            line_first.record(config, energy(config))
        # Assoc-first reaches the global best (20 at 2W/32B); line-first
        # stops at 16B (32B is worse at 1W) and misses it.
        assert assoc_first.best_energy_nj == 20.0
        assert line_first.best_energy_nj > 20.0


class TestHeuristicRegistry:
    def test_sessions_keyed_by_benchmark_and_size(self):
        heuristic = TuningHeuristic()
        a = heuristic.session("x", 2)
        b = heuristic.session("x", 4)
        c = heuristic.session("y", 2)
        assert a is heuristic.session("x", 2)
        assert a is not b and a is not c
        assert len(heuristic.sessions()) == 3

    def test_max_exploration_count(self):
        heuristic = TuningHeuristic()
        assert heuristic.max_exploration_count() == 0
        session = heuristic.session("x", 2)
        session.record(session.next_config(), 1.0)
        assert heuristic.max_exploration_count() == 1
