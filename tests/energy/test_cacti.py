"""Tests for the CACTI-style analytical energy model."""

import pytest

from repro.cache.config import BASE_CONFIG, DESIGN_SPACE, CacheConfig
from repro.energy.cacti import CactiModel, CactiParameters


@pytest.fixture(scope="module")
def model():
    return CactiModel()


class TestMonotoneTrends:
    def test_size_increases_access_energy(self, model):
        for assoc, line in ((1, 16), (1, 32), (1, 64)):
            energies = [
                model.access_energy_nj(CacheConfig(s, assoc, line))
                for s in (2, 4, 8)
            ]
            assert energies == sorted(energies)
            assert energies[0] < energies[-1]

    def test_assoc_increases_access_energy(self, model):
        for line in (16, 32, 64):
            energies = [
                model.access_energy_nj(CacheConfig(8, a, line))
                for a in (1, 2, 4)
            ]
            assert energies == sorted(energies)
            assert energies[0] < energies[-1]

    def test_line_increases_fill_energy(self, model):
        for size, assoc in ((2, 1), (8, 4)):
            fills = [
                model.fill_energy_nj(CacheConfig(size, assoc, line))
                for line in (16, 32, 64)
            ]
            assert fills == sorted(fills)
            assert fills[0] < fills[-1]

    def test_all_energies_positive(self, model):
        for config in DESIGN_SPACE:
            assert model.access_energy_nj(config) > 0
            assert model.fill_energy_nj(config) > 0

    def test_base_config_magnitude(self, model):
        # Calibrated to single-digit nanojoules at 0.18um (see the module
        # docstring: absolute values anchor the static-energy rule, the
        # reproduction depends on the monotone trends).
        energy = model.access_energy_nj(BASE_CONFIG)
        assert 1.0 < energy < 20.0


class TestComponents:
    def test_components_sum_to_total(self, model):
        for config in DESIGN_SPACE:
            c = model.components(config)
            assert c.total_nj == pytest.approx(
                c.decode_nj + c.wordline_nj + c.bitline_nj
                + c.senseamp_nj + c.tag_nj + c.output_nj
            )

    def test_components_cached(self, model):
        a = model.components(BASE_CONFIG)
        b = model.components(BASE_CONFIG)
        assert a is b

    def test_fill_cheaper_than_assoc_scaled_access(self, model):
        # A fill writes one way; a 4-way access reads four ways of data.
        config = CacheConfig(8, 4, 64)
        assert model.fill_energy_nj(config) < model.access_energy_nj(config)


class TestTagBits:
    def test_tag_bits_formula(self, model):
        config = CacheConfig(8, 4, 64)  # 32 sets (5 bits), 64B offset (6)
        assert model.tag_bits(config) == 32 - 5 - 6

    def test_tag_bits_shrink_with_sets(self, model):
        direct = CacheConfig(8, 1, 16)  # 512 sets
        assoc = CacheConfig(8, 4, 16)  # 128 sets
        assert model.tag_bits(direct) < model.tag_bits(assoc)


class TestTechnologyScaling:
    def test_smaller_node_cheaper(self):
        base = CactiParameters()
        scaled = base.scaled(0.09)
        assert scaled.decode_nj_per_bit < base.decode_nj_per_bit
        assert scaled.tech_um == 0.09

    def test_identity_scaling(self):
        base = CactiParameters()
        same = base.scaled(0.18)
        assert same.bitline_nj_per_column == pytest.approx(
            base.bitline_nj_per_column
        )

    def test_scaling_is_cubic(self):
        base = CactiParameters()
        half = base.scaled(0.09)
        assert half.senseamp_nj_per_bit == pytest.approx(
            base.senseamp_nj_per_bit / 8
        )

    def test_scaled_model_preserves_trends(self):
        model = CactiModel(CactiParameters().scaled(0.13))
        small = model.access_energy_nj(CacheConfig(2, 1, 16))
        large = model.access_energy_nj(CacheConfig(8, 4, 64))
        assert small < large
