"""Tests for the off-chip memory model and the paper's timing constants."""

import pytest

from repro.energy.memory import CHUNK_BYTES, MemoryModel


class TestPaperTimingAssumptions:
    def test_miss_latency_is_forty_l1_fetches(self):
        assert MemoryModel().miss_latency_cycles == 40

    def test_bandwidth_is_half_the_miss_penalty(self):
        model = MemoryModel()
        assert model.bandwidth_cycles_per_chunk == model.miss_latency_cycles // 2

    def test_chunk_is_sixteen_bytes(self):
        assert CHUNK_BYTES == 16

    @pytest.mark.parametrize(
        "line,expected",
        [(16, 40 + 20), (32, 40 + 40), (64, 40 + 80)],
    )
    def test_miss_stall_cycles_figure4(self, line, expected):
        # miss_latency + (linesize/16) * memory_bandwidth
        assert MemoryModel().miss_stall_cycles(line) == expected

    def test_partial_chunk_rounds_up(self):
        assert MemoryModel().miss_stall_cycles(8) == 40 + 20


class TestEnergy:
    def test_energy_grows_with_line(self):
        model = MemoryModel()
        energies = [model.access_energy_nj(line) for line in (16, 32, 64)]
        assert energies == sorted(energies)
        assert energies[0] < energies[-1]

    def test_energy_components(self):
        model = MemoryModel(activate_energy_nj=5.0, transfer_energy_nj_per_byte=0.1)
        assert model.access_energy_nj(32) == pytest.approx(5.0 + 3.2)

    def test_miss_costs_more_than_hit(self):
        # A full miss (off-chip access + stall + fill) must clearly exceed
        # a hit for the cache trade-offs to be meaningful.
        from repro.cache.config import BASE_CONFIG
        from repro.energy.model import EnergyModel

        model = EnergyModel()
        assert model.miss_energy_nj(BASE_CONFIG) > 2 * model.hit_energy_nj(
            BASE_CONFIG
        )

    def test_rejects_non_positive_line(self):
        with pytest.raises(ValueError):
            MemoryModel().access_energy_nj(0)
        with pytest.raises(ValueError):
            MemoryModel().miss_stall_cycles(-16)
