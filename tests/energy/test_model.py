"""Tests for the paper's Figure 4 energy model."""

import pytest

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.cache.stats import CacheStats
from repro.energy.cacti import CactiModel
from repro.energy.memory import MemoryModel
from repro.energy.model import EnergyModel


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


def make_stats(hits, misses):
    stats = CacheStats(
        accesses=hits + misses,
        hits=hits,
        misses=misses,
        read_accesses=hits + misses,
        read_misses=misses,
        fills=misses,
    )
    stats.validate()
    return stats


class TestFigure4Equations:
    def test_energy_per_kbyte_rule(self, model):
        # E(per Kbyte) = E(dyn of base cache) * 10% / base size in KB
        base_dyn = model.cacti.access_energy_nj(BASE_CONFIG)
        assert model.energy_per_kbyte_nj() == pytest.approx(
            base_dyn * 0.10 / 8
        )

    def test_static_per_cycle_scales_with_size(self, model):
        per_kb = model.energy_per_kbyte_nj()
        for size in (2, 4, 8):
            config = CacheConfig(size, 1, 16)
            assert model.static_per_cycle_nj(config) == pytest.approx(
                per_kb * size
            )

    def test_miss_cycles_equation(self, model):
        config = CacheConfig(8, 4, 64)
        # misses * (miss_latency + (line/16) * bandwidth)
        assert model.miss_cycles(config, 10) == 10 * (40 + 4 * 20)

    def test_miss_energy_components(self, model):
        config = CacheConfig(4, 2, 32)
        expected = (
            model.memory.access_energy_nj(32)
            + (40 + 2 * 20) * model.cpu_stall_energy_nj
            + model.cacti.fill_energy_nj(config)
        )
        assert model.miss_energy_nj(config) == pytest.approx(expected)

    def test_dynamic_energy_equation(self, model):
        config = CacheConfig(2, 1, 16)
        stats = make_stats(hits=100, misses=10)
        expected = 100 * model.hit_energy_nj(config) + 10 * model.miss_energy_nj(
            config
        )
        assert model.dynamic_energy_nj(config, stats) == pytest.approx(expected)

    def test_total_cycles(self, model):
        config = CacheConfig(2, 1, 16)
        cycles = model.total_cycles(config, instructions=1000, misses=5)
        assert cycles == 1000 + 5 * (40 + 20)

    def test_static_energy(self, model):
        config = CacheConfig(8, 1, 16)
        assert model.static_energy_nj(config, 1000) == pytest.approx(
            1000 * model.static_per_cycle_nj(config)
        )

    def test_estimate_composition(self, model):
        config = CacheConfig(4, 1, 64)
        stats = make_stats(hits=500, misses=50)
        est = model.estimate(config, instructions=2000, stats=stats)
        assert est.total_cycles == model.total_cycles(config, 2000, 50)
        assert est.miss_cycles == model.miss_cycles(config, 50)
        assert est.energy.dynamic_nj == pytest.approx(
            model.dynamic_energy_nj(config, stats)
        )
        assert est.energy.static_nj == pytest.approx(
            model.static_energy_nj(config, est.total_cycles)
        )
        assert est.total_energy_nj == pytest.approx(
            est.energy.static_nj + est.energy.dynamic_nj
        )

    def test_energy_per_cycle(self, model):
        config = CacheConfig(4, 1, 64)
        est = model.estimate(config, 1000, make_stats(100, 10))
        assert est.energy_per_cycle_nj == pytest.approx(
            est.total_energy_nj / est.total_cycles
        )


class TestIdleEnergy:
    def test_idle_energy_is_leakage(self, model):
        config = CacheConfig(8, 4, 64)
        assert model.idle_energy_nj(config, 100) == pytest.approx(
            100 * model.static_per_cycle_nj(config)
        )

    def test_smaller_cache_leaks_less(self, model):
        small = model.idle_energy_nj(CacheConfig(2, 1, 16), 1000)
        large = model.idle_energy_nj(CacheConfig(8, 1, 16), 1000)
        assert small == pytest.approx(large / 4)

    def test_negative_cycles_rejected(self, model):
        with pytest.raises(ValueError):
            model.idle_energy_nj(BASE_CONFIG, -1)


class TestValidation:
    def test_rejects_negative_misses(self, model):
        with pytest.raises(ValueError):
            model.miss_cycles(BASE_CONFIG, -1)

    def test_rejects_negative_instructions(self, model):
        with pytest.raises(ValueError):
            model.total_cycles(BASE_CONFIG, -1, 0)

    def test_rejects_negative_total_cycles(self, model):
        with pytest.raises(ValueError):
            model.static_energy_nj(BASE_CONFIG, -5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(cpu_stall_energy_nj=-0.1)
        with pytest.raises(ValueError):
            EnergyModel(static_fraction=1.5)
        with pytest.raises(ValueError):
            EnergyModel(cpi_base=0)


class TestParameterisation:
    def test_custom_static_fraction(self):
        model = EnergyModel(static_fraction=0.2)
        assert model.energy_per_kbyte_nj() == pytest.approx(
            model.cacti.access_energy_nj(BASE_CONFIG) * 0.2 / 8
        )

    def test_custom_cpi(self):
        model = EnergyModel(cpi_base=1.5)
        assert model.total_cycles(CacheConfig(2, 1, 16), 1000, 0) == 1500

    def test_custom_submodels_used(self):
        memory = MemoryModel(miss_latency_cycles=100, bandwidth_cycles_per_chunk=50)
        model = EnergyModel(memory=memory)
        assert model.miss_stall_cycles_per_miss(CacheConfig(2, 1, 16)) == 150

    def test_zero_misses_gives_zero_miss_cycles(self, model):
        assert model.miss_cycles(BASE_CONFIG, 0) == 0


class TestWritebackExtension:
    def test_disabled_by_default(self):
        from repro.cache.stats import CacheStats

        model = EnergyModel()
        stats = CacheStats(
            accesses=10, hits=9, misses=1, read_accesses=10, read_misses=1,
            fills=1, writebacks=5,
        )
        config = CacheConfig(2, 1, 16)
        base = 9 * model.hit_energy_nj(config) + model.miss_energy_nj(config)
        assert model.dynamic_energy_nj(config, stats) == pytest.approx(base)

    def test_writeback_term_added_when_enabled(self):
        from repro.cache.stats import CacheStats

        model = EnergyModel(include_writeback_energy=True)
        stats = CacheStats(
            accesses=10, hits=9, misses=1, read_accesses=10, read_misses=1,
            fills=1, writebacks=5,
        )
        config = CacheConfig(2, 1, 16)
        without = EnergyModel().dynamic_energy_nj(config, stats)
        with_wb = model.dynamic_energy_nj(config, stats)
        assert with_wb == pytest.approx(
            without + 5 * model.writeback_energy_nj(config)
        )

    def test_writeback_energy_scales_with_line(self):
        model = EnergyModel(include_writeback_energy=True)
        small = model.writeback_energy_nj(CacheConfig(2, 1, 16))
        large = model.writeback_energy_nj(CacheConfig(2, 1, 64))
        assert large > small
