"""Tests for precomputed energy tables."""

import pytest

from repro.cache.config import BASE_CONFIG, DESIGN_SPACE, CacheConfig
from repro.energy.model import EnergyModel
from repro.energy.tables import EnergyTable


@pytest.fixture(scope="module")
def table():
    return EnergyTable()


class TestTableConsistency:
    def test_covers_design_space(self, table):
        assert len(table) == len(DESIGN_SPACE)
        for config in DESIGN_SPACE:
            assert config in table

    def test_matches_model_exactly(self, table):
        model = table.model
        for config in DESIGN_SPACE:
            constants = table.get(config)
            assert constants.hit_energy_nj == pytest.approx(
                model.hit_energy_nj(config)
            )
            assert constants.miss_energy_nj == pytest.approx(
                model.miss_energy_nj(config)
            )
            assert constants.static_per_cycle_nj == pytest.approx(
                model.static_per_cycle_nj(config)
            )
            assert constants.miss_stall_cycles == (
                model.miss_stall_cycles_per_miss(config)
            )

    def test_dynamic_energy_helper(self, table):
        constants = table.get(BASE_CONFIG)
        expected = 7 * constants.hit_energy_nj + 3 * constants.miss_energy_nj
        assert constants.dynamic_energy_nj(7, 3) == pytest.approx(expected)

    def test_dynamic_energy_rejects_negative(self, table):
        with pytest.raises(ValueError):
            table.get(BASE_CONFIG).dynamic_energy_nj(-1, 0)

    def test_lazy_computation_of_new_config(self, table):
        extra = CacheConfig(size_kb=16, assoc=2, line_b=32)
        assert extra not in table
        constants = table.get(extra)
        assert extra in table
        assert constants.hit_energy_nj == pytest.approx(
            table.model.hit_energy_nj(extra)
        )

    def test_as_mapping_snapshot(self, table):
        mapping = table.as_mapping()
        assert BASE_CONFIG in mapping
        assert len(mapping) >= len(DESIGN_SPACE)

    def test_custom_model_respected(self):
        model = EnergyModel(cpu_stall_energy_nj=0.0)
        table = EnergyTable(model)
        constants = table.get(BASE_CONFIG)
        assert constants.miss_energy_nj == pytest.approx(
            model.memory.access_energy_nj(64)
            + model.cacti.fill_energy_nj(BASE_CONFIG)
        )

    def test_restricted_config_set(self):
        subset = (BASE_CONFIG,)
        table = EnergyTable(configs=subset)
        assert len(table) == 1
