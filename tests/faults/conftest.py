"""Fixtures and plan builders for the fault-injection suites."""

import pytest

from repro.faults import CoreFault, FaultPlan, PredictorFault

from tests.scenarios import (  # noqa: F401  (re-exported for tests)
    SUITE_NAMES,
    arrivals_for,
    build_oracle,
    build_small_store,
    make_simulation,
    qos_arrivals,
)


@pytest.fixture(scope="session")
def small_store():
    return build_small_store()


@pytest.fixture(scope="session")
def oracle(small_store):
    return build_oracle(small_store)


def plan_for(fault_class, seed=0):
    """An aggressive single-class plan sized for the small test runs.

    Windows are placed inside the first ~1M cycles, where a
    ``SUITE_NAMES * 6`` stream keeps every core busy, so each class
    demonstrably fires.
    """
    core_faults = ()
    predictor_faults = ()
    kwargs = {}
    if fault_class == "core_failure":
        core_faults = (
            CoreFault(kind="failure", core_index=1,
                      start_cycle=80_000, end_cycle=500_000),
            CoreFault(kind="failure", core_index=2,
                      start_cycle=250_000, end_cycle=650_000),
        )
    elif fault_class == "core_slowdown":
        core_faults = tuple(
            CoreFault(kind="slowdown", core_index=index,
                      start_cycle=50_000, end_cycle=900_000, factor=2.5)
            for index in range(4)
        )
    elif fault_class == "reconfig_pin":
        core_faults = tuple(
            CoreFault(kind="reconfig_pin", core_index=index,
                      start_cycle=0, end_cycle=1_200_000)
            for index in range(4)
        )
    elif fault_class == "predictor_outage":
        predictor_faults = (
            PredictorFault(kind="outage", start_cycle=0,
                           end_cycle=800_000),
        )
    elif fault_class == "misprediction":
        predictor_faults = (
            PredictorFault(kind="misprediction", start_cycle=0,
                           end_cycle=None, offset=1),
        )
    elif fault_class == "counter_noise":
        kwargs["counter_noise"] = 0.15
    elif fault_class == "table_eviction":
        kwargs["table_eviction_rate"] = 0.5
    elif fault_class == "table_corruption":
        kwargs["table_corruption_rate"] = 0.5
    elif fault_class == "dispatch_failure":
        kwargs.update(
            dispatch_failure_rate=0.4,
            dispatch_retry_base_cycles=1_000,
            dispatch_max_retries=3,
        )
    else:
        raise ValueError(f"unknown fault class {fault_class!r}")
    return FaultPlan(
        name=f"chaos-{fault_class}",
        seed=seed,
        core_faults=core_faults,
        predictor_faults=predictor_faults,
        **kwargs,
    )
