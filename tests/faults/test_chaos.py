"""Seeded chaos grid: every fault class survives every queue shape.

For each fault class the proposed system runs under FIFO,
non-preemptive priority and preemptive priority queues with the full
validation harness attached.  A passing cell therefore proves, under
that fault class:

* termination — the run drains (no stranded jobs, no livelock);
* energy conservation — the in-run ledger balanced at 2**-40 relative
  tolerance and zero invariant violations fired;
* trace consistency — the recorded event stream replays cleanly
  through the offline auditor (:func:`repro.validate.replay_trace`).
"""

import pytest

from repro.faults import FAULT_CLASSES
from repro.obs import JobPreempted, ListRecorder, MetricsRegistry
from repro.validate import replay_trace

from .conftest import (
    SUITE_NAMES,
    arrivals_for,
    make_simulation,
    plan_for,
    qos_arrivals,
)

#: (discipline, preemptive) — FIFO has no urgency order to preempt by.
QUEUE_SHAPES = (
    ("fifo", False),
    ("priority", False),
    ("priority", True),
)

#: Classes whose plan deterministically fires at least once on this
#: workload (misprediction can be clamped back to the same size, and a
#: corruption draw needs executions already recorded, so those two are
#: asserted to *run*, not to fire).
ALWAYS_FIRES = {
    "core_failure": "sim.faults.core_down",
    "core_slowdown": "sim.faults.slowdowns",
    "reconfig_pin": "sim.faults.reconfig_pins",
    "predictor_outage": "sim.faults.predictor_outages",
    "counter_noise": "sim.faults.counter_noise",
    "table_eviction": "sim.faults.table_evictions",
    "dispatch_failure": "sim.faults.dispatch_failures",
}


def chaos_arrivals(discipline):
    if discipline == "priority":
        return qos_arrivals(repeats=6, gap=40_000, seed=2)
    return arrivals_for(SUITE_NAMES * 6, gap=40_000)


@pytest.mark.parametrize("discipline,preemptive", QUEUE_SHAPES,
                         ids=lambda v: str(v))
@pytest.mark.parametrize("fault_class", FAULT_CLASSES)
def test_chaos_cell(fault_class, discipline, preemptive, small_store,
                    oracle):
    plan = plan_for(fault_class, seed=3)
    assert plan.classes() == (fault_class,)
    arrivals = chaos_arrivals(discipline)
    recorder = ListRecorder()
    metrics = MetricsRegistry()
    sim = make_simulation(
        "proposed", small_store, oracle,
        discipline=discipline, preemptive=preemptive,
        recorder=recorder, metrics=metrics, validate=True, faults=plan,
    )
    result = sim.run(arrivals)

    # Termination: every arrival completed.
    assert result.jobs_completed == len(arrivals)
    # Conservation: the in-run ledger and invariants never fired.
    assert metrics.counter("sim.validate.violations").value == 0
    assert metrics.counter("sim.validate.checks").value > 0
    # The plan's class demonstrably exercised its checkpoint.
    counter = ALWAYS_FIRES.get(fault_class)
    if counter is not None:
        assert metrics.counter(counter).value > 0

    # Offline audit: the recorded stream replays cleanly, with refunds
    # matching (1 - fraction_run) of the charges for *both* requeue
    # reasons (preemption and core failure share one code path).
    report = replay_trace(recorder.events)
    assert report.completions == len(arrivals)
    assert not report.unfinished_jobs

    # Scheduler preemption statistics exclude fault requeues: the
    # result counter covers reason == "preemption" only.
    preempt_events = [
        e for e in recorder.events if isinstance(e, JobPreempted)
    ]
    assert result.preemption_count == sum(
        1 for e in preempt_events if e.reason == "preemption"
    )
    assert metrics.counter("sim.faults.requeued").value == sum(
        1 for e in preempt_events if e.reason == "core_failure"
    )


@pytest.mark.parametrize("policy", ("base", "optimal", "energy_centric"))
def test_other_policies_survive_mixed_chaos(policy, small_store, oracle):
    """The non-proposed systems also drain under a mixed generated plan."""
    from repro.faults import generate_plan

    plan = generate_plan(3, density=0.6, horizon_cycles=1_200_000)
    metrics = MetricsRegistry()
    sim = make_simulation(policy, small_store, oracle,
                          metrics=metrics, validate=True, faults=plan)
    arrivals = arrivals_for(SUITE_NAMES * 6, gap=40_000)
    result = sim.run(arrivals)
    assert result.jobs_completed == len(arrivals)
    assert metrics.counter("sim.validate.violations").value == 0


#: Power-cap chaos cells: the token account must survive faults.  A
#: core failure while tokens are held must refund them through the
#: requeue path, and dispatch-failure retry backoff must never leak a
#: grant — both proven by the pool draining to idle, the ledger's
#: end-of-run token-conservation check, and a clean offline replay.
POWER_CHAOS_CLASSES = ("core_failure", "dispatch_failure")


@pytest.mark.parametrize("discipline,preemptive", QUEUE_SHAPES,
                         ids=lambda v: str(v))
@pytest.mark.parametrize("fault_class", POWER_CHAOS_CLASSES)
def test_power_cap_chaos_cell(fault_class, discipline, preemptive,
                              small_store, oracle):
    import math

    from repro.power.budget import PowerConfig
    from repro.power.dvfs import DEFAULT_DVFS_TABLE
    from repro.validate.ledger import REL_TOLERANCE

    plan = plan_for(fault_class, seed=3)
    arrivals = chaos_arrivals(discipline)
    recorder = ListRecorder()
    metrics = MetricsRegistry()
    sim = make_simulation(
        "proposed", small_store, oracle,
        discipline=discipline, preemptive=preemptive,
        recorder=recorder, metrics=metrics, validate=True, faults=plan,
        # Loose enough that the failing core is mid-dispatch when the
        # fault lands (a tighter cap throttles it idle first), tight
        # enough that the gate still prices every dispatch.
        power=PowerConfig(cap_nj=800_000.0, slack_pct=25.0,
                          dvfs=DEFAULT_DVFS_TABLE),
    )
    result = sim.run(arrivals)

    # Termination and conservation under the fault, cap included.
    assert result.jobs_completed == len(arrivals)
    assert metrics.counter("sim.validate.violations").value == 0
    assert metrics.counter(ALWAYS_FIRES[fault_class]).value > 0

    # No leaked grants: every token granted was either refunded (core
    # failure / preemption requeues) or consumed by a completion.
    pool = sim.power_pool
    assert pool.idle()
    assert pool.grants >= len(arrivals)
    if fault_class == "core_failure":
        # The failing core held running grants — they came back.
        assert metrics.counter("sim.faults.requeued").value > 0
        assert pool.refunds >= metrics.counter(
            "sim.faults.requeued"
        ).value
        assert metrics.counter("sim.power.refunds").value == pool.refunds
    ledger = sim._validator.ledger
    assert pool.grants == len(ledger.token_grants)
    assert pool.refunds == len(ledger.token_refunds)
    net = ledger.token_granted_nj - ledger.token_refunded_nj
    assert math.isclose(pool.consumed_nj, net,
                        rel_tol=REL_TOLERANCE, abs_tol=1e-9)

    # Offline audit: the trace (token grants included) replays cleanly.
    report = replay_trace(recorder.events)
    assert report.completions == len(arrivals)
    assert not report.unfinished_jobs
    assert report.token_grants == pool.grants
    assert math.isclose(report.tokens_net_nj, pool.consumed_nj,
                        rel_tol=REL_TOLERANCE, abs_tol=1e-9)
