"""CLI surface of the fault layer: faults subcommand + --faults flags."""

import json

import pytest

from repro.cli import main
from repro.faults import generate_plan, load_plan


@pytest.fixture()
def plan_path(tmp_path):
    path = tmp_path / "plan.json"
    generate_plan(3, density=0.3, horizon_cycles=1_500_000).to_json(path)
    return path


class TestFaultsSubcommand:
    def test_generate_round_trips_through_disk(self, capsys, tmp_path):
        out = tmp_path / "gen.json"
        code = main([
            "faults", "generate", "--out", str(out), "--seed", "3",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "wrote fault plan" in stdout
        assert load_plan(out) == generate_plan(3)

    def test_generate_respects_classes_and_name(self, capsys, tmp_path):
        out = tmp_path / "gen.json"
        code = main([
            "faults", "generate", "--out", str(out), "--seed", "1",
            "--classes", "core_failure", "dispatch_failure",
            "--name", "two-class",
        ])
        assert code == 0
        plan = load_plan(out)
        assert plan.name == "two-class"
        assert set(plan.classes()) == {"core_failure", "dispatch_failure"}

    def test_describe_prints_plan(self, capsys, plan_path):
        assert main(["faults", "describe", str(plan_path)]) == 0
        out = capsys.readouterr().out
        plan = load_plan(plan_path)
        assert plan.name in out

    def test_describe_needs_path(self, capsys):
        assert main(["faults", "describe"]) == 2
        assert "describe needs a plan" in capsys.readouterr().err

    def test_describe_missing_file(self, capsys, tmp_path):
        code = main(["faults", "describe", str(tmp_path / "nope.json")])
        assert code == 2

    def test_generate_rejects_positional_path(self, capsys, tmp_path):
        code = main(["faults", "generate", str(tmp_path / "x.json")])
        assert code == 2
        assert "use --out" in capsys.readouterr().err

    def test_generate_rejects_bad_density(self, capsys):
        assert main(["faults", "generate", "--density", "2.0"]) == 2
        assert "density" in capsys.readouterr().err

    def test_generate_rejects_unknown_classes(self, capsys):
        code = main(["faults", "generate", "--classes", "gremlins"])
        assert code == 2
        assert "unknown fault classes" in capsys.readouterr().err


class TestCompareWithFaults:
    def test_compare_injects_and_traces_validate(self, capsys, tmp_path,
                                                 plan_path):
        trace_template = tmp_path / "run.jsonl"
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle",
            "--faults", str(plan_path), "--validate",
            "--trace", str(trace_template),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injecting fault plan" in out
        assert "Figure 6" in out

        # Every per-policy chaos trace replays cleanly offline.
        from repro.core.policies import POLICY_NAMES

        for name in POLICY_NAMES:
            trace_path = tmp_path / f"run.{name}.jsonl"
            assert trace_path.exists()
            assert main(["validate", str(trace_path)]) == 0
            assert ": OK" in capsys.readouterr().out

    def test_compare_missing_plan_file(self, capsys, tmp_path):
        code = main([
            "compare", "--jobs", "40", "--predictor", "oracle",
            "--faults", str(tmp_path / "nope.json"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCampaignWithFaults:
    def test_campaign_adds_fault_axis(self, capsys, tmp_path, plan_path):
        metrics_path = tmp_path / "cells.json"
        code = main([
            "campaign", "--policies", "base", "--seeds", "0",
            "--jobs", "40", "--workers", "1",
            "--faults", str(plan_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        plan = load_plan(plan_path)
        # The clean cell and the faulted cell are both present.
        assert f"base+{plan.name}" in out
        cells = json.loads(metrics_path.read_text())
        assert sorted((c["faults"] for c in cells),
                      key=lambda v: (v is not None, v)) == [None, plan.name]

    def test_campaign_missing_plan_file(self, capsys, tmp_path):
        code = main([
            "campaign", "--policies", "base", "--seeds", "0",
            "--jobs", "40", "--workers", "1",
            "--faults", str(tmp_path / "nope.json"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err
