"""Chaos cells for task-graph runs: core failure mid-graph.

The DAG extension of the chaos grid: a core-failure plan knocks cores
out while precedence-gated graphs are in flight, under the full
validation harness, for each deadline-aware policy plus the FIFO
baseline.  A passing cell proves the failure requeues the occupant
without deadlocking its descendants:

* termination — every task of every graph completes (descendants of a
  requeued task are still released);
* precedence — no task started before its last predecessor completed;
* conservation — the in-run ledger balanced and the recorded trace
  replays cleanly through the offline auditor.
"""

import pytest

from repro.obs import ListRecorder, MetricsRegistry
from repro.validate import replay_trace

from tests.scenarios import dag_test_graphs

from .conftest import make_simulation, plan_for

#: The fault windows of ``plan_for("core_failure")`` (cores 1 and 2
#: down inside the first ~650k cycles) land mid-graph on this set.
GRAPHS = dict(seed=11, count=8, edge_density=0.6, tasks_min=3,
              tasks_max=6, mean_interarrival_cycles=60_000)


@pytest.mark.parametrize("policy", ["base", "edf", "heft"])
def test_core_failure_mid_graph(policy, small_store, oracle):
    from repro.core.system import paper_system

    plan = plan_for("core_failure", seed=3)
    graphs = dag_test_graphs(**GRAPHS)
    recorder = ListRecorder()
    metrics = MetricsRegistry()
    sim = make_simulation(
        policy, small_store, oracle, system=paper_system(),
        recorder=recorder, metrics=metrics, validate=True, faults=plan,
    )
    result = sim.run_dags(graphs)

    # Termination: every task of every graph completed — a failure
    # that requeued an occupant did not strand its descendants.
    total_tasks = sum(g.task_count for g in graphs)
    assert result.jobs_completed == total_tasks
    # The failure demonstrably fired while work was in flight.
    assert metrics.counter("sim.faults.core_down").value > 0

    # Precedence survived the requeue: task starts still respect every
    # edge.
    records = {r.job_id: r for r in result.jobs}
    job_id = 0
    for graph in graphs:
        base = job_id
        index_of = {t.task_id: base + i
                    for i, t in enumerate(graph.tasks)}
        for i, task in enumerate(graph.tasks):
            for pred in task.predecessors:
                assert records[base + i].start_cycle >= \
                    records[index_of[pred]].completion_cycle
        job_id += graph.task_count

    # Conservation: in-run invariants never fired and the trace
    # replays through the offline auditor.
    assert metrics.counter("sim.validate.violations").value == 0
    assert metrics.counter("sim.validate.checks").value > 0
    report = replay_trace(recorder.events)
    assert report.completions == total_tasks
    assert not report.unfinished_jobs


def test_core_failure_does_not_change_release_count(small_store, oracle):
    """Faults shift timing, not structure: the same tasks are released."""
    from repro.core.system import paper_system
    from repro.obs import TaskReady

    graphs = dag_test_graphs(**GRAPHS)
    gated = sum(1 for g in graphs for t in g.tasks if t.predecessors)
    for faults in (None, plan_for("core_failure", seed=3)):
        recorder = ListRecorder()
        sim = make_simulation(
            "edf", small_store, oracle, system=paper_system(),
            recorder=recorder, validate=True, faults=faults,
        )
        sim.run_dags(graphs)
        releases = sum(
            1 for e in recorder.events if isinstance(e, TaskReady)
        )
        assert releases == gated
