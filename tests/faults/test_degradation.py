"""Targeted degradation-path tests, one fault mechanism at a time."""

import pytest

from repro.faults import CoreFault, FaultPlan, PredictorFault
from repro.obs import (
    ConfigInstalled,
    CoreDown,
    CoreUp,
    FallbackDecision,
    FaultInjected,
    JobPreempted,
    ListRecorder,
    MetricsRegistry,
    SizePredicted,
)
from repro.validate import replay_trace

from .conftest import SUITE_NAMES, arrivals_for, make_simulation, qos_arrivals


def all_cores_down(start, end):
    return tuple(
        CoreFault(kind="failure", core_index=index,
                  start_cycle=start, end_cycle=end)
        for index in range(4)
    )


class TestCoreFailure:
    def test_occupant_requeued_with_refund(self, small_store, oracle):
        """A failing core requeues its job; work resumes after recovery.

        Cores 1-3 go down at cycle 0 (after the dispatch: ARRIVAL
        events order before GENERIC at equal timestamps), core 0 — the
        one the base policy picked — at 10k, so the single job is
        requeued exactly once and nothing can run until recovery.
        """
        plan = FaultPlan(
            name="fail-all",
            core_faults=(
                CoreFault(kind="failure", core_index=0,
                          start_cycle=10_000, end_cycle=400_000),
            ) + tuple(
                CoreFault(kind="failure", core_index=index,
                          start_cycle=0, end_cycle=400_000)
                for index in range(1, 4)
            ),
        )
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation("base", small_store, oracle,
                              recorder=recorder, metrics=metrics,
                              validate=True, faults=plan)
        result = sim.run(arrivals_for(SUITE_NAMES[:1]))
        assert result.jobs_completed == 1

        downs = [e for e in recorder.events if isinstance(e, CoreDown)]
        ups = [e for e in recorder.events if isinstance(e, CoreUp)]
        assert len(downs) == 4 and len(ups) == 4
        [requeue] = [
            e for e in recorder.events if isinstance(e, JobPreempted)
        ]
        assert requeue.reason == "core_failure"
        assert 0.0 <= requeue.fraction_run < 1.0
        assert requeue.refunded_dynamic_nj > 0.0
        assert metrics.counter("sim.faults.requeued").value == 1
        # The interruption is a fault statistic, not a preemption.
        assert result.preemption_count == 0
        # The job could only finish after every core recovered.
        [record] = result.jobs
        assert record.completion_cycle > 400_000
        replay_trace(recorder.events)

    def test_failed_core_is_not_idle(self, small_store, oracle):
        sim = make_simulation("base", small_store, oracle)
        core = sim.cores[0]
        assert core.is_idle(0)
        core.failed = True
        assert not core.is_idle(0)

    def test_overlapping_windows_nest(self, small_store, oracle):
        """Two overlapping failure windows produce one down/up edge pair."""
        plan = FaultPlan(core_faults=(
            CoreFault(kind="failure", core_index=1,
                      start_cycle=10_000, end_cycle=300_000),
            CoreFault(kind="failure", core_index=1,
                      start_cycle=50_000, end_cycle=200_000),
        ))
        recorder = ListRecorder()
        sim = make_simulation("base", small_store, oracle,
                              recorder=recorder, validate=True,
                              faults=plan)
        sim.run(arrivals_for(SUITE_NAMES * 2, gap=60_000))
        downs = [e for e in recorder.events if isinstance(e, CoreDown)]
        ups = [e for e in recorder.events if isinstance(e, CoreUp)]
        assert [e.cycle for e in downs] == [10_000]
        assert [e.cycle for e in ups] == [300_000]


class TestPredictorOutage:
    def test_falls_back_to_base_size(self, small_store, oracle):
        from repro.cache import BASE_CONFIG

        plan = FaultPlan(predictor_faults=(
            PredictorFault(kind="outage", start_cycle=0, end_cycle=None),
        ))
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation("proposed", small_store, oracle,
                              recorder=recorder, metrics=metrics,
                              validate=True, faults=plan)
        result = sim.run(arrivals_for(SUITE_NAMES * 3, gap=120_000))
        assert result.jobs_completed == len(SUITE_NAMES) * 3

        fallbacks = [
            e for e in recorder.events
            if isinstance(e, FallbackDecision)
            and e.reason == "predictor_outage"
        ]
        # One fallback per profiling run, and no real prediction made.
        assert len(fallbacks) == len(SUITE_NAMES)
        assert not any(
            isinstance(e, SizePredicted) for e in recorder.events
        )
        assert metrics.counter(
            "sim.faults.predictor_outages"
        ).value == len(SUITE_NAMES)
        for name in SUITE_NAMES:
            assert sim.table.profile(name).predicted_size_kb == (
                BASE_CONFIG.size_kb
            )


class TestMisprediction:
    def test_spike_shifts_predictions_along_ladder(self, small_store,
                                                   oracle):
        plan = FaultPlan(seed=1, predictor_faults=(
            PredictorFault(kind="misprediction", start_cycle=0,
                           end_cycle=None, offset=2),
        ))
        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle,
                              recorder=recorder, validate=True,
                              faults=plan)
        result = sim.run(arrivals_for(SUITE_NAMES * 3, gap=120_000))
        assert result.jobs_completed == len(SUITE_NAMES) * 3
        shifted = [
            e for e in recorder.events
            if isinstance(e, FaultInjected) and e.fault == "misprediction"
        ]
        # Most predictions shift (a draw at the ladder edge can clamp
        # back to the same size, which injects nothing).
        assert 1 <= len(shifted) <= len(SUITE_NAMES)
        predictions = [
            e for e in recorder.events if isinstance(e, SizePredicted)
        ]
        assert any(
            e.size_kb != e.best_size_kb for e in predictions
        )


class TestDispatchFailure:
    def test_backoff_then_surrender(self, small_store, oracle):
        """Rate 1.0 exhausts every retry, then any idle core is taken."""
        plan = FaultPlan(
            dispatch_failure_rate=1.0,
            dispatch_retry_base_cycles=1_000,
            dispatch_retry_cap_cycles=4_000,
            dispatch_max_retries=2,
        )
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation("base", small_store, oracle,
                              recorder=recorder, metrics=metrics,
                              validate=True, faults=plan)
        result = sim.run(arrivals_for(SUITE_NAMES[:1]))
        assert result.jobs_completed == 1
        # Exactly max_retries failures, then one surrender dispatch.
        assert metrics.counter("sim.faults.dispatch_failures").value == 2
        assert metrics.counter("sim.faults.surrenders").value == 1
        [surrender] = [
            e for e in recorder.events
            if isinstance(e, FallbackDecision)
            and e.reason == "retries_exhausted"
        ]
        failures = [
            e for e in recorder.events
            if isinstance(e, FaultInjected)
            and e.fault == "dispatch_failure"
        ]
        # Capped exponential backoff: 1000 then 2000 cycles.
        assert [e.cycle for e in failures] == [0, 1_000]
        assert surrender.cycle == 3_000

    def test_backoff_respects_cap(self, small_store, oracle):
        plan = FaultPlan(
            dispatch_failure_rate=1.0,
            dispatch_retry_base_cycles=1_000,
            dispatch_retry_cap_cycles=2_500,
            dispatch_max_retries=4,
        )
        recorder = ListRecorder()
        sim = make_simulation("base", small_store, oracle,
                              recorder=recorder, validate=True,
                              faults=plan)
        sim.run(arrivals_for(SUITE_NAMES[:1]))
        failures = [
            e for e in recorder.events
            if isinstance(e, FaultInjected)
            and e.fault == "dispatch_failure"
        ]
        # Delays 1000, 2000, then capped at 2500 twice.
        assert [e.cycle for e in failures] == [0, 1_000, 3_000, 5_500]


class TestReconfigPin:
    def test_pinned_core_installs_nothing(self, small_store, oracle):
        plan = FaultPlan(core_faults=tuple(
            CoreFault(kind="reconfig_pin", core_index=index,
                      start_cycle=0, end_cycle=None)
            for index in range(4)
        ))
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation("proposed", small_store, oracle,
                              recorder=recorder, metrics=metrics,
                              validate=True, faults=plan)
        result = sim.run(arrivals_for(SUITE_NAMES * 4, gap=60_000))
        assert result.jobs_completed == len(SUITE_NAMES) * 4
        assert metrics.counter("sim.faults.reconfig_pins").value > 0
        # Every dispatch was pinned to the reset configuration, so the
        # tuner never switched a cache.
        assert not any(
            isinstance(e, ConfigInstalled) for e in recorder.events
        )
        for event in recorder.events:
            if isinstance(event, FaultInjected):
                assert event.fault == "reconfig_pin"


class TestTableEviction:
    def test_evicted_benchmarks_reprofile(self, small_store, oracle):
        from repro.obs import ProfilingCompleted

        plan = FaultPlan(seed=5, table_eviction_rate=1.0)
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation("proposed", small_store, oracle,
                              recorder=recorder, metrics=metrics,
                              validate=True, faults=plan)
        result = sim.run(arrivals_for(SUITE_NAMES * 5, gap=80_000))
        assert result.jobs_completed == len(SUITE_NAMES) * 5
        assert metrics.counter("sim.faults.table_evictions").value > 0
        # Counter evictions force re-profiling: more profiling runs
        # than distinct benchmarks.
        profilings = [
            e for e in recorder.events
            if isinstance(e, ProfilingCompleted)
        ]
        assert len(profilings) > len(SUITE_NAMES)
        replay_trace(recorder.events)


class TestDeadlockBreaker:
    def test_forced_dispatch_rescues_stalled_job(self, small_store,
                                                 oracle):
        """energy_centric stalls forever for a dead best core; the
        breaker hands the job to an idle up core instead."""
        probe = make_simulation("energy_centric", small_store, oracle)
        # A benchmark whose best core is not a profiling core, so
        # profiling still happens and the stall is purely the policy's.
        chosen = None
        for name in SUITE_NAMES:
            size = oracle.predict_size_kb(
                name, small_store.counters(name)
            )
            targets = [
                c.index for c in probe.cores
                if c.size_kb == size and not c.spec.profiling
            ]
            if targets and len(targets) < len(probe.cores):
                chosen = (name, targets)
                break
        assert chosen is not None
        name, targets = chosen
        plan = FaultPlan(core_faults=tuple(
            CoreFault(kind="failure", core_index=index, start_cycle=0)
            for index in targets
        ))
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation("energy_centric", small_store, oracle,
                              recorder=recorder, metrics=metrics,
                              validate=True, faults=plan)
        # The first arrival profiles (its profiling run *is* its
        # execution); the second is already profiled, so the policy
        # stalls it forever on the dead best core — until the breaker.
        result = sim.run(arrivals_for([name, name], gap=600_000))
        assert result.jobs_completed == 2
        assert metrics.counter("sim.faults.forced_dispatches").value == 1
        [forced] = [
            e for e in recorder.events
            if isinstance(e, FallbackDecision)
            and e.reason == "forced_dispatch"
        ]
        assert forced.core_index not in targets

    def test_all_cores_down_forever_aborts_loudly(self, small_store,
                                                  oracle):
        plan = FaultPlan(
            name="blackout",
            core_faults=tuple(
                CoreFault(kind="failure", core_index=index, start_cycle=0)
                for index in range(4)
            ),
        )
        sim = make_simulation("base", small_store, oracle, faults=plan)
        with pytest.raises(RuntimeError, match="every core down"):
            sim.run(arrivals_for(SUITE_NAMES[:1]))

    def test_plan_targeting_missing_core_rejected(self, small_store,
                                                  oracle):
        plan = FaultPlan(core_faults=(
            CoreFault(kind="failure", core_index=9, start_cycle=0),
        ))
        with pytest.raises(ValueError, match="targets core 9"):
            make_simulation("base", small_store, oracle, faults=plan)


class TestRequeueRegression:
    def test_preempt_then_fail_shares_one_requeue_path(self, small_store,
                                                       oracle):
        """Regression: a stream that both preempts and loses cores keeps
        consistent waiting/refund accounting across the two reasons.

        Historically the two interruption kinds risked diverging
        (double-counted preemptions, missed ``last_enqueue_cycle``
        resets); the shared ``_requeue_from_core`` path plus the replay
        audit pins them together.
        """
        plan = FaultPlan(
            name="preempt-and-fail",
            core_faults=(
                CoreFault(kind="failure", core_index=1,
                          start_cycle=120_000, end_cycle=600_000),
                CoreFault(kind="failure", core_index=3,
                          start_cycle=200_000, end_cycle=700_000),
            ),
        )
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = make_simulation(
            "proposed", small_store, oracle,
            discipline="priority", preemptive=True,
            recorder=recorder, metrics=metrics, validate=True,
            faults=plan,
        )
        arrivals = qos_arrivals(repeats=8, gap=25_000, seed=4)
        result = sim.run(arrivals)
        assert result.jobs_completed == len(arrivals)

        requeues = [
            e for e in recorder.events if isinstance(e, JobPreempted)
        ]
        reasons = {e.reason for e in requeues}
        # The combined scenario really exercised both interruption
        # kinds in one run.
        assert reasons == {"preemption", "core_failure"}
        # Identical accounting invariants for both reasons...
        for event in requeues:
            assert 0.0 <= event.fraction_run < 1.0
            assert event.refunded_dynamic_nj >= 0.0
            assert event.refunded_static_nj >= 0.0
        # ...and disjoint statistics: scheduler preemptions vs fault
        # requeues partition the JobPreempted stream.
        by_reason = {
            reason: sum(1 for e in requeues if e.reason == reason)
            for reason in reasons
        }
        assert result.preemption_count == by_reason["preemption"]
        assert metrics.counter("sim.faults.requeued").value == (
            by_reason["core_failure"]
        )
        # The offline auditor checks every refund is pro-rata and every
        # waiting_cycles non-negative, for both reasons at once.
        report = replay_trace(recorder.events)
        assert report.preemptions == len(requeues)
        assert not report.unfinished_jobs
        assert metrics.counter("sim.validate.violations").value == 0
