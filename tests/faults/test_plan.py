"""Fault-plan data model: validation, round-trips, generation."""

import pytest

from repro.faults import (
    CORE_FAULT_KINDS,
    FAULT_CLASSES,
    CoreFault,
    FaultPlan,
    PredictorFault,
    generate_plan,
    load_plan,
)


class TestCoreFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown core fault kind"):
            CoreFault(kind="meltdown", core_index=0, start_cycle=0)

    def test_rejects_negative_core(self):
        with pytest.raises(ValueError, match="core_index"):
            CoreFault(kind="failure", core_index=-1, start_cycle=0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="end_cycle"):
            CoreFault(kind="failure", core_index=0,
                      start_cycle=100, end_cycle=100)

    def test_rejects_speedup_factor(self):
        with pytest.raises(ValueError, match="slowdown factor"):
            CoreFault(kind="slowdown", core_index=0, start_cycle=0,
                      factor=0.5)

    def test_active_window_semantics(self):
        fault = CoreFault(kind="failure", core_index=0,
                          start_cycle=10, end_cycle=20)
        assert not fault.active(9)
        assert fault.active(10)
        assert fault.active(19)
        assert not fault.active(20)

    def test_open_window_lasts_forever(self):
        fault = CoreFault(kind="failure", core_index=0, start_cycle=10)
        assert fault.active(10**12)


class TestPredictorFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown predictor fault"):
            PredictorFault(kind="lies", start_cycle=0)

    def test_rejects_zero_offset(self):
        with pytest.raises(ValueError, match="offset"):
            PredictorFault(kind="misprediction", start_cycle=0, offset=0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.classes() == ()
        assert "injects nothing" in plan.describe()

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="dispatch_failure_rate"):
            FaultPlan(dispatch_failure_rate=1.5)
        with pytest.raises(ValueError, match="table_eviction_rate"):
            FaultPlan(table_eviction_rate=-0.1)
        with pytest.raises(ValueError, match="counter_noise"):
            FaultPlan(counter_noise=-1.0)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ValueError, match="base delay"):
            FaultPlan(dispatch_retry_base_cycles=5_000,
                      dispatch_retry_cap_cycles=1_000)

    def test_sequences_normalised_to_tuples(self):
        plan = FaultPlan(core_faults=[
            CoreFault(kind="failure", core_index=0, start_cycle=0)
        ])
        assert isinstance(plan.core_faults, tuple)
        hash(plan)  # stays hashable for frozen replication specs

    def test_classes_reports_whats_scheduled(self):
        plan = FaultPlan(
            core_faults=(
                CoreFault(kind="failure", core_index=0, start_cycle=0),
                CoreFault(kind="slowdown", core_index=1, start_cycle=0,
                          factor=2.0),
            ),
            predictor_faults=(
                PredictorFault(kind="outage", start_cycle=0),
            ),
            dispatch_failure_rate=0.1,
        )
        assert plan.classes() == (
            "core_failure", "core_slowdown", "predictor_outage",
            "dispatch_failure",
        )

    def test_rng_streams_are_deterministic_and_independent(self):
        plan = FaultPlan(seed=9)
        a1 = [plan.rng("dispatch").random() for _ in range(3)]
        a2 = [plan.rng("dispatch").random() for _ in range(3)]
        b = [plan.rng("counters").random() for _ in range(3)]
        assert a1 == a2
        assert a1 != b

    def test_round_trip_via_dict(self):
        plan = FaultPlan(
            name="rt", seed=4,
            core_faults=(
                CoreFault(kind="slowdown", core_index=2, start_cycle=10,
                          end_cycle=99, factor=1.5),
            ),
            predictor_faults=(
                PredictorFault(kind="misprediction", start_cycle=5,
                               offset=2),
            ),
            counter_noise=0.05,
            dispatch_failure_rate=0.2,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_via_json(self, tmp_path):
        plan = FaultPlan(
            name="disk", seed=1,
            core_faults=(
                CoreFault(kind="failure", core_index=0, start_cycle=0,
                          end_cycle=10),
            ),
            table_eviction_rate=0.3,
        )
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert load_plan(path) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_dict({"name": "x", "gremlins": True})

    def test_load_plan_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_plan(path)


class TestGeneratePlan:
    def test_same_seed_same_plan(self):
        assert generate_plan(3) == generate_plan(3)

    def test_different_seeds_differ(self):
        assert generate_plan(3) != generate_plan(4)

    def test_covers_requested_classes(self):
        plan = generate_plan(0, density=0.5)
        assert set(plan.classes()) == set(FAULT_CLASSES)
        restricted = generate_plan(
            0, classes=("core_failure", "dispatch_failure")
        )
        assert set(restricted.classes()) == {
            "core_failure", "dispatch_failure"
        }

    def test_failure_windows_are_finite(self):
        plan = generate_plan(5, density=1.0)
        for fault in plan.core_faults:
            if fault.kind == "failure":
                assert fault.end_cycle is not None

    def test_respects_core_count(self):
        plan = generate_plan(2, cores=2)
        assert all(f.core_index < 2 for f in plan.core_faults)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="density"):
            generate_plan(0, density=2.0)
        with pytest.raises(ValueError, match="unknown fault classes"):
            generate_plan(0, classes=("gremlins",))

    def test_round_trips_through_json(self, tmp_path):
        plan = generate_plan(11, density=0.75)
        path = tmp_path / "gen.json"
        plan.to_json(path)
        assert load_plan(path) == plan

    def test_kind_constants(self):
        assert set(CORE_FAULT_KINDS) == {
            "failure", "slowdown", "reconfig_pin"
        }
        assert len(FAULT_CLASSES) == 9
