"""Property-based guarantees of the fault layer (hypothesis).

Three contracts the tentpole rests on:

* attaching an *empty* plan changes nothing — bit-identical
  :class:`SimulationResult` to a run with no plan at all;
* fault injection only ever costs: adding a core-failure window never
  reduces total waiting or total energy;
* determinism — the same (plan, workload, policy) triple yields a
  byte-identical event stream on every run.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.faults import CoreFault, FaultPlan, generate_plan
from repro.obs import ListRecorder

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


class TestEmptyPlanIdentity:
    @given(
        names=st.lists(st.sampled_from(SUITE_NAMES), min_size=1,
                       max_size=10),
        gap=st.integers(20_000, 150_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_empty_plan_is_bit_identical(self, small_store, oracle,
                                         names, gap):
        arrivals = arrivals_for(names, gap=gap)
        bare = make_simulation(
            "proposed", small_store, oracle
        ).run(arrivals)
        with_plan = make_simulation(
            "proposed", small_store, oracle, faults=FaultPlan()
        ).run(arrivals)
        assert dataclasses.asdict(bare) == dataclasses.asdict(with_plan)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_empty_plan_emits_no_fault_events(self, small_store, oracle,
                                              seed):
        recorder = ListRecorder()
        sim = make_simulation(
            "proposed", small_store, oracle,
            recorder=recorder, faults=FaultPlan(seed=seed),
        )
        sim.run(arrivals_for(SUITE_NAMES, gap=100_000))
        fault_kinds = {
            "fault_injected", "core_down", "core_up", "fallback_decision"
        }
        assert not [e for e in recorder.events if e.kind in fault_kinds]


class TestFaultsOnlyCost:
    @given(
        start=st.integers(0, 400_000),
        length=st.integers(20_000, 400_000),
        core=st.integers(0, 3),
    )
    @settings(max_examples=8, deadline=None)
    def test_failure_window_never_reduces_wait_or_energy(
        self, small_store, oracle, start, length, core
    ):
        arrivals = arrivals_for(SUITE_NAMES * 3, gap=50_000)
        clean = make_simulation(
            "base", small_store, oracle
        ).run(arrivals)
        plan = FaultPlan(core_faults=(
            CoreFault(kind="failure", core_index=core,
                      start_cycle=start, end_cycle=start + length),
        ))
        faulted = make_simulation(
            "base", small_store, oracle, faults=plan
        ).run(arrivals)
        assert faulted.jobs_completed == clean.jobs_completed
        clean_wait = sum(r.waiting_cycles for r in clean.jobs)
        faulted_wait = sum(r.waiting_cycles for r in faulted.jobs)
        assert faulted_wait >= clean_wait
        # Work is conserved pro-rata across requeues, so only idle
        # energy can move — and a longer makespan only adds to it.
        assert faulted.total_energy_nj >= (
            clean.total_energy_nj * (1.0 - 1e-9)
        )


class TestDeterminism:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_same_seed_byte_identical_event_stream(self, small_store,
                                                   oracle, seed):
        plan = generate_plan(seed, density=0.5,
                             horizon_cycles=1_000_000)
        arrivals = arrivals_for(SUITE_NAMES * 4, gap=40_000)

        def run():
            recorder = ListRecorder()
            sim = make_simulation(
                "proposed", small_store, oracle,
                recorder=recorder, validate=True, faults=plan,
            )
            result = sim.run(arrivals)
            return result, recorder.events

        result_a, events_a = run()
        result_b, events_b = run()
        # Frozen dataclass equality is field-exact, so this is a
        # byte-identity check on the whole stream, faults included.
        assert events_a == events_b
        assert dataclasses.asdict(result_a) == dataclasses.asdict(
            result_b
        )
