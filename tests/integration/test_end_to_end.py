"""End-to-end integration tests: the full pipeline at reduced scale.

These tests run the real four-system comparison (characterisation →
predictor → scheduler simulation) with the oracle predictor and a small
arrival stream, asserting the paper's qualitative results hold.
"""

import pytest

from repro.analysis import normalize_results
from repro.core.predictor import OraclePredictor
from repro.experiment import default_store, run_four_systems
from repro.workloads.arrivals import uniform_arrivals
from repro.workloads.eembc import eembc_suite


@pytest.fixture(scope="module")
def results():
    store = default_store(cache_path=None)
    predictor = OraclePredictor(store)
    arrivals = uniform_arrivals(
        eembc_suite(), count=600, seed=1, mean_interarrival_cycles=56_000
    )
    return run_four_systems(arrivals, store, predictor)


class TestFourSystems:
    def test_all_systems_complete_all_jobs(self, results):
        for result in results.values():
            assert result.jobs_completed == 600

    def test_proposed_beats_base_substantially(self, results):
        # Headline claim: large total-energy reduction vs the base system.
        ratio = (
            results["proposed"].total_energy_nj
            / results["base"].total_energy_nj
        )
        assert ratio < 0.75

    def test_proposed_beats_energy_centric(self, results):
        # The energy-advantageous decision beats always-stall (§VI).
        assert (
            results["proposed"].total_energy_nj
            < results["energy_centric"].total_energy_nj
        )

    def test_optimal_beats_base(self, results):
        assert (
            results["optimal"].total_energy_nj
            < results["base"].total_energy_nj
        )

    def test_energy_centric_has_lowest_dynamic(self, results):
        # Always running the best configuration on the best core gives the
        # lowest dynamic energy of all systems (paper Fig. 6).
        ec = results["energy_centric"].dynamic_energy_nj
        for name, result in results.items():
            if name != "energy_centric":
                assert ec <= result.dynamic_energy_nj * 1.001

    def test_optimal_dynamic_above_ann_systems(self, results):
        # Exhaustive search + never-stall placement costs dynamic energy.
        assert (
            results["optimal"].dynamic_energy_nj
            > results["energy_centric"].dynamic_energy_nj
        )

    def test_base_never_stalls_or_tunes(self, results):
        base = results["base"]
        assert base.tuning_executions == 0
        assert base.profiling_executions == 0
        assert base.stall_decisions == 0

    def test_proposed_makes_both_decisions(self, results):
        proposed = results["proposed"]
        assert proposed.stall_decisions > 0
        assert proposed.non_best_decisions > 0

    def test_normalization_keys(self, results):
        normalized = normalize_results(results, "base")
        assert set(normalized) == set(results)
        for ratios in normalized.values():
            assert set(ratios) == {
                "idle_energy", "dynamic_energy", "total_energy", "cycles"
            }


class TestTuningEfficiencyClaim:
    def test_heuristic_explores_far_fewer_than_exhaustive(self, results):
        """§VI: no benchmark explored more than six configurations (we
        bound per-core-size exploration by the heuristic's maximum of 5,
        with ≤ 12 total across the three sizes including profiling)."""
        proposed = results["proposed"]
        optimal = results["optimal"]
        # The heuristic explores at most 3 + 4 + 5 configurations across
        # the three core sizes; the base-configuration profiling record
        # adds one more table entry.
        for name, count in proposed.exploration_counts.items():
            assert count <= 13
        # The optimal system explores everything eventually.
        assert max(optimal.exploration_counts.values()) > max(
            proposed.exploration_counts.values()
        )


class TestProfilingOverheadClaim:
    def test_profiling_overhead_below_half_percent(self, results):
        """§VI: profiling introduced less than 0.5% energy overhead."""
        proposed = results["proposed"]
        assert (
            proposed.profiling_overhead_nj
            < 0.005 * proposed.total_energy_nj
        )
