"""Smoke tests keeping the example scripts runnable.

Only the fast examples run here (the paper-scale ones are covered by
the benchmark harness and the CLI tests); each must exit cleanly and
print its expected landmarks.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False,
    )


class TestFastExamples:
    def test_cache_design_space(self):
        proc = run_example("cache_design_space.py", "puwmod")
        assert proc.returncode == 0, proc.stderr
        assert "tuning heuristic" in proc.stdout
        assert "2KB_1W_16B" in proc.stdout

    def test_cache_design_space_rejects_unknown(self):
        proc = run_example("cache_design_space.py", "doom")
        assert proc.returncode != 0

    def test_custom_benchmark(self):
        proc = run_example("custom_benchmark.py")
        assert proc.returncode == 0, proc.stderr
        assert "jsonparse" in proc.stdout
        assert "predicted best size" in proc.stdout

    def test_locality_analysis(self):
        proc = run_example("locality_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "miss ratio @ 2KB" in proc.stdout
        assert "pntrch" in proc.stdout

    def test_trace_scheduling(self):
        proc = run_example("trace_scheduling.py")
        assert proc.returncode == 0, proc.stderr
        assert "decision breakdown" in proc.stdout
        assert "per-core timeline" in proc.stdout
        assert "metrics registry all agree" in proc.stdout

    def test_compare_systems_small(self):
        proc = run_example("compare_systems.py", "200", "0", timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "Figure 6" in proc.stdout
        assert "Figure 7" in proc.stdout
