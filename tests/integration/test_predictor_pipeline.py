"""Integration test of the full ANN pipeline (paper §IV.C/D).

Builds a reduced variant-expanded dataset, trains a small bagged
ensemble, and asserts the paper's prediction-quality claims at reduced
scale: high accuracy on represented families and near-zero energy
degradation on the canonical benchmarks.
"""

import numpy as np
import pytest

from repro.ann.metrics import class_accuracy
from repro.ann.training import TrainingConfig
from repro.characterization.dataset import build_dataset
from repro.core.predictor import AnnPredictor
from repro.workloads.eembc import eembc_suite


@pytest.fixture(scope="module")
def pipeline():
    # Same scale as repro.experiment.default_predictor; reuses the
    # on-disk characterisation cache so repeat test runs are fast.
    from repro.experiment import default_dataset

    dataset, store = default_dataset(12, seed=0)
    split = dataset.split(seed=0, by_family=False)
    predictor = AnnPredictor(n_members=10, seed=0)
    predictor.fit(
        split.train,
        val_dataset=split.val,
        config=TrainingConfig(epochs=200, seed=0),
    )
    return dataset, store, split, predictor


class TestPredictionQuality:
    def test_test_set_accuracy(self, pipeline):
        _, _, split, predictor = pipeline
        pred = predictor.predict_sizes_kb(split.test.features)
        assert class_accuracy(pred, split.test.labels_kb) >= 0.7

    def test_canonical_energy_degradation_below_paper_bound(self, pipeline):
        """§IV.D: predicted best cache sizes degraded energy by < 2 %."""
        _, store, _, predictor = pipeline
        degradations = []
        for spec in eembc_suite():
            char = store.get(spec.name)
            predicted = predictor.predict_size_kb(spec.name, char.counters)
            best_at_predicted = char.best_config_for_size(predicted)
            degradations.append(char.energy_degradation(best_at_predicted))
        assert float(np.mean(degradations)) < 0.02

    def test_predictions_legal(self, pipeline):
        dataset, _, _, predictor = pipeline
        pred = predictor.predict_sizes_kb(dataset.features)
        assert set(np.unique(pred)) <= {2, 4, 8}

    def test_dataset_labels_diverse(self, pipeline):
        dataset, _, _, _ = pipeline
        assert len(set(dataset.labels_kb)) == 3

    def test_bagging_members_disagree_somewhere(self, pipeline):
        """Random init (§IV.D) must give a genuinely diverse ensemble."""
        dataset, _, _, predictor = pipeline
        x = predictor.scaler.transform(predictor._pre(dataset.features))
        members = predictor.ensemble.member_predictions(x)
        assert members.std(axis=0).max() > 0.0
