"""Integration tests on the characterised EEMBC-analogue suite.

The heterogeneous system only pays off if the suite is diverse in best
cache size — these tests pin that property, plus cross-module
consistency between the store, counters and energy model.
"""

import pytest

from repro.cache.config import BASE_CONFIG
from repro.experiment import default_store
from repro.workloads.eembc import EEMBC_NAMES, eembc_suite


@pytest.fixture(scope="module")
def store():
    return default_store(cache_path=None)


class TestBestSizeDiversity:
    def test_every_size_is_best_for_someone(self, store):
        best_sizes = {store.best_size_kb(name) for name in EEMBC_NAMES}
        assert best_sizes == {2, 4, 8}

    def test_no_size_dominates_completely(self, store):
        from collections import Counter

        counts = Counter(store.best_size_kb(name) for name in EEMBC_NAMES)
        assert max(counts.values()) <= 10

    def test_base_config_never_best(self, store):
        """The paper's premise: the pessimistic base configuration is a
        safe profiling choice but optimal for nobody."""
        for name in EEMBC_NAMES:
            best = store.best_config(name)
            assert best != BASE_CONFIG

    def test_meaningful_savings_available(self, store):
        """Specialisation must offer real energy savings per benchmark."""
        for name in EEMBC_NAMES:
            char = store.get(name)
            base = char.result(BASE_CONFIG).total_energy_nj
            best = char.result(char.best_config()).total_energy_nj
            assert best < base * 0.95  # at least 5% better than base


class TestCrossModuleConsistency:
    def test_counters_match_base_characterisation(self, store):
        for name in EEMBC_NAMES:
            char = store.get(name)
            base = char.result(BASE_CONFIG)
            assert char.counters.cache_misses == base.stats.misses
            assert char.counters.cache_hits == base.stats.hits
            assert char.counters.cycles == base.total_cycles

    def test_energy_equals_static_plus_dynamic(self, store):
        for name in EEMBC_NAMES[:5]:
            char = store.get(name)
            for config in char.configs():
                estimate = char.result(config).estimate
                assert estimate.total_energy_nj == pytest.approx(
                    estimate.energy.static_nj + estimate.energy.dynamic_nj
                )

    def test_base_config_has_fewest_misses_vs_smaller_caches(self, store):
        """§III calls the base configuration a pessimistic, lowest-miss
        choice.  Strictly, a 4-way cache can miss slightly more than a
        direct-mapped cache of equal size on cyclic sweeps (LRU set
        thrashing), so the guarantee we pin is against every *smaller*
        cache at the same line size."""
        for name in EEMBC_NAMES:
            char = store.get(name)
            base_misses = char.result(BASE_CONFIG).stats.misses
            for config in char.configs():
                if (
                    config.line_b == BASE_CONFIG.line_b
                    and config.size_kb < BASE_CONFIG.size_kb
                ):
                    assert base_misses <= char.result(config).stats.misses

    def test_store_cache_round_trip(self, tmp_path, store):
        path = tmp_path / "suite.json"
        store.to_json(path)
        from repro.characterization.store import CharacterizationStore

        loaded = CharacterizationStore.from_json(path)
        for name in EEMBC_NAMES:
            assert loaded.best_config(name) == store.best_config(name)
            assert loaded.estimate(name, BASE_CONFIG).total_cycles == (
                store.estimate(name, BASE_CONFIG).total_cycles
            )
