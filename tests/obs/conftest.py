"""Fixtures for observability tests: a real small store + simulations."""

import pytest

from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.core.policies import make_policy
from repro.core.predictor import OraclePredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system, paper_system
from repro.workloads.arrivals import JobArrival
from repro.workloads.eembc import eembc_benchmark

#: Same mixed-best-size suite the core scheduler tests use.
SUITE_NAMES = ("puwmod", "idctrn", "pntrch", "a2time")


@pytest.fixture(scope="session")
def small_store():
    specs = [eembc_benchmark(name) for name in SUITE_NAMES]
    return CharacterizationStore(characterize_suite(specs))


@pytest.fixture(scope="session")
def oracle(small_store):
    return OraclePredictor(small_store)


def make_simulation(policy_name, store, predictor=None, **kwargs):
    policy = make_policy(policy_name)
    system = base_system() if policy_name == "base" else paper_system()
    return SchedulerSimulation(
        system,
        policy,
        store,
        predictor=predictor if policy.uses_predictor else None,
        **kwargs,
    )


def arrivals_for(names, gap=120_000, start=0):
    return [
        JobArrival(job_id=i, benchmark=name, arrival_cycle=start + i * gap)
        for i, name in enumerate(names)
    ]
