"""Fixtures for observability tests.

Scenario logic lives in :mod:`tests.scenarios`; this conftest keeps the
suite's historical denser arrival gap (120k cycles) so golden traces
stay byte-identical.
"""

import pytest

from tests import scenarios
from tests.scenarios import (  # noqa: F401  (re-exported for tests)
    SUITE_NAMES,
    build_oracle,
    build_small_store,
    make_simulation,
)


@pytest.fixture(scope="session")
def small_store():
    return build_small_store()


@pytest.fixture(scope="session")
def oracle(small_store):
    return build_oracle(small_store)


def arrivals_for(names, gap=120_000, start=0):
    return scenarios.arrivals_for(names, gap=gap, start=start)
