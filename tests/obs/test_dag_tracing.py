"""DAG-run observability: trace content, golden determinism, replay.

The task-graph analogues of the closed-batch tracing contracts:

* a traced ``run_dags`` is bit-identical to an untraced one;
* an edge-free DAG run's trace is **byte-identical** to the plain run
  it lowers to (releases degrade to arrivals);
* the golden congested scenario produces a schema-valid,
  byte-deterministic trace with a known deadline-miss count;
* a recorded DAG trace replays cleanly through the energy ledger.
"""

import dataclasses
import json

import pytest

from repro.obs.events import (
    DeadlineMiss,
    JobArrived,
    TaskReady,
    validate_event_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import ListRecorder, encode_event, read_trace, \
    write_trace
from repro.validate import replay_trace
from repro.workloads.dag import dag_arrivals

from tests.scenarios import congested_dag_graphs, dag_test_graphs

from .conftest import make_simulation


#: Deadline misses of the golden congested scenario under arrival-order
#: (base/FIFO) dispatch.  The scenario is a pure function of its seed,
#: so this count is part of the golden contract.
GOLDEN_MISSES = 14


@pytest.mark.parametrize("policy", ["base", "edf", "heft"])
def test_traced_dag_run_is_bit_identical(small_store, oracle, policy):
    graphs = dag_test_graphs()
    plain = make_simulation(policy, small_store, oracle).run_dags(graphs)
    recorder = ListRecorder()
    registry = MetricsRegistry()
    traced = make_simulation(
        policy, small_store, oracle, recorder=recorder, metrics=registry
    ).run_dags(graphs)
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)
    assert recorder.events, "tracing produced no events"


def test_dag_event_stream_content(small_store, oracle):
    graphs = dag_test_graphs(edge_density=0.7)
    recorder = ListRecorder()
    result = make_simulation(
        "edf", small_store, oracle, recorder=recorder
    ).run_dags(graphs)

    arrivals = [e for e in recorder.events if isinstance(e, JobArrived)]
    releases = [e for e in recorder.events if isinstance(e, TaskReady)]
    misses = [e for e in recorder.events if isinstance(e, DeadlineMiss)]

    roots = sum(len(g.roots()) for g in graphs)
    gated = sum(
        1 for g in graphs for t in g.tasks if t.predecessors
    )
    assert len(arrivals) == roots
    assert len(releases) == gated
    assert len(misses) == result.deadline_misses

    # Every release names a real (graph, task) pair with predecessors.
    by_graph = {g.graph_id: g for g in graphs}
    for event in releases:
        task = next(
            t for t in by_graph[event.graph_id].tasks
            if t.task_id == event.task_id
        )
        assert task.predecessors
        assert task.benchmark == event.benchmark

    # Miss arithmetic is embedded in every event.
    for event in misses:
        assert event.miss_cycles > 0
        assert event.cycle - event.miss_cycles == event.deadline_cycle


def test_edge_free_dag_trace_is_byte_identical_to_plain(small_store,
                                                        oracle):
    graphs = dag_test_graphs(edge_density=0.0)
    blobs = []
    for run in ("dag", "plain"):
        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle,
                              recorder=recorder, engine="reference")
        if run == "dag":
            sim.run_dags(graphs)
        else:
            sim.run(dag_arrivals(graphs))
        blobs.append(
            "\n".join(encode_event(e) for e in recorder.events)
            .encode("utf-8")
        )
    assert blobs[0] == blobs[1]


def test_golden_dag_trace_schema_and_determinism(small_store, oracle):
    """The CI golden-trace check, DAG edition.

    Fixed-seed congested scenario, two runs: every line satisfies the
    event schema, the runs serialise to byte-identical JSONL, and the
    deadline-miss count is the golden one.
    """
    graphs = congested_dag_graphs()
    blobs = []
    for _ in range(2):
        recorder = ListRecorder()
        result = make_simulation(
            "base", small_store, oracle, recorder=recorder
        ).run_dags(graphs)
        lines = [encode_event(e) for e in recorder.events]
        for line in lines:
            validate_event_dict(json.loads(line))
        assert result.deadline_misses == GOLDEN_MISSES
        assert sum(
            1 for e in recorder.events if isinstance(e, DeadlineMiss)
        ) == GOLDEN_MISSES
        blobs.append("\n".join(lines).encode("utf-8"))
    assert blobs[0] == blobs[1]


def test_dag_trace_round_trips_losslessly(small_store, oracle, tmp_path):
    recorder = ListRecorder()
    make_simulation(
        "heft", small_store, oracle, recorder=recorder
    ).run_dags(dag_test_graphs(edge_density=0.7))
    assert any(isinstance(e, TaskReady) for e in recorder.events)
    path = tmp_path / "dag.jsonl"
    write_trace(recorder.events, path)
    assert read_trace(path) == recorder.events


def test_recorded_dag_trace_replays_cleanly(small_store, oracle):
    recorder = ListRecorder()
    result = make_simulation(
        "edf", small_store, oracle, recorder=recorder
    ).run_dags(dag_test_graphs(edge_density=0.7))
    report = replay_trace(recorder.events)
    assert report.completions == result.jobs_completed
    assert report.releases == sum(
        1 for e in recorder.events if isinstance(e, TaskReady)
    )
    assert report.deadline_misses == result.deadline_misses
    assert not report.unfinished_jobs
