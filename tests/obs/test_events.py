"""Event type round-trips and schema validation."""

import pytest

from repro.obs.events import (
    CATEGORIES,
    EVENT_TYPES,
    CoreDown,
    CoreUp,
    DeadlineMiss,
    EnergyAccrued,
    FallbackDecision,
    FaultInjected,
    JobArrived,
    JobCompleted,
    JobPreempted,
    SizePredicted,
    StallDecision,
    TaskReady,
    TuningStep,
    event_from_dict,
    validate_event_dict,
)

SAMPLES = [
    JobArrived(cycle=0, job_id=1, benchmark="a2time"),
    SizePredicted(cycle=10, job_id=1, core_index=3, benchmark="a2time",
                  size_kb=4, best_size_kb=4),
    StallDecision(cycle=20, job_id=2, benchmark="idctrn"),
    TuningStep(cycle=30, job_id=3, core_index=0, benchmark="pntrch",
               config="8KB_2W_32B", step=2),
    JobPreempted(cycle=40, job_id=4, core_index=1, benchmark="puwmod",
                 category="best", fraction_run=0.25,
                 refunded_dynamic_nj=12.5, refunded_static_nj=3.0,
                 refunded_overhead_nj=0.0),
    JobCompleted(cycle=50, job_id=5, core_index=2, benchmark="a2time",
                 config="4KB_1W_16B", category="tuning",
                 energy_nj=1234.5, waiting_cycles=100),
    EnergyAccrued(cycle=60, job_id=6, core_index=0, benchmark="idctrn",
                  category="profiling", dynamic_nj=10.0, static_nj=5.0,
                  overhead_nj=0.5, service_cycles=1000),
    FaultInjected(cycle=70, fault="dispatch_failure", site="job:7",
                  detail="retry 1 in 2000 cycles", job_id=7),
    CoreDown(cycle=80, core_index=2),
    CoreUp(cycle=90, core_index=2),
    FallbackDecision(cycle=100, job_id=8, benchmark="puwmod",
                     reason="predictor_outage", core_index=1),
    TaskReady(cycle=110, job_id=9, benchmark="a2time", graph_id=2,
              task_id=3),
    DeadlineMiss(cycle=120, job_id=10, core_index=0, benchmark="idctrn",
                 deadline_cycle=100, miss_cycles=20),
]


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_round_trip(event):
    payload = event.to_dict()
    assert payload["kind"] == event.kind
    validate_event_dict(payload)
    assert event_from_dict(payload) == event


def test_kinds_are_unique_and_registered():
    assert len(EVENT_TYPES) == 20
    for kind, cls in EVENT_TYPES.items():
        assert cls.kind == kind


def test_categories():
    assert CATEGORIES == ("profiling", "tuning", "non_best", "best")


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown event kind"):
        event_from_dict({"kind": "nope", "cycle": 0})
    with pytest.raises(ValueError, match="unknown event kind"):
        validate_event_dict({"kind": "nope", "cycle": 0})


def test_missing_field_rejected():
    payload = JobArrived(cycle=0, job_id=1, benchmark="x").to_dict()
    del payload["job_id"]
    with pytest.raises(ValueError, match="missing fields"):
        validate_event_dict(payload)


def test_unknown_field_rejected():
    payload = JobArrived(cycle=0, job_id=1, benchmark="x").to_dict()
    payload["extra"] = 1
    with pytest.raises(ValueError, match="unknown fields"):
        validate_event_dict(payload)


def test_wrong_type_rejected():
    payload = JobArrived(cycle=0, job_id=1, benchmark="x").to_dict()
    payload["job_id"] = "one"
    with pytest.raises(ValueError, match="expected int"):
        validate_event_dict(payload)
    payload = JobArrived(cycle=0, job_id=1, benchmark="x").to_dict()
    payload["benchmark"] = 7
    with pytest.raises(ValueError, match="expected str"):
        validate_event_dict(payload)


def test_negative_cycle_rejected():
    payload = JobArrived(cycle=0, job_id=1, benchmark="x").to_dict()
    payload["cycle"] = -1
    with pytest.raises(ValueError, match="negative"):
        validate_event_dict(payload)


def test_stall_decision_core_is_optional():
    payload = StallDecision(cycle=1, job_id=2, benchmark="x").to_dict()
    assert payload["core_index"] is None
    validate_event_dict(payload)
    restored = event_from_dict(payload)
    assert restored.core_index is None
