"""Counters, gauges, P² streaming quantiles and the registry."""

import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)


def test_counter():
    counter = Counter("c")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge():
    gauge = Gauge("g")
    assert gauge.value == 0.0
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_p2_rejects_bad_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_exact_under_five_samples():
    estimator = P2Quantile(0.5)
    assert estimator.value == 0.0
    estimator.observe(10.0)
    assert estimator.value == 10.0
    estimator.observe(20.0)
    assert estimator.value == 15.0  # interpolated median of {10, 20}
    estimator.observe(30.0)
    assert estimator.value == 20.0


def test_p2_converges_on_uniform():
    rng = random.Random(7)
    samples = [rng.random() for _ in range(20_000)]
    for p in (0.5, 0.9, 0.99):
        estimator = P2Quantile(p)
        for x in samples:
            estimator.observe(x)
        exact = sorted(samples)[int(p * len(samples))]
        assert estimator.value == pytest.approx(exact, abs=0.02)


def test_p2_is_deterministic():
    rng = random.Random(3)
    samples = [rng.gauss(0, 1) for _ in range(5000)]

    def run():
        estimator = P2Quantile(0.9)
        for x in samples:
            estimator.observe(x)
        return estimator.value

    assert run() == run()


def test_histogram_snapshot():
    histogram = Histogram("h")
    empty = histogram.snapshot()
    assert empty == {
        "count": 0.0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p90": 0.0, "p99": 0.0,
    }
    for value in (4, 1, 3, 2):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 10.0
    assert snap["mean"] == 2.5
    assert snap["min"] == 1.0
    assert snap["max"] == 4.0
    assert histogram.quantile(0.5) == 2.5
    with pytest.raises(KeyError):
        histogram.quantile(0.42)


def test_registry_create_on_first_use():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_snapshot_and_scalars():
    registry = MetricsRegistry()
    registry.counter("jobs").inc(3)
    registry.gauge("rate").set(0.75)
    registry.histogram("wait").observe(10)
    registry.histogram("wait").observe(30)

    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"jobs": 3}
    assert snapshot["gauges"] == {"rate": 0.75}
    assert snapshot["histograms"]["wait"]["mean"] == 20.0

    scalars = registry.scalars()
    assert scalars["jobs"] == 3.0
    assert scalars["rate"] == 0.75
    assert scalars["wait.count"] == 2.0
    assert scalars["wait.mean"] == 20.0
    assert all(isinstance(v, float) for v in scalars.values())


def test_registry_span_times_blocks():
    registry = MetricsRegistry()
    with registry.span("work"):
        pass
    snap = registry.histogram("work_seconds").snapshot()
    assert snap["count"] == 1
    assert snap["max"] >= 0.0
