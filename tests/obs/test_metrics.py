"""Counters, gauges, P² streaming quantiles and the registry."""

import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)


def test_counter():
    counter = Counter("c")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge():
    gauge = Gauge("g")
    assert gauge.value == 0.0
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_p2_rejects_bad_quantile():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_p2_exact_under_five_samples():
    estimator = P2Quantile(0.5)
    assert estimator.value == 0.0
    estimator.observe(10.0)
    assert estimator.value == 10.0
    estimator.observe(20.0)
    assert estimator.value == 15.0  # interpolated median of {10, 20}
    estimator.observe(30.0)
    assert estimator.value == 20.0


def test_p2_converges_on_uniform():
    rng = random.Random(7)
    samples = [rng.random() for _ in range(20_000)]
    for p in (0.5, 0.9, 0.99):
        estimator = P2Quantile(p)
        for x in samples:
            estimator.observe(x)
        exact = sorted(samples)[int(p * len(samples))]
        assert estimator.value == pytest.approx(exact, abs=0.02)


def test_p2_is_deterministic():
    rng = random.Random(3)
    samples = [rng.gauss(0, 1) for _ in range(5000)]

    def run():
        estimator = P2Quantile(0.9)
        for x in samples:
            estimator.observe(x)
        return estimator.value

    assert run() == run()


def test_p2_heavy_duplicates():
    """Long runs of identical values must not divide by zero or drift.

    Duplicate-heavy streams are the classic P² killer: adjacent markers
    collapse onto the same height and naive implementations divide by a
    zero position gap in the parabolic step.
    """
    estimator = P2Quantile(0.9)
    for _ in range(10_000):
        estimator.observe(7.0)
    assert estimator.value == 7.0
    assert estimator.count == 10_000

    # Duplicates with a sprinkle of outliers: estimate stays on the
    # dominant value (90% of mass IS 5.0).
    mixed = P2Quantile(0.5)
    rng = random.Random(11)
    for _ in range(20_000):
        mixed.observe(5.0 if rng.random() < 0.9 else 100.0)
    assert mixed.value == pytest.approx(5.0, abs=1e-6)


def test_p2_marker_heights_stay_monotone():
    """q0 <= q1 <= q2 <= q3 <= q4 after every observation.

    The marker heights are order statistics of the stream; the
    parabolic/linear adjustment must never let one cross a neighbour.
    """
    rng = random.Random(13)
    estimator = P2Quantile(0.9)
    for i in range(30_000):
        # A nasty mix: heavy tails, duplicates and constants.
        bucket = i % 4
        if bucket == 0:
            x = rng.gauss(0, 1)
        elif bucket == 1:
            x = rng.expovariate(1e-3)
        elif bucket == 2:
            x = 42.0
        else:
            x = rng.random()
        estimator.observe(x)
        q = estimator._heights
        if len(q) == 5:
            assert q[0] <= q[1] <= q[2] <= q[3] <= q[4], i
            n = estimator._positions
            assert n[0] < n[1] < n[2] < n[3] < n[4], i


def test_p2_tiny_sample_exactness():
    """With fewer than five samples the estimate is the exact
    linear-interpolated quantile, for every p, in any feed order."""
    samples = [3.0, 1.0, 4.0, 1.5]
    for p in (0.25, 0.5, 0.75, 0.9):
        estimator = P2Quantile(p)
        for x in samples:
            estimator.observe(x)
        data = sorted(samples)
        rank = p * (len(data) - 1)
        low = int(rank)
        exact = data[low] + (data[low + 1] - data[low]) * (rank - low)
        assert estimator.value == exact
        assert estimator.count == 4


def test_p2_snapshot_is_merge_free():
    """snapshot() reads without perturbing: the estimate sequence is
    identical whether or not snapshots are interleaved."""
    rng = random.Random(5)
    samples = [rng.gauss(10, 3) for _ in range(4_000)]

    plain = P2Quantile(0.9)
    for x in samples:
        plain.observe(x)

    snapshotted = P2Quantile(0.9)
    views = []
    for i, x in enumerate(samples):
        snapshotted.observe(x)
        if i % 7 == 0:
            views.append(snapshotted.snapshot())

    assert snapshotted.value == plain.value
    assert snapshotted.state_dict() == plain.state_dict()
    last = views[-1]
    assert last["p"] == 0.9
    assert last["count"] == 3998.0  # last i with i % 7 == 0 is 3997
    # Snapshots are plain floats (windowed reporting serialises them).
    assert all(isinstance(v, float) for v in last.values())


def test_p2_state_round_trip_continues_bit_identically():
    """Checkpoint mid-stream, restore, and the tail of the stream
    produces the same estimate as the uninterrupted run."""
    rng = random.Random(17)
    samples = [rng.expovariate(0.01) for _ in range(6_000)]

    straight = P2Quantile(0.99)
    for x in samples:
        straight.observe(x)

    first = P2Quantile(0.99)
    for x in samples[:2_500]:
        first.observe(x)
    import json
    state = json.loads(json.dumps(first.state_dict()))

    resumed = P2Quantile(0.99)
    resumed.load_state(state)
    for x in samples[2_500:]:
        resumed.observe(x)

    assert resumed.value == straight.value
    assert resumed.state_dict() == straight.state_dict()


def test_p2_load_state_rejects_wrong_quantile():
    donor = P2Quantile(0.5)
    donor.observe(1.0)
    estimator = P2Quantile(0.9)
    with pytest.raises(ValueError, match="p=0.5"):
        estimator.load_state(donor.state_dict())


def test_histogram_state_round_trip():
    rng = random.Random(23)
    samples = [rng.gauss(50, 20) for _ in range(3_000)]

    straight = Histogram("h")
    for x in samples:
        straight.observe(x)

    first = Histogram("h")
    for x in samples[:1_000]:
        first.observe(x)
    resumed = Histogram("h")
    resumed.load_state(first.state_dict())
    for x in samples[1_000:]:
        resumed.observe(x)

    assert resumed.snapshot() == straight.snapshot()
    assert resumed.state_dict() == straight.state_dict()


def test_histogram_load_state_rejects_estimator_mismatch():
    donor = Histogram("h", quantiles=(0.5,))
    donor.observe(1.0)
    histogram = Histogram("h")
    with pytest.raises(ValueError, match="estimators"):
        histogram.load_state(donor.state_dict())


def test_histogram_snapshot():
    histogram = Histogram("h")
    empty = histogram.snapshot()
    assert empty == {
        "count": 0.0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p90": 0.0, "p99": 0.0,
    }
    for value in (4, 1, 3, 2):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 10.0
    assert snap["mean"] == 2.5
    assert snap["min"] == 1.0
    assert snap["max"] == 4.0
    assert histogram.quantile(0.5) == 2.5
    with pytest.raises(KeyError):
        histogram.quantile(0.42)


def test_registry_create_on_first_use():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_snapshot_and_scalars():
    registry = MetricsRegistry()
    registry.counter("jobs").inc(3)
    registry.gauge("rate").set(0.75)
    registry.histogram("wait").observe(10)
    registry.histogram("wait").observe(30)

    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"jobs": 3}
    assert snapshot["gauges"] == {"rate": 0.75}
    assert snapshot["histograms"]["wait"]["mean"] == 20.0

    scalars = registry.scalars()
    assert scalars["jobs"] == 3.0
    assert scalars["rate"] == 0.75
    assert scalars["wait.count"] == 2.0
    assert scalars["wait.mean"] == 20.0
    assert all(isinstance(v, float) for v in scalars.values())


def test_registry_span_times_blocks():
    registry = MetricsRegistry()
    with registry.span("work"):
        pass
    snap = registry.histogram("work_seconds").snapshot()
    assert snap["count"] == 1
    assert snap["max"] >= 0.0
