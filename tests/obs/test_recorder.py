"""Recorder implementations and JSONL trace round-trips."""

import io
import json

from repro.obs.events import JobArrived, JobCompleted
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    ListRecorder,
    NullRecorder,
    encode_event,
    iter_trace,
    read_trace,
    write_trace,
)

EVENTS = [
    JobArrived(cycle=0, job_id=0, benchmark="a2time"),
    JobArrived(cycle=5, job_id=1, benchmark="idctrn"),
    JobCompleted(cycle=900, job_id=0, core_index=3, benchmark="a2time",
                 config="base", category="profiling",
                 energy_nj=12.5, waiting_cycles=0),
]


def test_null_recorder_is_disabled():
    assert NullRecorder.enabled is False
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.emit(EVENTS[0])  # no-op, no error
    NULL_RECORDER.close()


def test_list_recorder_accumulates():
    recorder = ListRecorder()
    assert recorder.enabled
    for event in EVENTS:
        recorder.emit(event)
    assert recorder.events == EVENTS
    assert len(recorder) == 3


def test_encode_event_is_canonical():
    line = encode_event(EVENTS[0])
    assert line == json.dumps(
        EVENTS[0].to_dict(), sort_keys=True, separators=(",", ":")
    )
    assert "\n" not in line
    # Keys sorted: kind is not first unless alphabetically so.
    payload = json.loads(line)
    assert list(payload) == sorted(payload)


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "nested" / "trace.jsonl"
    with JsonlRecorder(path) as recorder:
        for event in EVENTS:
            recorder.emit(event)
        assert recorder.count == 3
    assert read_trace(path) == EVENTS
    assert list(iter_trace(path)) == EVENTS


def test_jsonl_recorder_accepts_open_handle():
    handle = io.StringIO()
    recorder = JsonlRecorder(handle)
    recorder.emit(EVENTS[0])
    recorder.close()  # must NOT close a caller-owned handle
    assert not handle.closed
    assert handle.getvalue() == encode_event(EVENTS[0]) + "\n"


def test_write_trace_helper(tmp_path):
    path = tmp_path / "t.jsonl"
    assert write_trace(EVENTS, path) == 3
    assert read_trace(path) == EVENTS


def test_byte_identical_for_same_events(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace(EVENTS, a)
    write_trace(list(EVENTS), b)
    assert a.read_bytes() == b.read_bytes()


def test_iter_trace_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json}\n")
    try:
        list(iter_trace(path))
    except ValueError as error:
        assert "not valid JSON" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_iter_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text(
        encode_event(EVENTS[0]) + "\n\n" + encode_event(EVENTS[1]) + "\n"
    )
    assert list(iter_trace(path)) == EVENTS[:2]
