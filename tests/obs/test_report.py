"""Timeline and decision-breakdown reconstruction from event lists."""

import pytest

from repro.obs.events import (
    EnergyAccrued,
    JobCompleted,
    JobPreempted,
    StallDecision,
)
from repro.obs.report import (
    decision_breakdown,
    per_core_timeline,
    render_trace_report,
    trace_summary,
)


def _start(core, job, cycle, service, category="best", dyn=10.0, sta=4.0,
           ovh=0.0):
    return EnergyAccrued(
        cycle=cycle, job_id=job, core_index=core, benchmark="a2time",
        category=category, dynamic_nj=dyn, static_nj=sta, overhead_nj=ovh,
        service_cycles=service,
    )


def _complete(core, job, cycle, category="best"):
    return JobCompleted(
        cycle=cycle, job_id=job, core_index=core, benchmark="a2time",
        config="base", category=category, energy_nj=14.0, waiting_cycles=0,
    )


def test_timeline_completed_window():
    events = [_start(0, 1, 100, 50), _complete(0, 1, 150)]
    timeline = per_core_timeline(events)
    [segment] = timeline[0]
    assert (segment.start_cycle, segment.end_cycle) == (100, 150)
    assert segment.cycles == 50
    assert segment.completed


def test_timeline_preempted_window_truncates():
    events = [
        _start(2, 7, 0, 100, category="tuning"),
        JobPreempted(
            cycle=40, job_id=7, core_index=2, benchmark="a2time",
            category="tuning", fraction_run=0.4,
            refunded_dynamic_nj=6.0, refunded_static_nj=2.4,
            refunded_overhead_nj=0.0,
        ),
    ]
    [segment] = per_core_timeline(events)[2]
    assert segment.end_cycle == 40
    assert not segment.completed
    assert segment.category == "tuning"


def test_timeline_truncated_trace_closes_at_scheduled_end():
    events = [_start(1, 3, 500, 250)]
    [segment] = per_core_timeline(events)[1]
    assert segment.end_cycle == 750
    assert not segment.completed


def test_timeline_rejects_double_occupancy():
    events = [_start(0, 1, 0, 100), _start(0, 2, 10, 100)]
    with pytest.raises(ValueError, match="already occupied"):
        per_core_timeline(events)


def test_decision_breakdown_attributes_and_refunds():
    events = [
        _start(0, 1, 0, 100, category="best", dyn=10.0, sta=4.0),
        _complete(0, 1, 100),
        _start(1, 2, 0, 100, category="non_best", dyn=20.0, sta=8.0),
        JobPreempted(
            cycle=50, job_id=2, core_index=1, benchmark="a2time",
            category="non_best", fraction_run=0.5,
            refunded_dynamic_nj=10.0, refunded_static_nj=4.0,
            refunded_overhead_nj=0.0,
        ),
        StallDecision(cycle=60, job_id=3, benchmark="a2time"),
        StallDecision(cycle=70, job_id=3, benchmark="a2time"),
    ]
    breakdown = decision_breakdown(events)
    best = breakdown["best"]
    assert best["executions"] == 1
    assert best["completions"] == 1
    assert best["total_nj"] == pytest.approx(14.0)
    non_best = breakdown["non_best"]
    assert non_best["executions"] == 1
    assert non_best["preemptions"] == 1
    # Half the charges were refunded on preemption.
    assert non_best["dynamic_nj"] == pytest.approx(10.0)
    assert non_best["static_nj"] == pytest.approx(4.0)
    assert non_best["total_nj"] == pytest.approx(14.0)
    assert breakdown["stall"]["decisions"] == 2


def test_summary_and_report_render():
    events = [
        _start(0, 1, 0, 100, category="profiling"),
        _complete(0, 1, 100, category="profiling"),
        StallDecision(cycle=110, job_id=2, benchmark="a2time"),
    ]
    summary = trace_summary(events)
    assert summary["events"] == 3
    assert summary["jobs_completed"] == 1
    assert summary["stall_decisions"] == 1
    assert summary["last_cycle"] == 110
    report = render_trace_report(events)
    assert "decision breakdown" in report
    assert "per-core timeline" in report
    assert "1 stalls" in report
