"""Simulation-level observability: non-perturbation, determinism, content.

The two acceptance properties of the tracing layer:

* a traced run is **bit-identical** to an untraced one (observation
  never perturbs the simulation);
* two runs of the same (policy, seed, load) produce **byte-identical**
  JSONL traces.
"""

import pytest

from repro.obs.events import (
    EnergyAccrued,
    JobArrived,
    JobCompleted,
    NonBestDispatch,
    ProfilingCompleted,
    ProfilingStarted,
    SizePredicted,
    StallDecision,
    TuningStep,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import ListRecorder, encode_event, write_trace
from repro.obs.report import per_core_timeline, trace_summary
from repro.workloads.arrivals import uniform_arrivals

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


def _suite_specs(store):
    from repro.workloads.eembc import eembc_benchmark

    return [eembc_benchmark(name) for name in store.names()]


@pytest.mark.parametrize("policy", ["base", "optimal", "proposed"])
def test_traced_run_is_bit_identical(small_store, oracle, policy):
    arrivals = arrivals_for(SUITE_NAMES * 3)
    plain = make_simulation(policy, small_store, oracle).run(arrivals)
    recorder = ListRecorder()
    registry = MetricsRegistry()
    traced = make_simulation(
        policy, small_store, oracle, recorder=recorder, metrics=registry
    ).run(arrivals)
    assert traced == plain
    assert recorder.events, "tracing produced no events"


def test_trace_is_deterministic(small_store, oracle):
    arrivals = uniform_arrivals(
        _suite_specs(small_store), count=30, seed=5,
        mean_interarrival_cycles=40_000,
    )

    def run():
        recorder = ListRecorder()
        make_simulation(
            "proposed", small_store, oracle, recorder=recorder
        ).run(arrivals)
        return [encode_event(e) for e in recorder.events]

    assert run() == run()


def test_trace_files_are_byte_identical(small_store, oracle, tmp_path):
    arrivals = arrivals_for(SUITE_NAMES * 2)
    paths = []
    for tag in ("a", "b"):
        recorder = ListRecorder()
        make_simulation(
            "proposed", small_store, oracle, recorder=recorder
        ).run(arrivals)
        path = tmp_path / f"{tag}.jsonl"
        write_trace(recorder.events, path)
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_event_stream_content(small_store, oracle):
    recorder = ListRecorder()
    arrivals = arrivals_for(SUITE_NAMES * 2)
    result = make_simulation(
        "proposed", small_store, oracle, recorder=recorder
    ).run(arrivals)
    events = recorder.events

    by_type = {}
    for event in events:
        by_type.setdefault(type(event), []).append(event)

    assert len(by_type[JobArrived]) == len(arrivals)
    assert len(by_type[JobCompleted]) == result.jobs_completed
    assert len(by_type[ProfilingStarted]) == result.profiling_executions
    assert len(by_type[ProfilingCompleted]) == result.profiling_executions
    assert len(by_type[TuningStep]) == result.tuning_executions
    # One prediction per profiling run on a predictor policy, and the
    # carried ground truth matches the store.
    predictions = by_type[SizePredicted]
    assert len(predictions) == result.profiling_executions
    for event in predictions:
        assert event.best_size_kb == small_store.best_size_kb(
            event.benchmark
        )
    # One EnergyAccrued per physical execution.
    executions = (
        result.jobs_completed  # every completion had a start
    )
    assert len(by_type[EnergyAccrued]) == executions
    # Cycle stamps are non-decreasing (simulation order).
    cycles = [e.cycle for e in events]
    assert cycles == sorted(cycles)


def test_stall_and_non_best_events_under_contention(small_store, oracle):
    # Heavy load on the proposed policy forces §IV.E decisions.
    recorder = ListRecorder()
    arrivals = uniform_arrivals(
        _suite_specs(small_store), count=60, seed=2,
        mean_interarrival_cycles=8_000,
    )
    result = make_simulation(
        "proposed", small_store, oracle, recorder=recorder
    ).run(arrivals)
    stalls = [e for e in recorder.events if isinstance(e, StallDecision)]
    non_best = [
        e for e in recorder.events if isinstance(e, NonBestDispatch)
    ]
    assert len(stalls) == result.stall_decisions
    assert len(non_best) == result.non_best_decisions
    assert result.stall_decisions + result.non_best_decisions > 0, (
        "scenario did not exercise the stall-vs-non-best decision"
    )
    completions = [
        e for e in recorder.events if isinstance(e, JobCompleted)
    ]
    assert sum(
        1 for e in completions if e.category == "non_best"
    ) == len(non_best)


def test_timeline_matches_core_accounting(small_store, oracle):
    recorder = ListRecorder()
    arrivals = arrivals_for(SUITE_NAMES * 3)
    simulation = make_simulation(
        "proposed", small_store, oracle, recorder=recorder
    )
    result = simulation.run(arrivals)
    timeline = per_core_timeline(recorder.events)
    for core_index, segments in timeline.items():
        assert all(s.completed for s in segments)
        busy = sum(s.cycles for s in segments)
        assert busy == result.core_busy_cycles[core_index]


def test_metrics_registry_matches_result(small_store, oracle):
    registry = MetricsRegistry()
    arrivals = arrivals_for(SUITE_NAMES * 3)
    result = make_simulation(
        "proposed", small_store, oracle, metrics=registry
    ).run(arrivals)
    scalars = registry.scalars()
    assert scalars["sim.jobs_arrived"] == len(arrivals)
    assert scalars["sim.jobs_completed"] == result.jobs_completed
    assert scalars["sim.profiling_executions"] == result.profiling_executions
    assert scalars["sim.tuning_executions"] == result.tuning_executions
    assert scalars["sim.stall_decisions"] == result.stall_decisions
    assert scalars["sim.non_best_decisions"] == result.non_best_decisions
    assert scalars["sim.makespan_cycles"] == result.makespan_cycles
    assert scalars["sim.energy.total_nj"] == pytest.approx(
        result.total_energy_nj
    )
    assert scalars["sim.energy.idle_nj"] == pytest.approx(
        result.idle_energy_nj
    )
    assert scalars["sim.waiting_cycles.mean"] == pytest.approx(
        result.mean_waiting_cycles
    )
    for core_index, busy in result.core_busy_cycles.items():
        assert scalars[f"sim.core.{core_index}.busy_cycles"] == busy
    # Predictor hit rate derives from the hit/miss counters.
    hits = scalars["sim.predictor_hits"]
    misses = scalars["sim.predictor_misses"]
    if hits + misses:
        assert scalars["sim.predictor.hit_rate"] == pytest.approx(
            hits / (hits + misses)
        )


def test_golden_trace_schema_and_determinism(small_store, oracle, tmp_path):
    """The CI golden-trace check: fixed-seed mini scenario, two runs.

    Every emitted line must satisfy the event schema, and the two runs
    must serialise to byte-identical JSONL (no checked-in golden file:
    byte-stability of *this* environment is the contract).
    """
    import json

    from repro.obs.events import validate_event_dict

    arrivals = uniform_arrivals(
        _suite_specs(small_store), count=20, seed=11,
        mean_interarrival_cycles=30_000,
    )
    blobs = []
    for _ in range(2):
        recorder = ListRecorder()
        make_simulation(
            "proposed", small_store, oracle, recorder=recorder
        ).run(arrivals)
        lines = [encode_event(e) for e in recorder.events]
        for line in lines:
            validate_event_dict(json.loads(line))
        blobs.append("\n".join(lines).encode("utf-8"))
    assert blobs[0] == blobs[1]


def test_trace_round_trips_losslessly(small_store, oracle, tmp_path):
    from repro.obs.recorder import read_trace

    recorder = ListRecorder()
    arrivals = arrivals_for(SUITE_NAMES * 2)
    make_simulation(
        "proposed", small_store, oracle, recorder=recorder
    ).run(arrivals)
    path = tmp_path / "trace.jsonl"
    write_trace(recorder.events, path)
    restored = read_trace(path)
    assert restored == recorder.events
    assert trace_summary(restored) == trace_summary(recorder.events)
