"""Sampled telemetry: non-perturbation, determinism, resumability.

The telemetry contract (:mod:`repro.obs.telemetry`) has three legs,
each pinned here:

* **Non-perturbation** — a telemetry-on run is bit-identical to a
  telemetry-off run on both engines: same result object AND the same
  post-run simulation state, across the golden policy × discipline ×
  preemption grid.
* **Determinism** — a fixed run always produces byte-identical
  telemetry and sampled-trace files (no wall-clock leaks into them).
* **Resumability** — kill a checkpointed streaming run at any point
  (even with post-checkpoint samples already written), resume, and the
  telemetry files come out byte-identical to an uninterrupted run.

Plus the integration seams: sampled trace events round-trip through
the typed-event schema and the trace report, the fast/auto engine
selection treats telemetry as fast-path-compatible, and the rejection
paths fail loudly.
"""

import dataclasses
import itertools
import json

import pytest

from repro.core.simulation import SchedulerSimulation
from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.system import base_system, paper_system
from repro.obs import (
    ListRecorder,
    Telemetry,
    TELEMETRY_SCHEMA_VERSION,
    event_from_dict,
    read_telemetry,
    render_prometheus,
    render_telemetry_report,
    validate_event_dict,
)
from repro.obs.events import EnergyAccrued, JobCompleted
from repro.obs.report import per_core_timeline, render_trace_report
from repro.sim.stream import (
    STREAM_SNAPSHOT_VERSION,
    StreamConfig,
    StreamingSimulation,
)
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.eembc import eembc_benchmark

from tests.scenarios import (
    SUITE_NAMES,
    arrivals_for,
    build_energy_table,
    build_oracle,
    build_small_store,
    make_simulation,
    qos_arrivals,
)
from tests.sim.test_fast_engine_equivalence import _assert_state_parity

DISCIPLINES = ("fifo", "priority", "edf")

#: Same golden grid as the fast-engine equivalence suite.
GRID = [
    (policy, discipline, preemptive)
    for policy, discipline, preemptive in itertools.product(
        POLICY_NAMES, DISCIPLINES, (False, True)
    )
    if not (preemptive and discipline == "fifo")
]

STREAM_GRID = [
    ("base", "fifo", False),
    ("proposed", "fifo", False),
    ("proposed", "priority", True),
    ("optimal", "edf", False),
    ("energy_centric", "priority", False),
]

N_STREAM_JOBS = 150
SEED = 7


@pytest.fixture(scope="module")
def store():
    return build_small_store()


@pytest.fixture(scope="module")
def oracle(store):
    return build_oracle(store)


@pytest.fixture(scope="module")
def energy_table():
    return build_energy_table()


@pytest.fixture(scope="module")
def specs():
    return [eembc_benchmark(name) for name in SUITE_NAMES]


def _arrivals(discipline):
    if discipline == "fifo":
        return arrivals_for(SUITE_NAMES * 10, gap=40_000)
    return qos_arrivals(repeats=10, gap=40_000)


def _telemetry(tmp_path, tag, **kwargs):
    kwargs.setdefault("sample_every", 7)
    kwargs.setdefault("trace_out", tmp_path / f"{tag}.trace.jsonl")
    kwargs.setdefault("trace_every", 5)
    return Telemetry(out=tmp_path / f"{tag}.jsonl", **kwargs)


def _stream_engine(policy_name, discipline, preemptive, store, oracle,
                   energy_table, telemetry=None):
    policy = make_policy(policy_name)
    system = base_system() if policy_name == "base" else paper_system()
    return StreamingSimulation(
        system,
        policy,
        store,
        predictor=oracle if policy.uses_predictor else None,
        energy_table=energy_table,
        config=StreamConfig(max_jobs=N_STREAM_JOBS),
        discipline=discipline,
        preemptive=preemptive,
        telemetry=telemetry,
    )


def _process(specs):
    return PoissonProcess(
        specs, mean_interarrival_cycles=25_000.0, seed=SEED
    )


def _finish(engine):
    while engine.advance():
        pass
    return engine.result()


class TestFastEngineNonPerturbation:
    @pytest.mark.parametrize("policy,discipline,preemptive", GRID)
    def test_bit_identical_and_state_parity(
        self, policy, discipline, preemptive, store, oracle,
        energy_table, tmp_path,
    ):
        arrivals = _arrivals(discipline)
        kwargs = dict(discipline=discipline, preemptive=preemptive,
                      engine="fast")
        off = make_simulation(policy, store, predictor=oracle,
                              energy_table=energy_table, **kwargs)
        tel = _telemetry(tmp_path, "t")
        on = make_simulation(policy, store, predictor=oracle,
                             energy_table=energy_table, telemetry=tel,
                             **kwargs)
        r_off = off.run(arrivals)
        r_on = on.run(arrivals)
        tel.close()
        assert r_on == r_off
        # Telemetry must not perturb the post-run object state either
        # (the helper compares a "reference" vs "fast" pair; the
        # telemetry-off run plays the reference role here).
        _assert_state_parity(off, on)
        header, samples = read_telemetry(tmp_path / "t.jsonl")
        assert header["policy"] == policy
        assert samples and samples[-1]["final"] is True
        assert samples[-1]["done"] == r_on.jobs_completed

    def test_fixed_run_is_byte_deterministic(
        self, store, oracle, energy_table, tmp_path,
    ):
        arrivals = _arrivals("fifo")
        for tag in ("a", "b"):
            tel = _telemetry(tmp_path, tag)
            sim = make_simulation("proposed", store, predictor=oracle,
                                  energy_table=energy_table,
                                  engine="fast", telemetry=tel)
            sim.run(arrivals)
            tel.close()
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()
        assert (tmp_path / "a.trace.jsonl").read_bytes() == \
            (tmp_path / "b.trace.jsonl").read_bytes()


class TestStreamingNonPerturbation:
    @pytest.mark.parametrize("policy,discipline,preemptive", STREAM_GRID)
    def test_bit_identical(
        self, policy, discipline, preemptive, store, oracle,
        energy_table, specs, tmp_path,
    ):
        args = (policy, discipline, preemptive, store, oracle,
                energy_table)
        off = _stream_engine(*args)
        off.start(_process(specs))
        r_off = _finish(off)

        tel = _telemetry(tmp_path, "s")
        on = _stream_engine(*args, telemetry=tel)
        on.start(_process(specs))
        r_on = _finish(on)
        tel.close()
        assert dataclasses.asdict(r_on) == dataclasses.asdict(r_off)
        header, samples = read_telemetry(tmp_path / "s.jsonl")
        assert header["engine"] == "stream"
        assert samples[-1]["final"] is True
        assert samples[-1]["done"] == N_STREAM_JOBS


class TestKillResumeByteIdentity:
    @pytest.mark.parametrize("kill_at", (1, 50, 120))
    def test_resumed_telemetry_files_are_byte_identical(
        self, kill_at, store, oracle, energy_table, specs, tmp_path,
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)

        base_tel = _telemetry(tmp_path, "base")
        straight = _stream_engine(*args, telemetry=base_tel)
        straight.start(_process(specs))
        baseline = _finish(straight)
        base_tel.close()

        kr_tel = _telemetry(tmp_path, "kr")
        killed = _stream_engine(*args, telemetry=kr_tel)
        killed.start(_process(specs))
        killed.advance(max_completions=kill_at)
        snapshot = json.loads(json.dumps(killed.snapshot()))
        assert snapshot["version"] == STREAM_SNAPSHOT_VERSION
        assert snapshot["telemetry"]["schema"] == TELEMETRY_SCHEMA_VERSION
        # The process dies *after* the checkpoint: more samples land in
        # the files than the snapshot records.  Resume must truncate.
        killed.advance(max_completions=10)
        kr_tel.close()

        resumed_tel = _telemetry(tmp_path, "kr")
        resumed = _stream_engine(*args, telemetry=resumed_tel)
        result = resumed.resume(snapshot, _process(specs))
        while resumed.advance():
            pass
        result = resumed.result()
        resumed_tel.close()

        assert dataclasses.asdict(result) == dataclasses.asdict(baseline)
        assert (tmp_path / "kr.jsonl").read_bytes() == \
            (tmp_path / "base.jsonl").read_bytes()
        assert (tmp_path / "kr.trace.jsonl").read_bytes() == \
            (tmp_path / "base.trace.jsonl").read_bytes()

    def test_resume_from_final_checkpoint_appends_nothing(
        self, store, oracle, energy_table, specs, tmp_path,
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        tel = _telemetry(tmp_path, "full")
        engine = _stream_engine(*args, telemetry=tel)
        engine.start(_process(specs))
        _finish(engine)
        snapshot = json.loads(json.dumps(engine.snapshot()))
        tel.close()
        before = (tmp_path / "full.jsonl").read_bytes()

        tel2 = _telemetry(tmp_path, "full")
        resumed = _stream_engine(*args, telemetry=tel2)
        resumed.resume(snapshot, _process(specs))
        while resumed.advance():
            pass
        tel2.close()
        assert (tmp_path / "full.jsonl").read_bytes() == before

    def test_resume_without_sink_fails_loudly(
        self, store, oracle, energy_table, specs, tmp_path,
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        tel = _telemetry(tmp_path, "orphan")
        killed = _stream_engine(*args, telemetry=tel)
        killed.start(_process(specs))
        killed.advance(max_completions=30)
        snapshot = json.loads(json.dumps(killed.snapshot()))
        tel.close()

        resumed = _stream_engine(*args)  # no telemetry attached
        with pytest.raises(ValueError, match="telemetry"):
            resumed.resume(snapshot, _process(specs))

    def test_resume_with_wrong_file_fails_loudly(
        self, store, oracle, energy_table, specs, tmp_path,
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        tel = _telemetry(tmp_path, "short")
        killed = _stream_engine(*args, telemetry=tel)
        killed.start(_process(specs))
        killed.advance(max_completions=30)
        snapshot = json.loads(json.dumps(killed.snapshot()))
        tel.close()
        (tmp_path / "short.jsonl").write_text("{}\n")

        tel2 = _telemetry(tmp_path, "short")
        resumed = _stream_engine(*args, telemetry=tel2)
        with pytest.raises(ValueError, match="checkpoint expects"):
            resumed.resume(snapshot, _process(specs))


class TestSampledTrace:
    @pytest.fixture()
    def trace_lines(self, store, oracle, energy_table, tmp_path):
        tel = _telemetry(tmp_path, "tr", trace_every=3)
        sim = make_simulation("proposed", store, predictor=oracle,
                              energy_table=energy_table, engine="fast",
                              telemetry=tel)
        sim.run(_arrivals("fifo"))
        tel.close()
        text = (tmp_path / "tr.trace.jsonl").read_text()
        return [json.loads(line) for line in text.splitlines()]

    def test_events_validate_and_round_trip(self, trace_lines):
        assert trace_lines
        for payload in trace_lines:
            assert payload["sampled"] is True
            validate_event_dict(payload)
            event = event_from_dict(payload)
            assert isinstance(event, (EnergyAccrued, JobCompleted))

    def test_trace_report_is_lenient_for_sampled(self, trace_lines):
        events = [event_from_dict(p) for p in trace_lines]
        report = render_trace_report(events, lenient=True)
        assert report.startswith("sampled trace:")
        timeline = per_core_timeline(events, lenient=True)
        assert timeline  # at least one reconstructed window

    def test_sampled_flag_must_be_bool(self, trace_lines):
        payload = dict(trace_lines[0])
        payload["sampled"] = "yes"
        with pytest.raises(ValueError, match="sampled"):
            validate_event_dict(payload)


class TestEngineSelection:
    def test_auto_with_telemetry_stays_fast(self, store, oracle,
                                            energy_table):
        sim = make_simulation("proposed", store, predictor=oracle,
                              energy_table=energy_table,
                              telemetry=Telemetry())
        assert sim._resolve_engine() == "fast"

    def test_fast_with_hooks_names_telemetry_escape_hatch(
        self, store, oracle, energy_table,
    ):
        with pytest.raises(ValueError, match="telemetry"):
            make_simulation("proposed", store, predictor=oracle,
                            energy_table=energy_table, engine="fast",
                            recorder=ListRecorder())

    def test_reference_with_telemetry_rejected(self, store, oracle,
                                               energy_table):
        with pytest.raises(ValueError, match="full-fidelity"):
            make_simulation("proposed", store, predictor=oracle,
                            energy_table=energy_table,
                            engine="reference", telemetry=Telemetry())
        with pytest.raises(ValueError, match="full-fidelity"):
            # auto resolves to reference when a hook is on.
            make_simulation("proposed", store, predictor=oracle,
                            energy_table=energy_table, validate=True,
                            telemetry=Telemetry())


class TestTelemetrySink:
    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="sample_every"):
            Telemetry(sample_every=0)
        with pytest.raises(ValueError, match="trace_every"):
            Telemetry(trace_every=-1)
        with pytest.raises(ValueError, match="trace_out"):
            Telemetry(trace_every=5)
        with pytest.raises(ValueError, match="trace_every"):
            Telemetry(trace_out=tmp_path / "t.jsonl", trace_every=0)

    def test_load_state_needs_fresh_sink(self, tmp_path):
        tel = Telemetry(out=tmp_path / "t.jsonl")
        tel.begin({"engine": "fast"})
        tel.sample(done=1)
        state = tel.state_dict()
        tel.close()
        with pytest.raises(RuntimeError, match="fresh"):
            tel.load_state(state)

    def test_load_state_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Telemetry().load_state({"schema": 999})

    def test_finalized_round_trips_through_state(self, tmp_path):
        tel = Telemetry(out=tmp_path / "t.jsonl")
        tel.begin()
        tel.sample(done=1, final=True)
        state = json.loads(json.dumps(tel.state_dict()))
        tel.close()
        fresh = Telemetry(out=tmp_path / "t.jsonl")
        fresh.load_state(state)
        assert fresh.finalized is True
        fresh.sample(done=2)  # must be a no-op after the final sample
        assert fresh.samples == state["samples"]
        fresh.close()

    def test_header_written_once_across_resume(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(out=path)
        tel.begin({"engine": "fast"})
        tel.sample(done=1)
        state = tel.state_dict()
        tel.close()
        fresh = Telemetry(out=path)
        fresh.load_state(state)
        fresh.begin({"engine": "fast"})
        fresh.sample(done=2)
        fresh.close()
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds == ["telemetry", "sample", "sample"]

    def test_read_telemetry_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"sample","i":0}\n')
        with pytest.raises(ValueError, match="header"):
            read_telemetry(path)
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_telemetry(path)
        path.write_text(
            '{"kind":"telemetry","schema":%d}\n{"kind":"mystery"}\n'
            % TELEMETRY_SCHEMA_VERSION
        )
        with pytest.raises(ValueError, match="unknown"):
            read_telemetry(path)


class TestRenderers:
    @pytest.fixture(scope="class")
    def run_outputs(self, store, oracle, energy_table,
                    tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("telemetry-render")
        tel = _telemetry(tmp_path, "r")
        sim = make_simulation("proposed", store, predictor=oracle,
                              energy_table=energy_table, engine="fast",
                              telemetry=tel)
        sim.run(_arrivals("fifo"))
        tel.close()
        return read_telemetry(tmp_path / "r.jsonl")

    def test_prometheus_exposition(self, run_outputs):
        _, samples = run_outputs
        text = render_prometheus(samples[-1])
        assert "# TYPE repro_done counter" in text
        assert "repro_done 40" in text
        assert 'repro_core_busy_cycles{core="0"}' in text
        assert 'repro_waiting_cycles{quantile="0.99"}' in text
        assert "repro_waiting_cycles_count" in text

    def test_report_table(self, run_outputs):
        header, samples = run_outputs
        text = render_telemetry_report(header, samples)
        assert "telemetry schema v1" in text
        assert "engine=fast" in text
        assert f"{len(samples)} samples" in text
        assert "jobs done" in text
        assert "in flight" not in text  # run completed

    def test_report_marks_interrupted_runs(self, run_outputs):
        header, samples = run_outputs
        text = render_telemetry_report(header, samples[:-1])
        assert "still in flight or interrupted" in text
