"""Fixtures for the power-budget / DVFS suites."""

import pytest

from tests.scenarios import (  # noqa: F401  (re-exported for tests)
    SUITE_NAMES,
    arrivals_for,
    build_energy_table,
    build_oracle,
    build_small_store,
    make_simulation,
    qos_arrivals,
)


@pytest.fixture(scope="session")
def small_store():
    return build_small_store()


@pytest.fixture(scope="session")
def oracle(small_store):
    return build_oracle(small_store)


@pytest.fixture(scope="session")
def energy_table():
    return build_energy_table()
