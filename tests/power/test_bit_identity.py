"""Golden-grid bit-identity of disabled power configurations.

The power axis's foundational contract: a configuration that enables
nothing — ``cap=inf``, no cluster caps, no DVFS table (slack alone
changes nothing) — normalises to ``None`` and every engine keeps its
exact pre-power code path.  These tests run the policy × discipline ×
preemption grid twice per engine, once without the ``power`` argument
and once with a disabled configuration, and require byte-identical
results, traces and post-run object state on the reference, fast and
streaming engines (the fast-equivalence suite's pattern).
"""

import itertools
import json

import pytest

from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.system import base_system, paper_system
from repro.obs import ListRecorder
from repro.power.budget import PowerConfig
from repro.sim.stream import StreamConfig, StreamingSimulation
from repro.workloads.arrivals import PoissonProcess, QoSProcess
from repro.workloads.eembc import eembc_benchmark

from .conftest import (
    SUITE_NAMES,
    arrivals_for,
    make_simulation,
    qos_arrivals,
)

#: The richest configuration that still enables nothing: an infinite
#: cap and a nonzero slack percentage (slack only matters once a cap
#: forces degraded dispatches).
DISABLED = PowerConfig(cap_nj=float("inf"), slack_pct=30.0)

GRID = [
    (policy, discipline, preemptive)
    for policy, discipline, preemptive in itertools.product(
        POLICY_NAMES, ("fifo", "priority", "edf"), (False, True)
    )
    if not (preemptive and discipline == "fifo")
]

STREAM_GRID = [
    ("base", "fifo", False),
    ("proposed", "fifo", False),
    ("proposed", "priority", True),
    ("optimal", "edf", False),
    ("energy_centric", "priority", True),
]


def _arrivals(discipline):
    if discipline == "fifo":
        return arrivals_for(SUITE_NAMES * 6, gap=30_000)
    return qos_arrivals(repeats=6, gap=30_000, seed=2)


def _assert_state_parity(left, right):
    """Post-run object state must be indistinguishable."""
    assert right.engine.now == left.engine.now
    assert right.engine.processed == left.engine.processed
    assert right.queue.enqueued_total == left.queue.enqueued_total
    assert right.queue.max_length == left.queue.max_length
    for lc, rc in zip(left.cores, right.cores):
        assert rc.busy_cycles == lc.busy_cycles
        assert rc.executions == lc.executions
        assert rc.dvfs == lc.dvfs
        assert rc.tuner.current == lc.tuner.current
        assert rc.tuner.reconfigurations == lc.tuner.reconfigurations
        assert rc.tuner.total_energy_nj == lc.tuner.total_energy_nj
    assert right.table.benchmarks() == left.table.benchmarks()
    for name in left.table.benchmarks():
        lp, rp = left.table.profile(name), right.table.profile(name)
        assert rp.predicted_size_kb == lp.predicted_size_kb
        assert rp.tuned_sizes == lp.tuned_sizes
        assert set(rp.executions) == set(lp.executions)
        for config, record in lp.executions.items():
            other = rp.executions[config]
            assert other.total_energy_nj == record.total_energy_nj
            assert other.total_cycles == record.total_cycles


class TestDisabledPowerGoldenGrid:
    @pytest.mark.parametrize("engine", ("reference", "fast"))
    @pytest.mark.parametrize("policy,discipline,preemptive", GRID)
    def test_bit_identical_to_powerless_run(
        self, policy, discipline, preemptive, engine, small_store,
        oracle, energy_table,
    ):
        arrivals = _arrivals(discipline)
        kwargs = dict(
            discipline=discipline, preemptive=preemptive, engine=engine,
        )
        base = make_simulation(
            policy, small_store, oracle, energy_table, **kwargs
        )
        powered = make_simulation(
            policy, small_store, oracle, energy_table,
            power=DISABLED, **kwargs
        )
        # Normalisation strips the disabled configuration entirely.
        assert powered.power is None
        assert powered.power_pool is None
        assert base.run(arrivals) == powered.run(arrivals)
        _assert_state_parity(base, powered)

    def test_traces_byte_identical(self, small_store, oracle,
                                   energy_table):
        """The recorded event stream must not change at all — no
        ``TokenGrant``/``PowerThrottled`` events from a disabled axis."""
        arrivals = qos_arrivals(repeats=6, gap=30_000, seed=2)
        events = {}
        for key, power in (("base", None), ("disabled", DISABLED)):
            recorder = ListRecorder()
            sim = make_simulation(
                "proposed", small_store, oracle, energy_table,
                discipline="priority", preemptive=True,
                recorder=recorder, power=power,
            )
            sim.run(arrivals)
            events[key] = [
                json.dumps(e.to_dict(), sort_keys=True)
                for e in recorder.events
            ]
        assert events["base"] == events["disabled"]

    def test_all_disabled_shapes_normalize_away(self, small_store,
                                                oracle):
        for power in (
            PowerConfig(),
            PowerConfig(cap_nj=float("inf")),
            PowerConfig(slack_pct=50.0),
        ):
            sim = make_simulation("proposed", small_store, oracle,
                                  power=power)
            assert sim.power is None and sim.power_pool is None


class TestDisabledPowerStreaming:
    def _engine(self, policy_name, discipline, preemptive, store,
                oracle, energy_table, power):
        policy = make_policy(policy_name)
        system = (
            base_system() if policy_name == "base" else paper_system()
        )
        return StreamingSimulation(
            system,
            policy,
            store,
            predictor=oracle if policy.uses_predictor else None,
            energy_table=energy_table,
            config=StreamConfig(max_jobs=80),
            discipline=discipline,
            preemptive=preemptive,
            power=power,
        )

    def _process(self, qos):
        specs = [eembc_benchmark(name) for name in SUITE_NAMES]
        process = PoissonProcess(
            specs, mean_interarrival_cycles=25_000.0, seed=7
        )
        if qos:
            process = QoSProcess(
                process,
                service_estimate=lambda name: 400_000,
                priority_levels=4,
                seed=7,
            )
        return process

    @pytest.mark.parametrize("policy,discipline,preemptive", STREAM_GRID)
    def test_stream_bit_identical_and_snapshot_equal(
        self, policy, discipline, preemptive, small_store, oracle,
        energy_table,
    ):
        qos = discipline != "fifo"
        results = {}
        snapshots = {}
        for key, power in (("base", None), ("disabled", DISABLED)):
            engine = self._engine(
                policy, discipline, preemptive, small_store, oracle,
                energy_table, power,
            )
            engine.start(self._process(qos))
            while engine.advance():
                pass
            results[key] = engine.result()
            snapshots[key] = json.dumps(
                engine.snapshot(), sort_keys=True
            )
        assert results["base"] == results["disabled"]
        assert results["disabled"].power is None
        # The strong form: the entire serialised state agrees byte for
        # byte, including the snapshot's null power account.
        assert snapshots["base"] == snapshots["disabled"]
