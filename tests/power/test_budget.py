"""Unit tests for the power package: config, pool, ladder, DVFS."""

import pytest

from repro.campaign import power_grid
from repro.power.budget import (
    PowerConfig,
    TokenPool,
    normalize_power,
    pick_degraded,
    slack_admissible,
)
from repro.power.dvfs import (
    DEFAULT_DVFS_TABLE,
    DvfsPoint,
    DvfsTable,
)


class TestPowerConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="cap_nj must be positive"):
            PowerConfig(cap_nj=0.0)
        with pytest.raises(ValueError, match="cap_nj must be positive"):
            PowerConfig(cap_nj=-5.0)
        with pytest.raises(ValueError, match="sorted"):
            PowerConfig(cluster_caps_nj=((8, 100.0), (4, 100.0)))
        with pytest.raises(ValueError, match="sorted"):
            PowerConfig(cluster_caps_nj=((4, 100.0), (4, 200.0)))
        with pytest.raises(ValueError, match="cluster cap"):
            PowerConfig(cluster_caps_nj=((4, 0.0),))
        with pytest.raises(ValueError, match="slack_pct"):
            PowerConfig(slack_pct=-1.0)

    def test_enabled(self):
        assert not PowerConfig().enabled
        assert not PowerConfig(cap_nj=float("inf")).enabled
        assert not PowerConfig(slack_pct=40.0).enabled
        assert PowerConfig(cap_nj=1e6).enabled
        assert PowerConfig(cluster_caps_nj=((4, 1e5),)).enabled
        assert PowerConfig(dvfs=DEFAULT_DVFS_TABLE).enabled

    def test_normalize(self):
        assert normalize_power(None) is None
        assert normalize_power(PowerConfig()) is None
        assert normalize_power(PowerConfig(slack_pct=20.0)) is None
        enabled = PowerConfig(cap_nj=1e6)
        assert normalize_power(enabled) is enabled
        with pytest.raises(TypeError, match="PowerConfig"):
            normalize_power({"cap_nj": 1e6})

    def test_labels(self):
        assert PowerConfig(cap_nj=1e6).label == "cap=1e+06"
        assert (
            PowerConfig(
                cap_nj=250_000.0,
                cluster_caps_nj=((4, 100_000.0),),
                slack_pct=20.0,
                dvfs=DEFAULT_DVFS_TABLE,
            ).label
            == "cap=250000~4kb=100000~slack=20~dvfs"
        )
        assert PowerConfig(dvfs=DEFAULT_DVFS_TABLE).label == "cap=inf~dvfs"

    def test_dict_round_trip(self):
        config = PowerConfig(
            cap_nj=5e5,
            cluster_caps_nj=((2, 1e5), (8, 3e5)),
            slack_pct=12.5,
            dvfs=DEFAULT_DVFS_TABLE,
        )
        assert PowerConfig.from_dict(config.to_dict()) == config
        # The payload is JSON-safe (lists, plain floats, no tuples).
        import json

        assert json.loads(json.dumps(config.to_dict())) == config.to_dict()


class TestTokenPool:
    def test_accounting_cycle(self):
        pool = TokenPool(PowerConfig(cap_nj=1000.0))
        assert pool.idle()
        pool.grant(1, 400.0, 4)
        pool.grant(2, 500.0, 8)
        assert not pool.idle()
        assert pool.outstanding_nj == 900.0
        assert not pool.affordable(200.0, 4)
        assert pool.affordable(100.0, 4)
        assert pool.consume(1) == 400.0
        assert pool.outstanding_nj == 500.0
        assert pool.refund(2, 300.0) == 500.0
        assert pool.idle()
        assert pool.granted_nj == 900.0
        assert pool.refunded_nj == 300.0
        # consumed = granted - refunded - outstanding.
        assert pool.consumed_nj == 600.0
        assert pool.grants == 2 and pool.refunds == 1

    def test_double_grant_rejected(self):
        pool = TokenPool(PowerConfig(cap_nj=1000.0))
        pool.grant(1, 10.0, 4)
        with pytest.raises(RuntimeError, match="already holds"):
            pool.grant(1, 10.0, 4)

    def test_cluster_caps(self):
        pool = TokenPool(
            PowerConfig(cap_nj=1e6, cluster_caps_nj=((4, 100.0),))
        )
        pool.grant(1, 80.0, 4)
        assert not pool.affordable(30.0, 4)   # 4KB cluster exhausted
        assert pool.affordable(30.0, 8)       # other clusters uncapped
        assert pool.cluster_outstanding_nj(4) == 80.0
        assert pool.cluster_outstanding_nj(8) == 0.0

    def test_state_dict_round_trip(self):
        pool = TokenPool(PowerConfig(cap_nj=1000.0))
        pool.grant(3, 120.0, 4)
        pool.grant(7, 80.0, 8)
        pool.refund(3, 60.0)
        pool.throttled = 5
        pool.degraded = 2
        pool.overdrafts = 1
        clone = TokenPool(PowerConfig(cap_nj=1000.0))
        clone.load_state(pool.state_dict())
        assert clone.state_dict() == pool.state_dict()
        assert clone.outstanding_nj == pool.outstanding_nj
        assert clone.consumed_nj == pool.consumed_nj


class TestSlackAndLadder:
    def test_slack_admissible(self):
        # Deadline-free jobs degrade freely.
        assert slack_admissible(100, 10_000, 0, None, 0.0)
        # Exactly on the deadline is admitted, one cycle past is not.
        assert slack_admissible(0, 1000, 0, 1000, 0.0)
        assert not slack_admissible(1, 1000, 0, 1000, 0.0)
        # slack_pct extends the limit by a fraction of the QoS budget.
        assert slack_admissible(1, 1099, 0, 1000, 10.0)
        assert not slack_admissible(1, 1100, 0, 1000, 10.0)

    def test_pick_degraded_prefers_least_degraded(self):
        pool = TokenPool(PowerConfig(cap_nj=100.0))
        picked = pick_degraded(
            pool, 4, 200.0,
            [
                (90.0, 1000, 0, "a"),
                (95.0, 1100, 1, "b"),
                (40.0, 2000, 2, "c"),
            ],
            now=0, arrival_cycle=0, deadline_cycle=None, slack_pct=0.0,
        )
        assert picked == "b"  # most expensive affordable option

    def test_pick_degraded_ties_break_on_rank(self):
        pool = TokenPool(PowerConfig(cap_nj=100.0))
        picked = pick_degraded(
            pool, 4, 200.0,
            [(50.0, 1000, 3, "late"), (50.0, 1000, 1, "early")],
            now=0, arrival_cycle=0, deadline_cycle=None, slack_pct=0.0,
        )
        assert picked == "early"

    def test_pick_degraded_honours_slack_and_budget(self):
        pool = TokenPool(PowerConfig(cap_nj=100.0))
        # The cheaper option misses even the slack-extended deadline.
        picked = pick_degraded(
            pool, 4, 200.0,
            [(90.0, 5_000, 0, "slow"), (80.0, 300, 1, "fast")],
            now=800, arrival_cycle=0, deadline_cycle=1000, slack_pct=20.0,
        )
        assert picked == "fast"
        # Nothing affordable at all -> None.
        pool.grant(1, 95.0, 4)
        assert pick_degraded(
            pool, 4, 200.0,
            [(90.0, 100, 0, "x")],
            now=0, arrival_cycle=0, deadline_cycle=None, slack_pct=0.0,
        ) is None

    def test_only_strictly_cheaper_options_count(self):
        pool = TokenPool(PowerConfig(cap_nj=1e6))
        assert pick_degraded(
            pool, 4, 50.0,
            [(50.0, 100, 0, "same"), (60.0, 100, 1, "worse")],
            now=0, arrival_cycle=0, deadline_cycle=None, slack_pct=0.0,
        ) is None


class TestDvfs:
    def test_point_validation_and_factors(self):
        with pytest.raises(ValueError, match="freq_scale"):
            DvfsPoint("x", 0.0, 0.5)
        with pytest.raises(ValueError, match="volt_scale"):
            DvfsPoint("x", 0.5, 1.5)
        point = DvfsPoint("eco", 0.8, 0.9)
        assert point.dyn_factor == pytest.approx(0.81)
        assert point.static_factor == pytest.approx(0.9 / 0.8)
        assert DvfsPoint("n", 1.0, 1.0).is_nominal

    def test_table_validation(self):
        nominal = DvfsPoint("nominal", 1.0, 1.0)
        with pytest.raises(ValueError, match="at least one point"):
            DvfsTable(points=())
        with pytest.raises(ValueError, match="must be nominal"):
            DvfsTable(points=(DvfsPoint("eco", 0.8, 0.9),))
        with pytest.raises(ValueError, match="descend strictly"):
            DvfsTable(points=(
                nominal,
                DvfsPoint("a", 0.6, 0.8),
                DvfsPoint("b", 0.8, 0.9),
            ))
        with pytest.raises(ValueError, match="duplicate"):
            DvfsTable(points=(nominal, DvfsPoint("nominal", 0.8, 0.9)))

    def test_lookup(self):
        table = DEFAULT_DVFS_TABLE
        assert table.default.is_nominal
        assert table.names == ("nominal", "eco", "slow")
        assert table.get("eco").freq_scale == 0.8
        assert table.index("slow") == 2
        with pytest.raises(ValueError, match="unknown operating point"):
            table.get("turbo")

    def test_round_trips(self):
        table = DEFAULT_DVFS_TABLE
        assert DvfsTable.from_dict(table.to_dict()) == table
        assert DvfsTable.from_spec(table.spec()) == table
        with pytest.raises(ValueError, match="name:freq:volt"):
            DvfsTable.from_spec("eco")


class TestPowerGrid:
    def test_caps_times_slacks(self):
        grid = power_grid([None, 4e5], slacks=[0.0, 20.0])
        labels = [None if p is None else p.label for p in grid]
        # The two disabled (cap, slack) pairs collapse to one baseline.
        assert labels == [None, "cap=400000", "cap=400000~slack=20"]

    def test_inf_cap_is_uncapped(self):
        grid = power_grid([float("inf"), 4e5])
        assert grid[0] is None
        assert grid[1].cap_nj == 4e5

    def test_dvfs_makes_every_cell_powered(self):
        grid = power_grid([None, 4e5], dvfs=DEFAULT_DVFS_TABLE)
        assert [p.label for p in grid] == ["cap=inf~dvfs", "cap=400000~dvfs"]

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="power cap"):
            power_grid([])
        with pytest.raises(ValueError, match="slack"):
            power_grid([None], slacks=[])
