"""Property tests for the power axis.

Three contracts from the issue, Hypothesis-driven where the input space
matters and pinned where the scenario is the specification:

* token conservation — the pool's account agrees with the validation
  ledger's ``fsum``-exact token lists at ``2**-40`` relative tolerance,
  on randomly drawn cap/slack/DVFS/queue-shape combinations;
* a pinned congested sweep shows the energy / deadline trade-off:
  tokens consumed monotone non-increasing and the deadline-miss rate
  monotone non-decreasing as the cap tightens;
* DVFS/pool state survives ``state_dict``/``load_state`` exactly, and a
  powered streaming run killed at any point resumes bit-identically
  (byte-identical final snapshots, same settled token account).
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import make_policy
from repro.core.system import paper_system
from repro.power.budget import PowerConfig, TokenPool
from repro.power.dvfs import DEFAULT_DVFS_TABLE
from repro.sim.stream import (
    STREAM_SNAPSHOT_VERSION,
    StreamConfig,
    StreamingSimulation,
)
from repro.validate.ledger import REL_TOLERANCE
from repro.workloads.arrivals import PoissonProcess, QoSProcess
from repro.workloads.eembc import eembc_benchmark

from .conftest import SUITE_NAMES, make_simulation, qos_arrivals

#: The pinned congested scenario: EDF-ordered QoS stream dense enough
#: that the cap binds, caps descending through the region where the
#: trade-off is monotone (the loose end, where the first degraded
#: dispatches can *help* EDF by rebalancing load, is pinned separately
#: by the bit-identity suite's uncapped baseline).
PINNED_CAPS = (1_000_000.0, 500_000.0, 250_000.0, 125_000.0)


def _pinned_arrivals():
    return qos_arrivals(repeats=10, gap=12_000, seed=2)


def _run_pinned(store, oracle, energy_table, cap, *, engine="fast",
                validate=False):
    sim = make_simulation(
        "proposed", store, oracle, energy_table,
        discipline="edf", preemptive=False, engine=engine,
        validate=validate, power=PowerConfig(cap_nj=cap),
    )
    result = sim.run(_pinned_arrivals())
    return sim, result


class TestTokenConservation:
    @given(
        cap=st.sampled_from((200_000.0, 400_000.0, 800_000.0)),
        slack=st.sampled_from((0.0, 25.0)),
        dvfs=st.booleans(),
        shape=st.sampled_from(
            (("fifo", False), ("priority", False), ("priority", True),
             ("edf", False), ("edf", True))
        ),
        gap=st.integers(min_value=8_000, max_value=40_000),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_pool_agrees_with_ledger(
        self, cap, slack, dvfs, shape, gap, seed, small_store, oracle,
        energy_table,
    ):
        discipline, preemptive = shape
        power = PowerConfig(
            cap_nj=cap,
            slack_pct=slack,
            dvfs=DEFAULT_DVFS_TABLE if dvfs else None,
        )
        sim = make_simulation(
            "proposed", small_store, oracle, energy_table,
            discipline=discipline, preemptive=preemptive,
            validate=True, power=power,
        )
        arrivals = qos_arrivals(repeats=5, gap=gap, seed=seed)
        # validate=True already raises on any ledger/invariant breach,
        # including the run-end token-conservation check.
        result = sim.run(arrivals)
        assert result.jobs_completed == len(arrivals)

        pool = sim.power_pool
        ledger = sim._validator.ledger
        # Every grant settled: nothing still held after the drain.
        assert pool.idle()
        assert pool.grants == len(ledger.token_grants)
        assert pool.refunds == len(ledger.token_refunds)
        # The pool's running gauges agree with the ledger's exact fsum
        # account at the validation tolerance.
        net = ledger.token_granted_nj - ledger.token_refunded_nj
        assert math.isclose(
            pool.consumed_nj, net, rel_tol=REL_TOLERANCE, abs_tol=1e-9
        )
        assert pool.grants >= result.jobs_completed


class TestPinnedMonotoneFrontier:
    @pytest.fixture(scope="class")
    def sweep(self, small_store, oracle, energy_table):
        rows = []
        for cap in PINNED_CAPS:
            sim, result = _run_pinned(
                small_store, oracle, energy_table, cap
            )
            rows.append(
                (cap, sim.power_pool.consumed_nj,
                 result.deadline_miss_rate, sim.power_pool.throttled)
            )
        return rows

    def test_energy_monotone_non_increasing(self, sweep):
        consumed = [row[1] for row in sweep]
        assert consumed == sorted(consumed, reverse=True), sweep

    def test_miss_rate_monotone_non_decreasing(self, sweep):
        misses = [row[2] for row in sweep]
        assert misses == sorted(misses), sweep
        # The pinned caps genuinely bind: the extremes differ.
        assert misses[-1] > misses[0]

    def test_caps_bind(self, sweep):
        assert all(row[3] > 0 for row in sweep), sweep

    def test_ledger_validates_sweep_extremes(self, small_store, oracle,
                                             energy_table):
        """The acceptance criterion: the pinned sweep's conservation is
        ledger-checked, not just pool-reported (reference engine)."""
        for cap in (PINNED_CAPS[0], PINNED_CAPS[-1]):
            sim, result = _run_pinned(
                small_store, oracle, energy_table, cap,
                engine="reference", validate=True,
            )
            pool = sim.power_pool
            ledger = sim._validator.ledger
            assert pool.idle()
            net = ledger.token_granted_nj - ledger.token_refunded_nj
            assert math.isclose(
                pool.consumed_nj, net,
                rel_tol=REL_TOLERANCE, abs_tol=1e-9,
            )

    @pytest.mark.parametrize("cap", (PINNED_CAPS[0], PINNED_CAPS[-1]))
    def test_reference_and_fast_agree_powered(self, cap, small_store,
                                              oracle, energy_table):
        """Engine equivalence holds with the power axis *enabled* too."""
        ref_sim, ref = _run_pinned(
            small_store, oracle, energy_table, cap, engine="reference"
        )
        fast_sim, fast = _run_pinned(
            small_store, oracle, energy_table, cap, engine="fast"
        )
        assert ref == fast
        assert (
            fast_sim.power_pool.state_dict()
            == ref_sim.power_pool.state_dict()
        )


STREAM_POWER = PowerConfig(
    cap_nj=300_000.0,
    cluster_caps_nj=((4, 150_000.0),),
    slack_pct=25.0,
    dvfs=DEFAULT_DVFS_TABLE,
)

N_JOBS = 120


def _stream_engine(store, oracle, energy_table, power=STREAM_POWER):
    policy = make_policy("proposed")
    return StreamingSimulation(
        paper_system(),
        policy,
        store,
        predictor=oracle,
        energy_table=energy_table,
        config=StreamConfig(max_jobs=N_JOBS),
        discipline="priority",
        preemptive=True,
        power=power,
    )


def _stream_process():
    specs = [eembc_benchmark(name) for name in SUITE_NAMES]
    return QoSProcess(
        PoissonProcess(specs, mean_interarrival_cycles=10_000.0, seed=3),
        service_estimate=lambda name: 400_000,
        priority_levels=4,
        seed=3,
    )


class TestPoweredCheckpointResume:
    @given(kill_at=st.integers(min_value=1, max_value=N_JOBS - 1))
    @settings(max_examples=10, deadline=None)
    def test_kill_resume_byte_identical(self, kill_at, small_store,
                                        oracle, energy_table):
        straight = _stream_engine(small_store, oracle, energy_table)
        straight.start(_stream_process())
        while straight.advance():
            pass
        baseline = straight.result()
        assert baseline.power is not None
        assert baseline.power["grants"] >= N_JOBS

        killed = _stream_engine(small_store, oracle, energy_table)
        killed.start(_stream_process())
        killed.advance(max_completions=kill_at)
        snapshot = json.loads(json.dumps(killed.snapshot()))
        assert snapshot["version"] == STREAM_SNAPSHOT_VERSION
        assert snapshot["engine"]["power"] is not None

        resumed = _stream_engine(small_store, oracle, energy_table)
        result = resumed.resume(snapshot, _stream_process())
        assert result == baseline
        assert result.power == baseline.power
        assert json.dumps(
            resumed.snapshot(), sort_keys=True
        ) == json.dumps(straight.snapshot(), sort_keys=True)

    def test_power_fingerprint_mismatch_fails_loudly(
        self, small_store, oracle, energy_table
    ):
        donor = _stream_engine(small_store, oracle, energy_table)
        donor.start(_stream_process())
        donor.advance(max_completions=10)
        snapshot = donor.snapshot()
        unpowered = _stream_engine(
            small_store, oracle, energy_table, power=None
        )
        with pytest.raises(ValueError, match="power"):
            unpowered.restore(snapshot, _stream_process())
