"""Property-based tests for the ANN substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ann.activations import make_activation, ACTIVATION_NAMES
from repro.ann.bagging import BaggedRegressor
from repro.ann.network import MLP
from repro.ann.preprocessing import StandardScaler, snap_to_classes
from repro.ann.training import TrainingConfig

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestActivationProperties:
    @given(
        name=st.sampled_from(ACTIVATION_NAMES),
        x=arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 5)),
                 elements=finite_floats),
    )
    @settings(max_examples=50, deadline=None)
    def test_shape_preserved(self, name, x):
        act = make_activation(name)
        assert act.forward(x).shape == x.shape
        assert act.backward(x, np.ones_like(x)).shape == x.shape

    @given(
        x=arrays(np.float64, st.integers(1, 20), elements=finite_floats),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_activations(self, x):
        """tanh/sigmoid/relu are nondecreasing."""
        ordered = np.sort(x)
        for name in ("tanh", "sigmoid", "relu"):
            y = make_activation(name).forward(ordered)
            assert (np.diff(y) >= -1e-12).all()


class TestScalerProperties:
    @given(
        x=arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 6)),
            elements=st.floats(min_value=-1e6, max_value=1e6,
                               allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, x):
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        back = scaler.inverse_transform(z)
        assert np.allclose(back, x, atol=1e-6 * (1 + np.abs(x).max()))

    @given(
        x=arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 6)),
            elements=st.floats(min_value=-1e6, max_value=1e6,
                               allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_output_finite(self, x):
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()


class TestSnapProperties:
    @given(
        values=arrays(np.float64, st.integers(1, 30), elements=finite_floats),
        classes=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1, max_size=6, unique=True,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_snap_returns_legal_class(self, values, classes):
        snapped = snap_to_classes(values, classes)
        legal = set(classes)
        assert all(v in legal for v in snapped)

    @given(
        values=arrays(np.float64, st.integers(1, 30), elements=finite_floats),
        classes=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1, max_size=6, unique=True,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_snap_idempotent(self, values, classes):
        once = snap_to_classes(values, classes)
        assert (snap_to_classes(once, classes) == once).all()

    @given(
        values=arrays(np.float64, st.integers(1, 30), elements=finite_floats),
        classes=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1, max_size=6, unique=True,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_snap_is_nearest(self, values, classes):
        snapped = snap_to_classes(values, classes)
        for value, choice in zip(values, snapped):
            best = min(abs(value - c) for c in classes)
            assert abs(value - choice) <= best + 1e-9


class TestNetworkProperties:
    @given(
        seed=st.integers(0, 1000),
        batch=st.integers(1, 8),
        in_features=st.integers(1, 6),
        hidden=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_forward_finite_on_bounded_input(self, seed, batch, in_features,
                                             hidden):
        net = MLP(in_features, (hidden,), 1, seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.uniform(-10, 10, size=(batch, in_features))
        out = net.forward(x)
        assert out.shape == (batch, 1)
        assert np.isfinite(out).all()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_weight_round_trip_exact(self, seed):
        net = MLP(3, (5,), 1, seed=seed)
        saved = net.get_weights()
        x = np.ones((2, 3))
        before = net.forward(x)
        net.set_weights(saved)
        assert (net.forward(x) == before).all()


class TestTrainingEngineProperties:
    """The batched engine is the sequential loop, vectorised."""

    @given(
        seed=st.integers(0, 200),
        n_members=st.integers(1, 4),
        hidden=st.integers(2, 8),
        patience=st.one_of(st.none(), st.integers(2, 10)),
        batch_size=st.integers(4, 20),
    )
    @settings(max_examples=15, deadline=None)
    def test_engines_produce_identical_members(
        self, seed, n_members, hidden, patience, batch_size
    ):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(30, 3))
        y = x @ np.array([[0.4], [-0.2], [0.1]])
        x_val = rng.normal(size=(8, 3))
        y_val = x_val @ np.array([[0.4], [-0.2], [0.1]])
        config = TrainingConfig(
            epochs=12, batch_size=batch_size, patience=patience, seed=seed
        )
        a = BaggedRegressor(
            in_features=3, n_members=n_members, hidden=(hidden,), seed=seed
        )
        b = BaggedRegressor(
            in_features=3, n_members=n_members, hidden=(hidden,), seed=seed
        )
        ha = a.fit(x, y, x_val=x_val, y_val=y_val, config=config,
                   engine="sequential")
        hb = b.fit(x, y, x_val=x_val, y_val=y_val, config=config,
                   engine="batched")
        assert [h.epochs_run for h in ha] == [h.epochs_run for h in hb]
        assert (a.member_predictions(x) == b.member_predictions(x)).all()
