"""Property-based tests for arrival-stream generation."""

from hypothesis import given, settings, strategies as st

from repro.workloads.arrivals import poisson_arrivals, uniform_arrivals, with_qos
from repro.workloads.eembc import eembc_suite


class TestUniformArrivalProperties:
    @given(count=st.integers(1, 300), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_sorted_and_sized(self, count, seed):
        arrivals = uniform_arrivals(eembc_suite(), count=count, seed=seed)
        times = [a.arrival_cycle for a in arrivals]
        assert len(arrivals) == count
        assert times == sorted(times)
        assert [a.job_id for a in arrivals] == list(range(count))

    @given(
        count=st.integers(1, 200),
        horizon=st.integers(1, 10**8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_within_horizon(self, count, horizon, seed):
        arrivals = uniform_arrivals(
            eembc_suite(), count=count, horizon_cycles=horizon, seed=seed
        )
        assert all(0 <= a.arrival_cycle < horizon for a in arrivals)

    @given(count=st.integers(1, 100), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_poisson_sorted(self, count, seed):
        arrivals = poisson_arrivals(eembc_suite(), count=count, seed=seed)
        times = [a.arrival_cycle for a in arrivals]
        assert times == sorted(times)


class TestQosAnnotationProperties:
    @given(
        count=st.integers(1, 100),
        levels=st.integers(1, 8),
        slack=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
        fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_annotation_invariants(self, count, levels, slack, fraction,
                                   seed):
        arrivals = uniform_arrivals(eembc_suite(), count=count, seed=seed)
        annotated = with_qos(
            arrivals,
            service_estimate=lambda name: 50_000,
            priority_levels=levels,
            deadline_slack=slack,
            deadline_fraction=fraction,
            seed=seed,
        )
        assert len(annotated) == count
        for before, after in zip(arrivals, annotated):
            # Identity fields untouched.
            assert after.job_id == before.job_id
            assert after.benchmark == before.benchmark
            assert after.arrival_cycle == before.arrival_cycle
            # Annotations within bounds.
            assert 0 <= after.priority < levels
            if after.deadline_cycle is not None:
                assert after.deadline_cycle == before.arrival_cycle + int(
                    round(slack * 50_000)
                )

    @given(count=st.integers(1, 60), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_fraction_extremes(self, count, seed):
        arrivals = uniform_arrivals(eembc_suite(), count=count, seed=seed)
        none = with_qos(arrivals, service_estimate=lambda n: 1000,
                        deadline_fraction=0.0, seed=seed)
        assert all(a.deadline_cycle is None for a in none)
        every = with_qos(arrivals, service_estimate=lambda n: 1000,
                         deadline_fraction=1.0, seed=seed)
        assert all(a.deadline_cycle is not None for a in every)
