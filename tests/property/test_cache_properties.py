"""Property-based tests for the cache substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache, simulate_trace, simulate_trace_per_config
from repro.cache.config import DESIGN_SPACE, CacheConfig
from repro.cache.stackdist import simulate_many

configs = st.sampled_from(DESIGN_SPACE)

traces = st.lists(
    st.integers(min_value=0, max_value=64 * 1024 - 1),
    min_size=1,
    max_size=400,
)


def _reference_stats(trace, config, writes=None):
    cache = Cache(config, policy="lru")
    return cache.run_trace(trace, writes)


class TestFastPathEquivalence:
    @given(trace=traces, config=configs)
    @settings(max_examples=60, deadline=None)
    def test_fast_path_matches_reference(self, trace, config):
        fast = simulate_trace(trace, config)
        ref = _reference_stats(trace, config)
        assert fast.hits == ref.hits
        assert fast.misses == ref.misses
        assert fast.evictions == ref.evictions
        assert fast.compulsory_misses == ref.compulsory_misses

    @given(trace=traces, config=configs, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_write_breakdown_consistent(self, trace, config, seed):
        rng = np.random.default_rng(seed)
        writes = (rng.random(len(trace)) < 0.4).tolist()
        stats = simulate_trace(trace, config, writes=writes)
        stats.validate()
        assert stats.write_accesses == sum(writes)


class TestStackDistanceEngineEquivalence:
    """The single-pass engine must equal the reference model, exactly.

    CacheStats is a plain dataclass, so ``==`` compares every counter:
    hits, misses, read/write breakdown, evictions, fills, compulsory
    misses — across the full 18-configuration design space at once.
    """

    @given(trace=traces)
    @settings(max_examples=25, deadline=None)
    def test_all_configs_match_reference(self, trace):
        many = simulate_many(trace, DESIGN_SPACE)
        for config in DESIGN_SPACE:
            assert many[config] == _reference_stats(trace, config), config.name

    @given(trace=traces, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_all_configs_match_reference_with_writes(self, trace, seed):
        rng = np.random.default_rng(seed)
        writes = rng.random(len(trace)) < 0.4
        many = simulate_many(np.asarray(trace), DESIGN_SPACE, writes=writes)
        for config in DESIGN_SPACE:
            ref = _reference_stats(trace, config, writes.tolist())
            assert many[config] == ref, config.name

    @given(trace=traces, config=configs, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_matches_legacy_per_config_replay(self, trace, config, seed):
        rng = np.random.default_rng(seed)
        writes = rng.random(len(trace)) < 0.4
        legacy = simulate_trace_per_config(trace, config, writes=writes)
        assert simulate_trace(trace, config, writes=writes) == legacy

    @given(trace=traces)
    @settings(max_examples=20, deadline=None)
    def test_generic_deep_assoc_path(self, trace):
        # max_assoc > 4 exercises the generic stack fallback.
        config = CacheConfig(8, 8, 64)
        many = simulate_many(trace, (config,))
        assert many[config] == _reference_stats(trace, config)


class TestCacheInvariants:
    @given(trace=traces, config=configs)
    @settings(max_examples=40, deadline=None)
    def test_counter_consistency(self, trace, config):
        stats = simulate_trace(trace, config)
        stats.validate()
        assert stats.accesses == len(trace)
        assert stats.fills == stats.misses  # write-allocate, all reads
        assert 0.0 <= stats.miss_rate <= 1.0

    @given(trace=traces, config=configs)
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded(self, trace, config):
        cache = Cache(config)
        cache.run_trace(trace)
        assert cache.resident_lines <= config.num_lines
        assert cache.resident_lines <= len(set(a // config.line_b for a in trace))

    @given(trace=traces, config=configs)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, trace, config):
        a = simulate_trace(trace, config)
        b = simulate_trace(trace, config)
        assert a.hits == b.hits

    @given(trace=traces)
    @settings(max_examples=30, deadline=None)
    def test_lru_inclusion_same_sets_more_ways(self, trace):
        """LRU inclusion: equal set count, more ways => no more misses."""
        # 4KB 1-way 32B and 8KB 2-way 32B both have 128 sets.
        fewer = simulate_trace(trace, CacheConfig(4, 1, 32))
        more = simulate_trace(trace, CacheConfig(8, 2, 32))
        assert more.misses <= fewer.misses

    @given(trace=traces)
    @settings(max_examples=30, deadline=None)
    def test_repeating_trace_second_pass_hits_in_big_cache(self, trace):
        """A trace fitting the cache entirely hits on its second pass."""
        config = CacheConfig(8, 4, 64)
        per_set = {}
        for address in trace:
            line = address // 64
            per_set.setdefault(line % config.num_sets, set()).add(line)
        if any(len(lines) > config.assoc for lines in per_set.values()):
            return  # some set overflows; conflict misses possible
        double = list(trace) + list(trace)
        single = simulate_trace(trace, config)
        both = simulate_trace(double, config)
        # With every set's working lines fitting its ways, the second
        # pass cannot miss.
        assert both.misses == single.misses

    @given(trace=traces, config=configs)
    @settings(max_examples=30, deadline=None)
    def test_flush_resets_contents_not_counters(self, trace, config):
        cache = Cache(config)
        cache.run_trace(trace)
        accesses_before = cache.stats.accesses
        cache.flush()
        assert cache.resident_lines == 0
        assert cache.stats.accesses == accesses_before
