"""Property-based tests for the energy model."""

from hypothesis import given, settings, strategies as st

from repro.cache.config import DESIGN_SPACE
from repro.cache.stats import CacheStats
from repro.energy.model import EnergyModel
from repro.energy.tables import EnergyTable

MODEL = EnergyModel()
TABLE = EnergyTable(MODEL)

configs = st.sampled_from(DESIGN_SPACE)
counts = st.integers(min_value=0, max_value=10**7)


def stats_for(hits, misses):
    return CacheStats(
        accesses=hits + misses, hits=hits, misses=misses,
        read_accesses=hits + misses, read_misses=misses, fills=misses,
    )


class TestEnergyProperties:
    @given(config=configs, hits=counts, misses=counts)
    @settings(max_examples=100, deadline=None)
    def test_dynamic_energy_nonnegative_and_linear(self, config, hits, misses):
        stats = stats_for(hits, misses)
        energy = MODEL.dynamic_energy_nj(config, stats)
        assert energy >= 0
        doubled = MODEL.dynamic_energy_nj(config, stats_for(2 * hits, 2 * misses))
        assert abs(doubled - 2 * energy) < 1e-6 * max(1.0, energy)

    @given(config=configs, hits=counts, misses=counts)
    @settings(max_examples=60, deadline=None)
    def test_more_misses_cost_more(self, config, hits, misses):
        base = MODEL.dynamic_energy_nj(config, stats_for(hits, misses))
        worse = MODEL.dynamic_energy_nj(config, stats_for(hits, misses + 1))
        assert worse > base

    @given(
        config=configs,
        instructions=st.integers(1, 10**7),
        misses=counts,
    )
    @settings(max_examples=60, deadline=None)
    def test_cycles_decompose(self, config, instructions, misses):
        total = MODEL.total_cycles(config, instructions, misses)
        assert total == instructions + MODEL.miss_cycles(config, misses)

    @given(config=configs)
    @settings(max_examples=30, deadline=None)
    def test_table_matches_model(self, config):
        constants = TABLE.get(config)
        assert constants.hit_energy_nj == MODEL.hit_energy_nj(config)
        assert constants.miss_energy_nj == MODEL.miss_energy_nj(config)

    @given(
        config=configs,
        instructions=st.integers(1, 10**6),
        hits=counts,
        misses=st.integers(0, 10**5),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_internally_consistent(self, config, instructions,
                                            hits, misses):
        estimate = MODEL.estimate(config, instructions, stats_for(hits, misses))
        assert estimate.total_cycles >= instructions
        assert estimate.total_energy_nj >= estimate.energy.dynamic_nj
        assert estimate.miss_cycles == misses * MODEL.miss_stall_cycles_per_miss(
            config
        )

    @given(cycles=st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_idle_energy_monotone_in_size(self, cycles):
        small = MODEL.idle_energy_nj(DESIGN_SPACE[0], cycles)  # 2KB
        large = MODEL.idle_energy_nj(DESIGN_SPACE[-1], cycles)  # 8KB
        assert small <= large
