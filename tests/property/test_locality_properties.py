"""Property-based tests for the locality analysis tools."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache
from repro.cache.config import CacheConfig
from repro.workloads.locality import (
    miss_ratio_curve,
    reuse_distance_histogram,
    working_set_curve,
)

traces = st.lists(
    st.integers(min_value=0, max_value=16 * 1024 - 1),
    min_size=1,
    max_size=300,
)


class TestReuseDistanceProperties:
    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_mass_equals_access_count(self, trace):
        histogram = reuse_distance_histogram(trace, line_b=32)
        assert sum(histogram.values()) == len(trace)

    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_cold_misses_equal_unique_lines(self, trace):
        histogram = reuse_distance_histogram(trace, line_b=32)
        unique = len({a // 32 for a in trace})
        assert histogram.get(-1, 0) == unique

    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_distances_bounded_by_unique_lines(self, trace):
        histogram = reuse_distance_histogram(trace, line_b=32)
        unique = len({a // 32 for a in trace})
        finite = [d for d in histogram if d >= 0]
        if finite:
            assert max(finite) < unique

    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_matches_fully_associative_lru(self, trace):
        """Mass below capacity == hits of a fully-associative LRU cache."""
        histogram = reuse_distance_histogram(trace, line_b=16)
        capacity = 64
        predicted = sum(
            count for distance, count in histogram.items()
            if 0 <= distance < capacity
        )
        cache = Cache(CacheConfig(size_kb=1, assoc=capacity, line_b=16),
                      policy="lru")
        stats = cache.run_trace(trace)
        assert stats.hits == predicted


class TestWorkingSetProperties:
    @given(trace=traces, window=st.integers(1, 100))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_window_and_uniques(self, trace, window):
        curve = working_set_curve(trace, window=window, line_b=32)
        unique = len({a // 32 for a in trace})
        for _, distinct in curve:
            assert 1 <= distinct <= min(window, unique)

    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_full_window_counts_all_uniques(self, trace):
        curve = working_set_curve(trace, window=len(trace) + 10, line_b=32)
        unique = len({a // 32 for a in trace})
        assert curve[0][1] == unique


class TestMissRatioCurveProperties:
    @given(trace=traces)
    @settings(max_examples=30, deadline=None)
    def test_ratios_in_unit_interval(self, trace):
        curve = miss_ratio_curve(trace, sizes_kb=(2, 4, 8))
        for ratio in curve.values():
            assert 0.0 <= ratio <= 1.0

    @given(trace=traces)
    @settings(max_examples=30, deadline=None)
    def test_same_sets_more_capacity_not_worse(self, trace):
        """Doubling size at fixed set count (via assoc) never misses more
        — the LRU-inclusion form of 'bigger is better'."""
        small = miss_ratio_curve(trace, sizes_kb=(4,), assoc=1, line_b=32)[4]
        large = miss_ratio_curve(trace, sizes_kb=(8,), assoc=2, line_b=32)[8]
        assert large <= small + 1e-12
