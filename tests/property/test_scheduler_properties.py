"""Property-based tests for the scheduler simulation.

Random small arrival streams (benchmarks, timing, priorities, deadlines)
through random policies/disciplines must always satisfy the structural
invariants: every job completes exactly once, core service intervals
never overlap, energies are non-negative and the accounting identity
holds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.config import configs_for_size
from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.predictor import OraclePredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system, paper_system
from repro.energy.tables import EnergyTable
from repro.workloads.arrivals import JobArrival
from repro.workloads.eembc import eembc_benchmark

NAMES = ("puwmod", "idctrn", "pntrch")

_STORE = None
_TABLE = None


def get_store():
    global _STORE, _TABLE
    if _STORE is None:
        specs = [eembc_benchmark(n) for n in NAMES]
        _STORE = CharacterizationStore(characterize_suite(specs))
        _TABLE = EnergyTable()
    return _STORE, _TABLE


arrival_lists = st.lists(
    st.tuples(
        st.sampled_from(NAMES),
        st.integers(0, 2_000_000),       # arrival cycle
        st.integers(0, 3),               # priority
        st.booleans(),                   # has deadline
    ),
    min_size=1,
    max_size=25,
)

scenarios = st.tuples(
    arrival_lists,
    st.sampled_from(POLICY_NAMES),
    st.sampled_from(("fifo", "priority", "edf")),
    st.booleans(),  # preemptive
)


def build(scenario):
    raw, policy_name, discipline, preemptive = scenario
    if preemptive and discipline == "fifo":
        discipline = "priority"
    store, table = get_store()
    arrivals = []
    for i, (name, t, priority, has_deadline) in enumerate(
        sorted(raw, key=lambda r: r[1])
    ):
        deadline = t + 5_000_000 if has_deadline else None
        arrivals.append(
            JobArrival(job_id=i, benchmark=name, arrival_cycle=t,
                       priority=priority, deadline_cycle=deadline)
        )
    policy = make_policy(policy_name)
    system = base_system() if policy_name == "base" else paper_system()
    sim = SchedulerSimulation(
        system, policy, store,
        predictor=OraclePredictor(store) if policy.uses_predictor else None,
        energy_table=table,
        discipline=discipline,
        preemptive=preemptive,
    )
    return sim, arrivals


class TestSchedulerInvariants:
    @given(scenario=scenarios)
    @settings(max_examples=60, deadline=None)
    def test_every_job_completes_once(self, scenario):
        sim, arrivals = build(scenario)
        result = sim.run(arrivals)
        assert result.jobs_completed == len(arrivals)
        assert sorted(r.job_id for r in result.jobs) == list(
            range(len(arrivals))
        )

    @given(scenario=scenarios)
    @settings(max_examples=60, deadline=None)
    def test_core_intervals_never_overlap(self, scenario):
        sim, arrivals = build(scenario)
        result = sim.run(arrivals)
        # With preemption a job's [start, completion] span may interleave
        # with others, but a core is still exclusively owned while busy:
        # check via the simulation's own busy accounting.
        makespan = result.makespan_cycles
        for core in sim.cores:
            assert 0 <= core.busy_cycles <= makespan

    @given(scenario=scenarios)
    @settings(max_examples=60, deadline=None)
    def test_energy_accounting_identity(self, scenario):
        sim, arrivals = build(scenario)
        result = sim.run(arrivals)
        assert result.total_energy_nj >= 0
        assert result.idle_energy_nj >= 0
        assert result.dynamic_energy_nj >= 0
        assert result.busy_static_energy_nj >= 0
        assert result.total_energy_nj == pytest.approx(
            result.idle_energy_nj
            + result.busy_static_energy_nj
            + result.dynamic_energy_nj
        )

    @given(scenario=scenarios)
    @settings(max_examples=40, deadline=None)
    def test_causality(self, scenario):
        sim, arrivals = build(scenario)
        result = sim.run(arrivals)
        for record in result.jobs:
            assert record.arrival_cycle <= record.start_cycle
            assert record.start_cycle < record.completion_cycle
            assert record.completion_cycle <= result.makespan_cycles

    @given(scenario=scenarios)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, scenario):
        sim_a, arrivals = build(scenario)
        result_a = sim_a.run(arrivals)
        sim_b, _ = build(scenario)
        result_b = sim_b.run(arrivals)
        assert result_a.total_energy_nj == pytest.approx(
            result_b.total_energy_nj
        )
        assert result_a.makespan_cycles == result_b.makespan_cycles
        assert [r.core_index for r in result_a.jobs] == [
            r.core_index for r in result_b.jobs
        ]
