"""Property-based tests for the event engine, queue and scheduler."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import EventEngine
from repro.sim.events import EventKind
from repro.sim.queueing import ReadyQueue


class TestEngineProperties:
    @given(times=st.lists(st.integers(0, 10**6), min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_events_pop_in_nondecreasing_time(self, times):
        engine = EventEngine()
        for t in times:
            engine.schedule_at(t, EventKind.GENERIC)
        popped = []
        while True:
            event = engine.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(times)

    @given(times=st.lists(st.integers(0, 100), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_equal_times_preserve_insertion_order(self, times):
        engine = EventEngine()
        for i, t in enumerate(times):
            engine.schedule_at(t, EventKind.GENERIC, payload=i)
        order = []
        engine.run(lambda e: order.append((e.time, e.payload)))
        # Stable: among equal times, payloads ascend.
        for (t1, p1), (t2, p2) in zip(order, order[1:]):
            if t1 == t2:
                assert p1 < p2

    @given(times=st.lists(st.integers(0, 1000), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_processed_count(self, times):
        engine = EventEngine()
        for t in times:
            engine.schedule_at(t, EventKind.GENERIC)
        count = engine.run(lambda e: None)
        assert count == len(times) == engine.processed
        assert engine.pending == 0


class TestQueueProperties:
    @given(items=st.lists(st.integers(), min_size=0, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_fifo_order(self, items):
        queue = ReadyQueue()
        for item in items:
            queue.push(item)
        assert queue.drain() == items

    @given(
        items=st.lists(st.integers(0, 1000), min_size=1, max_size=50),
        front=st.integers(-10, -1),
    )
    @settings(max_examples=50, deadline=None)
    def test_push_front_always_first(self, items, front):
        queue = ReadyQueue()
        for item in items:
            queue.push(item)
        queue.push_front(front)
        assert queue.pop() == front

    @given(items=st.lists(st.integers(), min_size=0, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_max_length_is_peak(self, items):
        queue = ReadyQueue()
        for item in items:
            queue.push(item)
        assert queue.max_length == len(items)
