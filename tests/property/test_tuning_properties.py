"""Property-based tests for the tuning heuristic and the decision rule."""

from hypothesis import given, settings, strategies as st

from repro.cache.config import CACHE_SIZES_KB, configs_for_size
from repro.core.decision import evaluate_stall_decision
from repro.core.tuning import TuningSession

sizes = st.sampled_from(CACHE_SIZES_KB)
energies = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def drive(size_kb, cost_of):
    session = TuningSession(size_kb=size_kb)
    steps = []
    while not session.done:
        config = session.next_config()
        steps.append(config)
        session.record(config, cost_of[config])
    return session, steps


@st.composite
def landscapes(draw):
    size = draw(sizes)
    costs = {
        config: draw(energies) for config in configs_for_size(size)
    }
    return size, costs


class TestHeuristicProperties:
    @given(landscape=landscapes())
    @settings(max_examples=100, deadline=None)
    def test_terminates_within_bound(self, landscape):
        size, costs = landscape
        session, steps = drive(size, costs)
        assert session.done
        assert len(steps) <= 5  # paper: far fewer than exhaustive

    @given(landscape=landscapes())
    @settings(max_examples=100, deadline=None)
    def test_no_repeated_configs(self, landscape):
        size, costs = landscape
        _, steps = drive(size, costs)
        assert len(set(steps)) == len(steps)

    @given(landscape=landscapes())
    @settings(max_examples=100, deadline=None)
    def test_best_is_min_of_explored(self, landscape):
        size, costs = landscape
        session, steps = drive(size, costs)
        assert session.best_config in steps
        assert session.best_energy_nj == min(costs[c] for c in steps)

    @given(landscape=landscapes())
    @settings(max_examples=100, deadline=None)
    def test_all_explored_within_core_subspace(self, landscape):
        size, costs = landscape
        _, steps = drive(size, costs)
        assert all(c.size_kb == size for c in steps)

    @given(landscape=landscapes())
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_first_config(self, landscape):
        size, costs = landscape
        session, steps = drive(size, costs)
        assert session.best_energy_nj <= costs[steps[0]]


class TestDecisionProperties:
    @given(
        best=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        non_best=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        wait=st.integers(min_value=0, max_value=10**9),
        power=st.floats(min_value=0, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_decision_matches_inequality(self, best, non_best, wait, power):
        decision = evaluate_stall_decision(
            best_core_energy_nj=best,
            non_best_energy_nj=non_best,
            wait_cycles=wait,
            idle_power_non_best_nj_per_cycle=power,
        )
        assert decision.stall == (best + wait * power <= non_best)
        assert decision.margin_nj == (
            decision.run_energy_nj - decision.stall_energy_nj
        )

    @given(
        best=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        non_best=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        power=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_wait(self, best, non_best, power):
        """Longer waits can only flip the decision stall -> run."""
        short = evaluate_stall_decision(
            best_core_energy_nj=best, non_best_energy_nj=non_best,
            wait_cycles=10, idle_power_non_best_nj_per_cycle=power,
        )
        long = evaluate_stall_decision(
            best_core_energy_nj=best, non_best_energy_nj=non_best,
            wait_cycles=10_000_000, idle_power_non_best_nj_per_cycle=power,
        )
        if not short.stall:
            assert not long.stall
