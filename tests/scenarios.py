"""Shared scenario builders for the test and benchmark suites.

One home for the simulation scaffolding that used to be copy-pasted
across ``tests/core/conftest.py``, ``tests/validate/conftest.py``,
``tests/obs/conftest.py`` and the benchmark files: the small
mixed-best-size characterisation store, the oracle predictor, the
simulation factory and the arrival-stream builders.  The per-directory
conftests stay as thin delegating wrappers (so existing
``from .conftest import ...`` sites keep working and each suite keeps
its historical gap default), but the logic lives here.
"""

from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.core.policies import make_policy
from repro.core.predictor import OraclePredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system, paper_system
from repro.energy.tables import EnergyTable
from repro.workloads.arrivals import JobArrival, with_qos
from repro.workloads.eembc import eembc_benchmark

__all__ = [
    "SUITE_NAMES",
    "arrivals_for",
    "build_energy_table",
    "build_oracle",
    "build_small_store",
    "congested_dag_graphs",
    "dag_test_graphs",
    "make_simulation",
    "qos_arrivals",
    "qos_headline_arrivals",
]

#: Small mixed-best-size suite: 2KB, 4KB and 8KB winners.
SUITE_NAMES = ("puwmod", "idctrn", "pntrch", "a2time")


def build_small_store(names=SUITE_NAMES):
    """Characterise ``names`` over the full 18-config design space."""
    specs = [eembc_benchmark(name) for name in names]
    return CharacterizationStore(characterize_suite(specs))


def build_oracle(store):
    """An oracle predictor over ``store`` (perfect size predictions)."""
    return OraclePredictor(store)


def build_energy_table():
    """The default per-configuration energy model."""
    return EnergyTable()


def make_simulation(policy_name, store, predictor=None, energy_table=None,
                    system=None, **kwargs):
    """A simulation for ``policy_name`` with the conventional system.

    ``base`` runs on the homogeneous baseline system, everything else on
    the paper's heterogeneous four-core system; the predictor is only
    attached when the policy consults one.  Extra ``kwargs`` (recorder,
    metrics, discipline, validate, faults, ...) pass straight through to
    :class:`~repro.core.simulation.SchedulerSimulation`.
    """
    policy = make_policy(policy_name)
    if system is None:
        system = base_system() if policy_name == "base" else paper_system()
    return SchedulerSimulation(
        system,
        policy,
        store,
        predictor=predictor if policy.uses_predictor else None,
        energy_table=energy_table,
        **kwargs,
    )


def arrivals_for(names, gap=200_000, start=0):
    """One arrival per name, ``gap`` cycles apart."""
    return [
        JobArrival(job_id=i, benchmark=name, arrival_cycle=start + i * gap)
        for i, name in enumerate(names)
    ]


def dag_test_graphs(seed=7, count=6, edge_density=0.5, **kwargs):
    """A small dense task-graph set over the small-store benchmarks."""
    from repro.workloads.dag import generate_task_graphs

    return generate_task_graphs(
        count=count, seed=seed, benchmarks=SUITE_NAMES,
        tasks_min=kwargs.pop("tasks_min", 2),
        tasks_max=kwargs.pop("tasks_max", 5),
        edge_density=edge_density,
        mean_interarrival_cycles=kwargs.pop(
            "mean_interarrival_cycles", 150_000
        ),
        **kwargs,
    )


def congested_dag_graphs(seed=3, count=10):
    """The moderately-congested edge-free set for EDF-vs-FIFO checks.

    Interarrival well below aggregate service keeps a backlog queued
    without tipping into total overload (where EDF's domino effect can
    lose to FIFO); at these parameters deadline-order dispatch saves a
    measurable number of deadlines over arrival order.
    """
    from repro.workloads.dag import generate_task_graphs

    return generate_task_graphs(
        count=count, seed=seed, benchmarks=SUITE_NAMES,
        tasks_min=3, tasks_max=6, edge_density=0.0,
        deadline_slack=2.5, mean_interarrival_cycles=60_000,
    )


def qos_arrivals(repeats=10, gap=40_000, seed=1):
    """A priority/deadline stream dense enough to force preemptions."""
    return with_qos(
        arrivals_for(SUITE_NAMES * repeats, gap=gap),
        service_estimate=lambda name: 400_000,
        priority_levels=4,
        seed=seed,
    )


def qos_headline_arrivals(store, count=1500, seed=5,
                          mean_interarrival_cycles=70_000,
                          priority_levels=3, deadline_slack=4.0):
    """The QoS-annotated headline stream the ablation benchmarks use.

    Deadlines are ``deadline_slack`` times the base-configuration
    execution estimate from ``store``; priorities are uniform over
    ``priority_levels``.
    """
    from repro.cache import BASE_CONFIG
    from repro.workloads import eembc_suite, uniform_arrivals

    raw = uniform_arrivals(
        eembc_suite(), count=count, seed=seed,
        mean_interarrival_cycles=mean_interarrival_cycles,
    )
    return with_qos(
        raw,
        service_estimate=lambda name: store.estimate(
            name, BASE_CONFIG
        ).total_cycles,
        priority_levels=priority_levels,
        deadline_slack=deadline_slack,
        seed=seed,
    )
