"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventEngine
from repro.sim.events import Event, EventKind


class TestScheduling:
    def test_pop_in_time_order(self):
        engine = EventEngine()
        for t in (5, 1, 3):
            engine.schedule_at(t, EventKind.GENERIC)
        times = [engine.pop().time for _ in range(3)]
        assert times == [1, 3, 5]

    def test_clock_advances(self):
        engine = EventEngine()
        engine.schedule_at(10, EventKind.GENERIC)
        assert engine.now == 0
        engine.pop()
        assert engine.now == 10

    def test_cannot_schedule_in_past(self):
        engine = EventEngine()
        engine.schedule_at(10, EventKind.GENERIC)
        engine.pop()
        with pytest.raises(ValueError):
            engine.schedule_at(5, EventKind.GENERIC)

    def test_same_time_allowed(self):
        engine = EventEngine()
        engine.schedule_at(10, EventKind.GENERIC)
        engine.pop()
        engine.schedule_at(10, EventKind.GENERIC)  # now == 10 is fine
        assert engine.pop().time == 10

    def test_tie_break_completion_first(self):
        engine = EventEngine()
        engine.schedule_at(4, EventKind.ARRIVAL, payload="a")
        engine.schedule_at(4, EventKind.COMPLETION, payload="c")
        assert engine.pop().payload == "c"
        assert engine.pop().payload == "a"

    def test_insertion_order_tie_break(self):
        engine = EventEngine()
        for name in ("first", "second", "third"):
            engine.schedule_at(2, EventKind.ARRIVAL, payload=name)
        popped = [engine.pop().payload for _ in range(3)]
        assert popped == ["first", "second", "third"]

    def test_pop_empty_returns_none(self):
        assert EventEngine().pop() is None

    def test_peek_time(self):
        engine = EventEngine()
        assert engine.peek_time() is None
        engine.schedule_at(9, EventKind.GENERIC)
        assert engine.peek_time() == 9
        assert engine.pending == 1


class TestRun:
    def test_run_drains_queue(self):
        engine = EventEngine()
        seen = []
        for t in (3, 1, 2):
            engine.schedule_at(t, EventKind.GENERIC, payload=t)
        count = engine.run(lambda e: seen.append(e.payload))
        assert count == 3
        assert seen == [1, 2, 3]
        assert engine.processed == 3

    def test_handler_can_schedule_more(self):
        engine = EventEngine()
        seen = []

        def handler(event):
            seen.append(event.time)
            if event.time < 3:
                engine.schedule_at(event.time + 1, EventKind.GENERIC)

        engine.schedule_at(0, EventKind.GENERIC)
        engine.run(handler)
        assert seen == [0, 1, 2, 3]

    def test_until_bound(self):
        engine = EventEngine()
        for t in (1, 2, 10):
            engine.schedule_at(t, EventKind.GENERIC)
        count = engine.run(lambda e: None, until=5)
        assert count == 2
        assert engine.pending == 1

    def test_max_events_bound(self):
        engine = EventEngine()
        for t in range(10):
            engine.schedule_at(t, EventKind.GENERIC)
        count = engine.run(lambda e: None, max_events=4)
        assert count == 4
        assert engine.pending == 6

    def test_deterministic_across_runs(self):
        def simulate():
            engine = EventEngine()
            order = []
            for i, t in enumerate([4, 4, 2, 4, 2]):
                engine.schedule_at(t, EventKind.ARRIVAL, payload=i)
            engine.run(lambda e: order.append(e.payload))
            return order

        assert simulate() == simulate()
