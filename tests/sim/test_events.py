"""Tests for event types and ordering."""

import pytest

from repro.sim.events import Event, EventKind


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(time=-1, kind=EventKind.ARRIVAL)

    def test_sort_key_orders_by_time_first(self):
        early = Event(time=1, kind=EventKind.ARRIVAL)
        late = Event(time=2, kind=EventKind.COMPLETION)
        assert early.sort_key(5) < late.sort_key(0)

    def test_completion_before_arrival_at_same_time(self):
        # Completions free cores before new arrivals are considered.
        completion = Event(time=7, kind=EventKind.COMPLETION)
        arrival = Event(time=7, kind=EventKind.ARRIVAL)
        assert completion.sort_key(10) < arrival.sort_key(0)

    def test_sequence_breaks_remaining_ties(self):
        a = Event(time=3, kind=EventKind.ARRIVAL)
        b = Event(time=3, kind=EventKind.ARRIVAL)
        assert a.sort_key(0) < b.sort_key(1)

    def test_payload_carried(self):
        event = Event(time=0, kind=EventKind.GENERIC, payload={"core": 2})
        assert event.payload == {"core": 2}

    def test_kind_priorities(self):
        assert EventKind.COMPLETION < EventKind.ARRIVAL < EventKind.GENERIC
