"""Oracle equivalence of the struct-of-arrays fast engine.

The fast engine (:mod:`repro.sim.fast`) must be *bit-identical* to the
reference event loop — same :class:`SimulationResult` down to every
float, and the same post-run object state (cores, profiling table,
tuning sessions, accumulators) after the glue layer's write-back.  The
reference loop is the oracle: these tests run both engines on the same
inputs and compare, across the full policy x discipline x preemption
grid, under preloaded profiles, and on Hypothesis-generated streams.

Engine *selection* is pinned here too: ``auto`` must pick the fast
engine exactly when tracing, metrics, validation and fault injection
are all off, and an explicit ``engine="fast"`` with any hook attached
must be rejected up front.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import run_campaign
from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.simulation import SchedulerSimulation
from repro.obs import ListRecorder, MetricsRegistry
from repro.workloads.arrivals import JobArrival

from tests.scenarios import (
    SUITE_NAMES,
    arrivals_for,
    build_energy_table,
    build_oracle,
    build_small_store,
    make_simulation,
    qos_arrivals,
)

DISCIPLINES = ("fifo", "priority", "edf")

#: The golden grid: every (policy, discipline, preemption) combination
#: the simulation accepts (preemption needs an urgency order, so
#: fifo+preemptive is excluded — the constructor rejects it).
GRID = [
    (policy, discipline, preemptive)
    for policy, discipline, preemptive in itertools.product(
        POLICY_NAMES, DISCIPLINES, (False, True)
    )
    if not (preemptive and discipline == "fifo")
]


@pytest.fixture(scope="module")
def store():
    return build_small_store()


@pytest.fixture(scope="module")
def oracle(store):
    return build_oracle(store)


@pytest.fixture(scope="module")
def energy_table():
    return build_energy_table()


def _pair(policy, store, oracle, energy_table, **kwargs):
    """The same simulation configured for each engine."""
    return tuple(
        make_simulation(
            policy, store, predictor=oracle, energy_table=energy_table,
            engine=engine, **kwargs,
        )
        for engine in ("reference", "fast")
    )


def _assert_state_parity(ref, fast):
    """Post-run object state must match what the reference leaves."""
    assert fast.engine.now == ref.engine.now
    assert fast.engine.processed == ref.engine.processed
    assert fast.queue.enqueued_total == ref.queue.enqueued_total
    assert fast.queue.max_length == ref.queue.max_length
    for rc, fc in zip(ref.cores, fast.cores):
        assert fc.current_job is None and rc.current_job is None
        assert fc.busy_cycles == rc.busy_cycles
        assert fc.executions == rc.executions
        assert fc.tuner.current == rc.tuner.current
        assert fc.tuner.reconfigurations == rc.tuner.reconfigurations
        assert fc.tuner.total_energy_nj == rc.tuner.total_energy_nj
        assert fc._residency_closed == rc._residency_closed
        assert fc._residency_start == rc._residency_start
        assert fc._residency_busy == rc._residency_busy
    assert fast.table.benchmarks() == ref.table.benchmarks()
    for name in ref.table.benchmarks():
        rp, fp = ref.table.profile(name), fast.table.profile(name)
        assert fp.predicted_size_kb == rp.predicted_size_kb
        assert fp.tuned_sizes == rp.tuned_sizes
        assert set(fp.executions) == set(rp.executions)
        for config, record in rp.executions.items():
            other = fp.executions[config]
            assert other.total_energy_nj == record.total_energy_nj
            assert other.total_cycles == record.total_cycles
    assert (
        set(fast.heuristic._sessions) == set(ref.heuristic._sessions)
    )
    for key, rs in ref.heuristic._sessions.items():
        fs = fast.heuristic._sessions[key]
        assert fs.done == rs.done
        assert fs.best_config == rs.best_config
        assert fs.explored == rs.explored


class TestGoldenGrid:
    @pytest.mark.parametrize("policy,discipline,preemptive", GRID)
    def test_bit_identical_results_and_state(
        self, policy, discipline, preemptive, store, oracle, energy_table
    ):
        arrivals = (
            qos_arrivals(repeats=8, gap=30_000, seed=2)
            if discipline != "fifo"
            else arrivals_for(SUITE_NAMES * 8, gap=30_000)
        )
        ref, fast = _pair(
            policy, store, oracle, energy_table,
            discipline=discipline, preemptive=preemptive,
        )
        ref_result = ref.run(arrivals)
        fast_result = fast.run(arrivals)
        assert ref_result == fast_result
        _assert_state_parity(ref, fast)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_preloaded_profiles(self, policy, store, oracle, energy_table):
        arrivals = arrivals_for(SUITE_NAMES * 6, gap=25_000)
        ref, fast = _pair(
            policy, store, oracle, energy_table, preload_profiles=True,
        )
        assert ref.run(arrivals) == fast.run(arrivals)
        _assert_state_parity(ref, fast)

    def test_congested_stream_stalls_match(self, store, oracle,
                                           energy_table):
        # Dense arrivals exercise the stall/non-best decision paths.
        arrivals = arrivals_for(SUITE_NAMES * 30, gap=5_000)
        ref, fast = _pair("proposed", store, oracle, energy_table)
        ref_result = ref.run(arrivals)
        fast_result = fast.run(arrivals)
        assert ref_result == fast_result
        assert ref_result.stall_decisions > 0  # the path was exercised


class TestPropertyEquivalence:
    @given(
        raw=st.lists(
            st.tuples(
                st.sampled_from(SUITE_NAMES),
                st.integers(0, 2_000_000),   # arrival cycle
                st.integers(0, 3),           # priority
                st.booleans(),               # has deadline
            ),
            min_size=1,
            max_size=25,
        ),
        policy=st.sampled_from(POLICY_NAMES),
        discipline=st.sampled_from(DISCIPLINES),
        preemptive=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_streams_bit_identical(self, raw, policy, discipline,
                                          preemptive, store, oracle,
                                          energy_table):
        if preemptive and discipline == "fifo":
            discipline = "priority"
        arrivals = [
            JobArrival(
                job_id=i, benchmark=name, arrival_cycle=cycle,
                priority=priority,
                deadline_cycle=cycle + 5_000_000 if has_deadline else None,
            )
            for i, (name, cycle, priority, has_deadline) in enumerate(
                sorted(raw, key=lambda r: r[1])
            )
        ]
        ref, fast = _pair(
            policy, store, oracle, energy_table,
            discipline=discipline, preemptive=preemptive,
        )
        assert ref.run(arrivals) == fast.run(arrivals)
        _assert_state_parity(ref, fast)


class TestEngineSelection:
    def test_auto_picks_fast_when_clean(self, store, oracle):
        sim = make_simulation("proposed", store, predictor=oracle)
        assert sim.engine_mode == "auto"
        assert sim._resolve_engine() == "fast"

    @pytest.mark.parametrize("hook", ["recorder", "metrics", "validate"])
    def test_auto_falls_back_with_hooks(self, hook, store, oracle):
        kwargs = {
            "recorder": {"recorder": ListRecorder()},
            "metrics": {"metrics": MetricsRegistry()},
            "validate": {"validate": True},
        }[hook]
        sim = make_simulation("proposed", store, predictor=oracle,
                              **kwargs)
        assert sim._resolve_engine() == "reference"

    def test_auto_falls_back_with_faults(self, store, oracle):
        from repro.faults import FaultPlan

        sim = make_simulation("proposed", store, predictor=oracle,
                              faults=FaultPlan(name="empty"))
        assert sim._resolve_engine() == "reference"

    def test_explicit_fast_with_hooks_rejected(self, store, oracle):
        with pytest.raises(ValueError, match="incompatible"):
            make_simulation("proposed", store, predictor=oracle,
                            validate=True, engine="fast")

    def test_unknown_engine_rejected(self, store, oracle):
        with pytest.raises(ValueError, match="unknown engine"):
            make_simulation("proposed", store, predictor=oracle,
                            engine="warp")

    def test_explicit_reference_respected(self, store, oracle):
        sim = make_simulation("proposed", store, predictor=oracle,
                              engine="reference")
        assert sim._resolve_engine() == "reference"

    def test_fast_engine_runs_once(self, store, oracle, energy_table):
        from repro.sim.fast import FastSimulation

        fast = make_simulation("proposed", store, predictor=oracle,
                               energy_table=energy_table,
                               engine="fast")._fast
        assert isinstance(fast, FastSimulation)
        arrivals = arrivals_for(SUITE_NAMES, gap=50_000)
        fast.run(arrivals)
        with pytest.raises(RuntimeError, match="runs exactly once"):
            fast.run(arrivals)


class TestCampaignEngine:
    @pytest.fixture(scope="class")
    def full_store(self):
        # The campaign generates arrivals over the full EEMBC suite, so
        # it needs the full-suite characterisation.
        from repro.experiment import default_store

        return default_store(cache_path=None)

    def test_campaign_fast_matches_reference(self, full_store):
        oracle = build_oracle(full_store)
        results = {}
        for engine in ("reference", "fast"):
            results[engine] = run_campaign(
                full_store, oracle,
                policies=("proposed",),
                seeds=(0, 1),
                loads=[(40, 50_000)],
                engine=engine,
            )
        ref, fast = results["reference"], results["fast"]
        assert len(ref.replications) == len(fast.replications)
        for a, b in zip(ref.replications, fast.replications):
            assert a.jobs_completed == b.jobs_completed
            assert a.makespan_cycles == b.makespan_cycles
            assert a.total_energy_nj == b.total_energy_nj
            assert a.idle_energy_nj == b.idle_energy_nj
            assert a.dynamic_energy_nj == b.dynamic_energy_nj
            assert a.mean_waiting_cycles == b.mean_waiting_cycles
            assert a.non_best_decisions == b.non_best_decisions

    def test_campaign_fast_conflicts_rejected(self, store, oracle):
        # The conflict is raised before any simulation is built, so the
        # small store is fine here.
        with pytest.raises(ValueError, match="incompatible"):
            run_campaign(
                store, oracle,
                policies=("proposed",),
                seeds=(0,),
                loads=[(10, 50_000)],
                engine="fast",
                validate=True,
            )
