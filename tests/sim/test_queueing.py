"""Tests for the FIFO ready queue."""

import pytest

from repro.sim.queueing import ReadyQueue


class TestFIFO:
    def test_order(self):
        queue = ReadyQueue()
        for item in "abc":
            queue.push(item)
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_len_and_bool(self):
        queue = ReadyQueue()
        assert not queue
        queue.push(1)
        assert queue
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ReadyQueue().pop()

    def test_peek(self):
        queue = ReadyQueue()
        assert queue.peek() is None
        queue.push("x")
        assert queue.peek() == "x"
        assert len(queue) == 1  # peek does not remove

    def test_iteration_order(self):
        queue = ReadyQueue()
        for i in range(4):
            queue.push(i)
        assert list(queue) == [0, 1, 2, 3]


class TestRequeue:
    def test_push_front_preserves_seniority(self):
        queue = ReadyQueue()
        queue.push("young")
        queue.push_front("stalled")
        assert queue.pop() == "stalled"

    def test_requeue_counted(self):
        queue = ReadyQueue()
        queue.push("a")
        queue.push_front("b")
        assert queue.enqueued_total == 1
        assert queue.requeued_total == 1


class TestStats:
    def test_max_length_tracked(self):
        queue = ReadyQueue()
        for i in range(5):
            queue.push(i)
        for _ in range(3):
            queue.pop()
        queue.push(9)
        assert queue.max_length == 5

    def test_remove(self):
        queue = ReadyQueue()
        for i in range(3):
            queue.push(i)
        assert queue.remove(1)
        assert not queue.remove(42)
        assert list(queue) == [0, 2]

    def test_drain(self):
        queue = ReadyQueue()
        for i in range(3):
            queue.push(i)
        assert queue.drain() == [0, 1, 2]
        assert not queue
