"""Checkpoint/resume determinism for the streaming engine.

The contract: kill a streaming run at ANY point, restore the snapshot
into a freshly constructed engine with a fresh arrival process, and the
resumed run is bit-identical to the uninterrupted one — same
:class:`StreamResult`, and byte-identical final snapshots (the strong
form: not just the summary but the entire serialised state agrees).

Hypothesis drives the kill point; the policy × discipline grid is
covered by parametrisation.  Schema-version and fingerprint mismatches
must fail loudly instead of resuming a subtly different run.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import make_policy
from repro.core.system import base_system, paper_system
from repro.sim.stream import (
    STREAM_SNAPSHOT_VERSION,
    StreamConfig,
    StreamingSimulation,
    read_checkpoint,
)
from repro.workloads.arrivals import PoissonProcess, QoSProcess
from repro.workloads.eembc import eembc_benchmark

from tests.scenarios import (
    SUITE_NAMES,
    build_energy_table,
    build_oracle,
    build_small_store,
)

N_JOBS = 150
SEED = 7

GRID = [
    ("base", "fifo", False),
    ("proposed", "fifo", False),
    ("proposed", "priority", True),
    ("optimal", "edf", False),
    ("energy_centric", "priority", False),
]


@pytest.fixture(scope="module")
def store():
    return build_small_store()


@pytest.fixture(scope="module")
def oracle(store):
    return build_oracle(store)


@pytest.fixture(scope="module")
def energy_table():
    return build_energy_table()


@pytest.fixture(scope="module")
def specs():
    return [eembc_benchmark(name) for name in SUITE_NAMES]


def _process(specs, *, qos=False):
    process = PoissonProcess(
        specs, mean_interarrival_cycles=25_000.0, seed=SEED
    )
    if qos:
        process = QoSProcess(
            process,
            service_estimate=lambda name: 400_000,
            priority_levels=4,
            seed=SEED,
        )
    return process


def _engine(policy_name, discipline, preemptive, store, oracle,
            energy_table, config=None):
    policy = make_policy(policy_name)
    system = base_system() if policy_name == "base" else paper_system()
    return StreamingSimulation(
        system,
        policy,
        store,
        predictor=oracle if policy.uses_predictor else None,
        energy_table=energy_table,
        config=config or StreamConfig(max_jobs=N_JOBS),
        discipline=discipline,
        preemptive=preemptive,
    )


def _finish(engine):
    while engine.advance():
        pass
    return engine.result()


class TestKillAndResume:
    @pytest.mark.parametrize("policy,discipline,preemptive", GRID)
    @settings(max_examples=8, deadline=None)
    @given(kill_at=st.integers(min_value=1, max_value=N_JOBS - 1))
    def test_resume_is_bit_identical(
        self, policy, discipline, preemptive, kill_at, store, oracle,
        energy_table, specs,
    ):
        qos = discipline != "fifo"
        args = (policy, discipline, preemptive, store, oracle,
                energy_table)

        straight = _engine(*args)
        straight.start(_process(specs, qos=qos))
        baseline = _finish(straight)

        killed = _engine(*args)
        killed.start(_process(specs, qos=qos))
        killed.advance(max_completions=kill_at)
        # The JSON round trip is part of the contract: what resumes is
        # what a checkpoint file would hold, not live Python objects.
        snapshot = json.loads(json.dumps(killed.snapshot()))

        resumed = _engine(*args)
        result = resumed.resume(snapshot, _process(specs, qos=qos))
        assert result == baseline
        assert json.dumps(
            resumed.snapshot(), sort_keys=True
        ) == json.dumps(straight.snapshot(), sort_keys=True)

    def test_double_kill_chain(
        self, store, oracle, energy_table, specs
    ):
        """Resume a resumed run: checkpoints compose transitively."""
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        straight = _engine(*args)
        straight.start(_process(specs))
        baseline = _finish(straight)

        first = _engine(*args)
        first.start(_process(specs))
        first.advance(max_completions=40)
        second = _engine(*args)
        second.restore(
            json.loads(json.dumps(first.snapshot())), _process(specs)
        )
        second.advance(max_completions=50)
        third = _engine(*args)
        result = third.resume(
            json.loads(json.dumps(second.snapshot())), _process(specs)
        )
        assert result == baseline

    def test_resume_under_block_admission(
        self, store, oracle, energy_table, specs
    ):
        config = StreamConfig(
            max_jobs=N_JOBS, queue_capacity=3, admission="block"
        )
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        straight = _engine(*args, config=config)
        straight.start(_process(specs))
        baseline = _finish(straight)

        killed = _engine(*args, config=config)
        killed.start(_process(specs))
        killed.advance(max_completions=60)
        resumed = _engine(*args, config=config)
        result = resumed.resume(
            json.loads(json.dumps(killed.snapshot())), _process(specs)
        )
        assert result == baseline


class TestCheckpointFiles:
    def test_run_writes_resumable_file(
        self, tmp_path, store, oracle, energy_table, specs
    ):
        path = tmp_path / "stream.ckpt"
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        baseline = _engine(*args).run(_process(specs))

        checkpointed = _engine(*args).run(
            _process(specs),
            checkpoint_path=str(path), checkpoint_every=30,
        )
        assert checkpointed == baseline
        # The final checkpoint is the finished run: resuming it does no
        # further work and reproduces the same result.
        snapshot = read_checkpoint(str(path))
        assert snapshot["version"] == STREAM_SNAPSHOT_VERSION
        resumed = _engine(*args).resume(snapshot, _process(specs))
        assert resumed == baseline
        assert not path.with_suffix(".ckpt.tmp").exists()

    def test_mid_run_file_resumes(
        self, tmp_path, store, oracle, energy_table, specs
    ):
        path = tmp_path / "stream.ckpt"
        args = ("proposed", "priority", True, store, oracle,
                energy_table)
        straight = _engine(*args)
        straight.start(_process(specs, qos=True))
        baseline = _finish(straight)

        killed = _engine(*args)
        killed.start(_process(specs, qos=True))
        killed.advance(max_completions=77)
        killed.write_checkpoint(str(path))

        resumed = _engine(*args)
        result = resumed.resume(
            read_checkpoint(str(path)), _process(specs, qos=True)
        )
        assert result == baseline


class TestLoudFailures:
    def test_version_mismatch(self, store, oracle, energy_table, specs):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        engine = _engine(*args)
        engine.start(_process(specs))
        engine.advance(max_completions=10)
        snapshot = engine.snapshot()
        snapshot["version"] = STREAM_SNAPSHOT_VERSION + 1
        fresh = _engine(*args)
        with pytest.raises(ValueError, match="snapshot version"):
            fresh.restore(snapshot, _process(specs))

    def test_fingerprint_mismatch_policy(
        self, store, oracle, energy_table, specs
    ):
        donor = _engine("proposed", "fifo", False, store, oracle,
                        energy_table)
        donor.start(_process(specs))
        donor.advance(max_completions=10)
        snapshot = donor.snapshot()
        other = _engine("optimal", "fifo", False, store, oracle,
                        energy_table)
        with pytest.raises(ValueError, match="policy"):
            other.restore(snapshot, _process(specs))

    def test_fingerprint_mismatch_config(
        self, store, oracle, energy_table, specs
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        donor = _engine(*args)
        donor.start(_process(specs))
        donor.advance(max_completions=10)
        snapshot = donor.snapshot()
        other = _engine(
            *args,
            config=StreamConfig(max_jobs=N_JOBS, queue_capacity=8),
        )
        with pytest.raises(ValueError, match="config"):
            other.restore(snapshot, _process(specs))

    def test_fingerprint_mismatch_process(
        self, store, oracle, energy_table, specs
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        donor = _engine(*args)
        donor.start(_process(specs))
        donor.advance(max_completions=10)
        snapshot = donor.snapshot()
        other = _engine(*args)
        different = PoissonProcess(
            specs, mean_interarrival_cycles=99_000.0, seed=SEED
        )
        with pytest.raises(ValueError, match="process"):
            other.restore(snapshot, different)

    def test_restore_needs_fresh_engine(
        self, store, oracle, energy_table, specs
    ):
        args = ("proposed", "fifo", False, store, oracle, energy_table)
        engine = _engine(*args)
        engine.start(_process(specs))
        engine.advance(max_completions=10)
        snapshot = engine.snapshot()
        with pytest.raises(RuntimeError, match="freshly constructed"):
            engine.restore(snapshot, _process(specs))
