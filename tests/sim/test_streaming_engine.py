"""Oracle equivalence and behaviour of the open-system streaming engine.

The streaming engine (:mod:`repro.sim.stream`) feeds the fast engine's
event loop from a generator-backed arrival process in bounded memory.
Its correctness contract has two halves:

* **Closed-batch equivalence** — a finite stream (``max_jobs=N``, no
  admission bound, per-job retention on) must produce a
  :class:`SimulationResult` *bit-identical* to
  ``FastSimulation.run(poisson_arrivals(count=N))``, across the full
  policy × discipline × preemption grid.  The batch engine is the
  oracle.
* **Open-system semantics** — admission control (drop / shed / block),
  warm-up truncation, duration bounds, bounded slot tables and the
  windowed quantile metrics, none of which have a batch counterpart.

The streaming front end on :class:`SchedulerSimulation` is pinned here
too, including the up-front rejection of hook-bearing configurations
(the campaign stream axis lives in ``tests/test_campaign.py``, which
has the full-suite store streaming replications need).
"""

import itertools

import pytest

from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.system import base_system, paper_system
from repro.obs import MetricsRegistry
from repro.sim.fast import FastSimulation
from repro.sim.stream import (
    ADMISSION_POLICIES,
    StreamConfig,
    StreamingSimulation,
)
from repro.workloads.arrivals import (
    PoissonProcess,
    QoSProcess,
    poisson_arrivals,
    with_qos,
)
from repro.workloads.eembc import eembc_benchmark

from tests.scenarios import (
    SUITE_NAMES,
    build_energy_table,
    build_oracle,
    build_small_store,
    make_simulation,
)

DISCIPLINES = ("fifo", "priority", "edf")

#: Every (policy, discipline, preemption) combination the simulation
#: accepts (fifo+preemptive is rejected by the constructor).
GRID = [
    (policy, discipline, preemptive)
    for policy, discipline, preemptive in itertools.product(
        POLICY_NAMES, DISCIPLINES, (False, True)
    )
    if not (preemptive and discipline == "fifo")
]

N_JOBS = 400
MEAN_GAP = 30_000.0
SEED = 3


@pytest.fixture(scope="module")
def store():
    return build_small_store()


@pytest.fixture(scope="module")
def oracle(store):
    return build_oracle(store)


@pytest.fixture(scope="module")
def energy_table():
    return build_energy_table()


@pytest.fixture(scope="module")
def specs():
    return [eembc_benchmark(name) for name in SUITE_NAMES]


def _process(specs, *, qos=False, mean_gap=MEAN_GAP, seed=SEED):
    process = PoissonProcess(
        specs, mean_interarrival_cycles=mean_gap, seed=seed
    )
    if qos:
        process = QoSProcess(
            process,
            service_estimate=lambda name: 400_000,
            priority_levels=4,
            seed=seed,
        )
    return process


def _streaming(policy_name, store, oracle, energy_table, config,
               **kwargs):
    policy = make_policy(policy_name)
    system = (
        base_system() if policy_name == "base" else paper_system()
    )
    return StreamingSimulation(
        system,
        policy,
        store,
        predictor=oracle if policy.uses_predictor else None,
        energy_table=energy_table,
        config=config,
        **kwargs,
    )


def _fast(policy_name, store, oracle, energy_table, **kwargs):
    policy = make_policy(policy_name)
    system = (
        base_system() if policy_name == "base" else paper_system()
    )
    return FastSimulation(
        system,
        policy,
        store,
        predictor=oracle if policy.uses_predictor else None,
        energy_table=energy_table,
        **kwargs,
    )


class TestClosedBatchEquivalence:
    @pytest.mark.parametrize("policy,discipline,preemptive", GRID)
    def test_finite_stream_bit_identical_to_batch(
        self, policy, discipline, preemptive, store, oracle,
        energy_table, specs,
    ):
        qos = discipline != "fifo"
        arrivals = poisson_arrivals(
            specs, count=N_JOBS,
            mean_interarrival_cycles=MEAN_GAP, seed=SEED,
        )
        if qos:
            arrivals = with_qos(
                arrivals,
                service_estimate=lambda name: 400_000,
                priority_levels=4,
                seed=SEED,
            )
        batch = _fast(
            policy, store, oracle, energy_table,
            discipline=discipline, preemptive=preemptive,
        ).run(arrivals)
        streaming = _streaming(
            policy, store, oracle, energy_table,
            StreamConfig(max_jobs=N_JOBS, retain_jobs=True),
            discipline=discipline, preemptive=preemptive,
        )
        result = streaming.run(_process(specs, qos=qos))
        assert result.sim_result == batch
        assert result.jobs_completed == N_JOBS
        assert result.jobs_generated == N_JOBS
        assert result.makespan_cycles == batch.makespan_cycles

    def test_preloaded_profiles_equivalent(
        self, store, oracle, energy_table, specs
    ):
        arrivals = poisson_arrivals(
            specs, count=N_JOBS,
            mean_interarrival_cycles=MEAN_GAP, seed=SEED,
        )
        batch = _fast(
            "proposed", store, oracle, energy_table,
            preload_profiles=True,
        ).run(arrivals)
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=N_JOBS, retain_jobs=True),
            preload_profiles=True,
        )
        assert streaming.run(_process(specs)).sim_result == batch

    def test_stepwise_advance_matches_single_drive(
        self, store, oracle, energy_table, specs
    ):
        config = StreamConfig(max_jobs=N_JOBS, retain_jobs=True)
        one = _streaming("proposed", store, oracle, energy_table, config)
        whole = one.run(_process(specs))
        stepped = _streaming(
            "proposed", store, oracle, energy_table, config
        )
        stepped.start(_process(specs))
        while stepped.advance(max_events=17):
            pass
        assert stepped.result() == whole


class TestBoundedMemory:
    def test_slot_table_stays_small_without_retention(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=5_000),
        )
        result = streaming.run(_process(specs, mean_gap=56_000.0))
        assert result.jobs_completed == 5_000
        slots = len(streaming._s["jbid"])
        assert slots < 200, slots
        assert streaming._s["records"] == []

    def test_retention_keeps_every_job(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=300, retain_jobs=True),
        )
        result = streaming.run(_process(specs))
        assert len(result.sim_result.jobs) == 300
        assert len(streaming._s["jbid"]) == 300


class TestAdmissionControl:
    def test_drop_rejects_and_accounts(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(
                max_jobs=1_000, queue_capacity=4, admission="drop"
            ),
        )
        result = streaming.run(_process(specs, mean_gap=6_000.0))
        assert result.jobs_dropped > 0
        assert result.jobs_shed == 0
        assert (
            result.jobs_completed + result.jobs_dropped == 1_000
        )
        assert result.shed_rate == pytest.approx(
            result.jobs_dropped / 1_000
        )

    def test_shed_evicts_queued_jobs(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(
                max_jobs=1_000, queue_capacity=4, admission="shed"
            ),
        )
        result = streaming.run(_process(specs, mean_gap=6_000.0))
        assert result.jobs_shed > 0
        assert result.jobs_dropped == 0
        assert result.jobs_completed + result.jobs_shed == 1_000

    def test_shed_under_priority_evicts_worst(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(
                max_jobs=600, queue_capacity=4, admission="shed"
            ),
            discipline="priority",
        )
        result = streaming.run(
            _process(specs, qos=True, mean_gap=6_000.0)
        )
        assert result.jobs_shed > 0
        assert result.jobs_completed + result.jobs_shed == 600

    def test_block_completes_everything(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(
                max_jobs=800, queue_capacity=4, admission="block"
            ),
        )
        result = streaming.run(_process(specs, mean_gap=6_000.0))
        assert result.jobs_completed == 800
        assert result.jobs_dropped == 0 and result.jobs_shed == 0
        assert result.blocked_cycles > 0
        assert result.max_queue_len <= 4 + 1  # one forced admission slot

    def test_unbounded_queue_never_drops(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=400),
        )
        result = streaming.run(_process(specs, mean_gap=6_000.0))
        assert result.jobs_completed == 400
        assert result.jobs_dropped == 0 and result.jobs_shed == 0


class TestStreamBounds:
    def test_duration_truncates_generation(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(duration_cycles=20_000_000),
        )
        result = streaming.run(_process(specs, mean_gap=25_000.0))
        assert 0 < result.jobs_generated
        assert result.jobs_completed == result.jobs_generated
        # Every admitted arrival happened inside the horizon; the jobs
        # themselves may complete after it.
        assert result.makespan_cycles >= 0

    def test_warmup_truncates_metrics_only(
        self, store, oracle, energy_table, specs
    ):
        cold = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=N_JOBS),
        ).run(_process(specs))
        warm = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=N_JOBS, warmup_cycles=3_000_000),
        ).run(_process(specs))
        # Engine arithmetic is untouched; only observation changes.
        assert warm.makespan_cycles == cold.makespan_cycles
        assert warm.total_energy_nj == cold.total_energy_nj
        assert warm.jobs_completed == cold.jobs_completed
        assert 0 < warm.observed_jobs < cold.observed_jobs
        assert cold.observed_jobs == cold.jobs_completed

    def test_quantile_snapshots_track_waiting(
        self, store, oracle, energy_table, specs
    ):
        result = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=N_JOBS),
        ).run(_process(specs, mean_gap=6_000.0))
        waiting = result.waiting
        assert waiting["count"] == result.observed_jobs
        assert (
            waiting["p50"] <= waiting["p90"] <= waiting["p99"]
            <= waiting["max"]
        )
        assert result.turnaround["min"] >= waiting["min"]


class TestValidation:
    def test_config_requires_a_bound(self):
        with pytest.raises(ValueError, match="max_jobs"):
            StreamConfig()

    def test_config_rejects_bad_admission(self):
        with pytest.raises(ValueError, match="admission"):
            StreamConfig(max_jobs=10, admission="reject")

    def test_admission_policies_tuple(self):
        assert ADMISSION_POLICIES == ("drop", "shed", "block")

    def test_engine_requires_config(self, store, oracle, energy_table):
        with pytest.raises(ValueError, match="StreamConfig"):
            StreamingSimulation(
                paper_system(), make_policy("proposed"), store,
                predictor=oracle, energy_table=energy_table,
            )

    def test_runs_exactly_once(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=20),
        )
        streaming.run(_process(specs))
        with pytest.raises(RuntimeError, match="exactly once"):
            streaming.run(_process(specs))

    def test_result_requires_finished_run(
        self, store, oracle, energy_table, specs
    ):
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=200),
        )
        streaming.start(_process(specs))
        streaming.advance(max_events=5)
        with pytest.raises(RuntimeError, match="pending events"):
            streaming.result()

    def test_unknown_benchmark_raises(
        self, store, oracle, energy_table
    ):
        foreign = [eembc_benchmark("cacheb")]
        streaming = _streaming(
            "proposed", store, oracle, energy_table,
            StreamConfig(max_jobs=5),
        )
        with pytest.raises(KeyError, match="cacheb"):
            streaming.run(_process(foreign))


class TestSchedulerSimulationFrontEnd:
    def test_stream_matches_direct_engine(
        self, store, oracle, energy_table, specs
    ):
        sim = make_simulation(
            "proposed", store, predictor=oracle,
            energy_table=energy_table,
        )
        config = StreamConfig(max_jobs=N_JOBS, retain_jobs=True)
        via_front_end = sim.stream(_process(specs), config)
        direct = _streaming(
            "proposed", store, oracle, energy_table, config
        ).run(_process(specs))
        assert via_front_end == direct

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"metrics": MetricsRegistry()},
            {"validate": True},
            {"engine": "reference"},
        ),
        ids=("metrics", "validate", "reference"),
    )
    def test_hooked_simulation_rejected_up_front(
        self, kwargs, store, oracle, energy_table, specs
    ):
        sim = make_simulation(
            "proposed", store, predictor=oracle,
            energy_table=energy_table, **kwargs,
        )
        with pytest.raises(ValueError, match="windowed metrics"):
            sim.stream(_process(specs), StreamConfig(max_jobs=10))
