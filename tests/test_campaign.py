"""Tests for the process-parallel replication campaign runner."""

import math

import pytest

from repro.campaign import (
    CAMPAIGN_METRICS,
    DagLoad,
    MetricAggregate,
    ReplicationSpec,
    StreamLoad,
    _T_CRITICAL_95,
    _aggregate,
    _t_critical,
    run_campaign,
)
from repro.core.predictor import FixedPredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system
from repro.core.policies import make_policy
from repro.experiment import default_store, run_campaign as exported
from repro.workloads import eembc_suite, uniform_arrivals


@pytest.fixture(scope="module")
def store():
    return default_store(cache_path=None)


def small_campaign(store, workers):
    # 2 policies x 6 seeds x 2 loads = 24 replications (the acceptance
    # grid), kept cheap with 40-job streams.
    return run_campaign(
        store,
        policies=("base", "proposed"),
        seeds=(0, 1, 2, 3, 4, 5),
        loads=((40, 56_000), (40, 120_000)),
        workers=workers,
    )


class TestWorkerIndependence:
    def test_serial_and_parallel_aggregates_identical(self, store):
        serial = small_campaign(store, workers=1)
        parallel = small_campaign(store, workers=4)
        assert len(serial.replications) == 24
        assert len(parallel.replications) == 24
        assert [r.spec for r in serial.replications] == [
            r.spec for r in parallel.replications
        ]
        for a, b in zip(serial.cells, parallel.cells):
            assert (a.policy, a.count, a.mean_interarrival_cycles) == (
                b.policy, b.count, b.mean_interarrival_cycles
            )
            for name in CAMPAIGN_METRICS:
                assert a.metrics[name] == b.metrics[name], (a.policy, name)

    def test_repeat_run_deterministic(self, store):
        first = small_campaign(store, workers=1)
        second = small_campaign(store, workers=1)
        for a, b in zip(first.cells, second.cells):
            assert a.metrics == b.metrics


class TestReplicationSemantics:
    def test_replication_matches_direct_simulation(self, store):
        """A cell with one seed reproduces a hand-rolled run exactly."""
        campaign = run_campaign(
            store,
            policies=("base",),
            seeds=(3,),
            loads=((50, 80_000),),
        )
        arrivals = uniform_arrivals(
            eembc_suite(), count=50, seed=3, mean_interarrival_cycles=80_000
        )
        sim = SchedulerSimulation(
            base_system(), make_policy("base"), store
        )
        reference = sim.run(arrivals)
        cell = campaign.cell("base")
        assert cell.n == 1
        assert cell.metric("total_energy_nj").mean == (
            reference.total_energy_nj
        )
        assert cell.metric("makespan_cycles").mean == (
            reference.makespan_cycles
        )
        assert cell.metric("jobs_completed").mean == 50

    def test_grid_order_policy_major(self, store):
        campaign = run_campaign(
            store,
            policies=("base", "proposed"),
            seeds=(0, 1),
            loads=((30, 56_000),),
        )
        specs = [r.spec for r in campaign.replications]
        assert specs == [
            ReplicationSpec("base", 0, 30, 56_000),
            ReplicationSpec("base", 1, 30, 56_000),
            ReplicationSpec("proposed", 0, 30, 56_000),
            ReplicationSpec("proposed", 1, 30, 56_000),
        ]

    def test_custom_predictor_used(self, store):
        fixed = run_campaign(
            store,
            FixedPredictor(8),
            policies=("proposed",),
            seeds=(0,),
            loads=((40, 56_000),),
        )
        oracle = run_campaign(
            store,
            policies=("proposed",),
            seeds=(0,),
            loads=((40, 56_000),),
        )
        # A predictor stuck on 8 KB steers jobs differently from the
        # oracle default — proof the passed predictor is the one used.
        assert (
            fixed.cell("proposed").metric("total_energy_nj").mean
            != oracle.cell("proposed").metric("total_energy_nj").mean
        )


class TestAggregation:
    def test_aggregate_math(self):
        agg = _aggregate([1.0, 2.0, 3.0, 4.0])
        assert agg.mean == 2.5
        assert agg.n == 4
        expected_std = math.sqrt(sum((v - 2.5) ** 2 for v in
                                     (1.0, 2.0, 3.0, 4.0)) / 3)
        assert agg.std == pytest.approx(expected_std)
        # Four replications have 3 degrees of freedom: the half-width
        # uses Student's t(3) = 3.182, not the normal z = 1.96.
        assert agg.ci95 == pytest.approx(3.182 * expected_std / 2.0)

    def test_single_replication_has_zero_ci(self):
        assert _aggregate([5.0]) == MetricAggregate(
            mean=5.0, std=0.0, ci95=0.0, n=1
        )

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError,
                           match="cannot aggregate an empty cell"):
            _aggregate([])


class TestStudentT:
    """Regression for the z-vs-t confidence-interval bug.

    The aggregator used to hard-code ``z = 1.96``, understating the
    95% half-width for every realistic campaign (n <= 30 seeds).  The
    half-width must use Student's t with ``n - 1`` degrees of freedom.
    """

    #: Two-tailed 95% critical values, df -> t (standard table).
    PINNED = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
              9: 2.262, 19: 2.093, 29: 2.045, 40: 2.021, 60: 2.000,
              120: 1.980}

    @pytest.mark.parametrize("df,expected", sorted(PINNED.items()))
    def test_pinned_critical_values(self, df, expected):
        assert _t_critical(df) == pytest.approx(expected)

    @pytest.mark.parametrize("n", range(2, 31))
    def test_aggregate_uses_t_for_small_n(self, n):
        values = [float(i) for i in range(n)]
        agg = _aggregate(values)
        assert agg.ci95 == pytest.approx(
            _T_CRITICAL_95[n - 1] * agg.std / math.sqrt(n)
        )
        # t(df) > z for every finite df, so the old z-based width
        # always understated the interval.
        assert agg.ci95 > 1.96 * agg.std / math.sqrt(n)

    def test_untabulated_df_falls_back_conservatively(self):
        # df between table entries snaps down to the nearest tabulated
        # df, whose critical value is larger (wider, conservative).
        assert _t_critical(35) == _T_CRITICAL_95[30]
        assert _t_critical(200) == _T_CRITICAL_95[120]

    def test_df_floor(self):
        with pytest.raises(ValueError):
            _t_critical(0)

    def test_cells_aggregate_over_seeds(self, store):
        campaign = run_campaign(
            store,
            policies=("base",),
            seeds=(0, 1, 2),
            loads=((30, 56_000),),
        )
        cell = campaign.cell("base")
        assert cell.n == 3
        values = [
            r.total_energy_nj for r in campaign.replications
        ]
        assert cell.metric("total_energy_nj").mean == pytest.approx(
            sum(values) / 3
        )


class TestCellLookup:
    def test_ambiguous_selector_rejected(self, store):
        campaign = run_campaign(
            store,
            policies=("base",),
            seeds=(0,),
            loads=((30, 56_000), (30, 120_000)),
        )
        with pytest.raises(KeyError):
            campaign.cell("base")
        assert (
            campaign.cell("base", mean_interarrival_cycles=120_000).n == 1
        )

    def test_missing_cell_rejected(self, store):
        campaign = run_campaign(
            store, policies=("base",), seeds=(0,), loads=((30, 56_000),)
        )
        with pytest.raises(KeyError):
            campaign.cell("proposed")

    def test_summary_renders(self, store):
        campaign = run_campaign(
            store, policies=("base",), seeds=(0,), loads=((30, 56_000),)
        )
        text = campaign.summary()
        assert "base" in text
        assert "replications=1" in text


class TestMetricsCollection:
    def metrics_campaign(self, store, workers):
        return run_campaign(
            store,
            policies=("base", "proposed"),
            seeds=(0, 1),
            loads=((40, 56_000),),
            workers=workers,
            collect_metrics=True,
        )

    def test_off_by_default(self, store):
        result = run_campaign(
            store, policies=("base",), seeds=(0,), workers=1
        )
        assert result.replications[0].observed == {}
        assert result.cells[0].observed == {}

    def test_replications_carry_scalars(self, store):
        result = self.metrics_campaign(store, workers=1)
        for replication in result.replications:
            observed = replication.observed
            assert observed["sim.jobs_completed"] == 40.0
            assert observed["sim.jobs_arrived"] == 40.0
            assert "sim.queue_depth.p90" in observed
            assert all(
                isinstance(value, float) for value in observed.values()
            )

    def test_cells_aggregate_observed(self, store):
        result = self.metrics_campaign(store, workers=1)
        for cell in result.cells:
            aggregate = cell.observed["sim.jobs_completed"]
            assert aggregate.mean == 40.0
            assert aggregate.n == 2
            # Registry energy totals agree with the headline metric.
            assert cell.observed["sim.energy.total_nj"].mean == (
                pytest.approx(cell.metrics["total_energy_nj"].mean)
            )

    def test_observed_worker_count_independent(self, store):
        serial = self.metrics_campaign(store, workers=1)
        parallel = self.metrics_campaign(store, workers=4)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.observed == b.observed

    def test_collection_does_not_perturb_results(self, store):
        with_metrics = self.metrics_campaign(store, workers=1)
        without = run_campaign(
            store,
            policies=("base", "proposed"),
            seeds=(0, 1),
            loads=((40, 56_000),),
            workers=1,
        )
        for a, b in zip(with_metrics.cells, without.cells):
            assert a.metrics == b.metrics


class TestSweepTimingAbsorption:
    def test_record_into_registry(self):
        from repro.characterization.instrumentation import (
            SweepTiming,
            TaskTiming,
        )
        from repro.obs.metrics import MetricsRegistry

        timing = SweepTiming(
            tasks=(
                TaskTiming(name="a", seconds=0.5, accesses=1000, configs=18),
                TaskTiming(name="b", seconds=1.5, accesses=3000, configs=18),
            ),
            wall_seconds=2.0,
            workers=2,
        )
        registry = MetricsRegistry()
        timing.record_into(registry)
        scalars = registry.scalars()
        assert scalars["sweep.benchmarks"] == 2.0
        assert scalars["sweep.accesses"] == 4000.0
        assert scalars["sweep.config_replays"] == 36.0
        assert scalars["sweep.wall_seconds"] == 2.0
        assert scalars["sweep.traces_per_second"] == 1.0
        assert scalars["sweep.task_seconds.count"] == 2.0
        assert scalars["sweep.task_seconds.mean"] == 1.0
        # Counters accumulate across sweeps.
        timing.record_into(registry)
        assert registry.scalars()["sweep.benchmarks"] == 4.0


class TestStreamAxis:
    def stream_campaign(self, store, workers, **load_kwargs):
        return run_campaign(
            store,
            policies=("base", "proposed"),
            seeds=(0, 1),
            loads=((120, 40_000),),
            workers=workers,
            stream=StreamLoad(**load_kwargs),
        )

    def test_open_system_cells(self, store):
        result = self.stream_campaign(
            store, workers=1, queue_capacity=16, admission="shed"
        )
        assert len(result.replications) == 4
        cell = result.cell("proposed")
        assert cell.stream == "poisson"
        assert cell.n == 2
        assert "stream.waiting.p99" in cell.observed
        assert "stream.turnaround.mean" in cell.observed
        assert "stream.shed_rate" in cell.observed
        shed = cell.observed["stream.jobs_shed"].mean
        assert cell.metrics["jobs_completed"].mean == 120 - shed
        assert "~poisson" in result.summary()

    def test_worker_count_independent(self, store):
        serial = self.stream_campaign(store, workers=1)
        parallel = self.stream_campaign(store, workers=4)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.metrics == b.metrics
            assert a.observed == b.observed

    def test_process_kinds_differ(self, store):
        poisson = self.stream_campaign(store, workers=1)
        mmpp = self.stream_campaign(
            store, workers=1, process="mmpp",
            process_args=(("burst_factor", 4.0),),
        )
        assert mmpp.cell("proposed").stream == "mmpp"
        assert (
            poisson.cell("proposed").metrics["mean_waiting_cycles"]
            != mmpp.cell("proposed").metrics["mean_waiting_cycles"]
        )

    def test_rejects_hooks_up_front(self, store):
        for kwargs in (
            {"validate": True},
            {"collect_metrics": True},
            {"engine": "reference"},
        ):
            with pytest.raises(ValueError, match="stream"):
                run_campaign(
                    store, policies=("base",),
                    stream=StreamLoad(), **kwargs,
                )

    def test_rejects_bad_admission(self, store):
        with pytest.raises(ValueError, match="admission"):
            run_campaign(
                store, policies=("base",),
                stream=StreamLoad(admission="bounce"),
            )


class TestDagAxis:
    def dag_campaign(self, store, workers=1, policies=("base", "edf"),
                     **kwargs):
        load = DagLoad(tasks_min=2, tasks_max=4)
        return run_campaign(
            store,
            policies=policies,
            seeds=(0, 1),
            loads=((3, 120_000),),
            workers=workers,
            dag=kwargs.pop("dag", load),
            **kwargs,
        )

    def test_dag_cells(self, store):
        result = self.dag_campaign(store)
        assert len(result.replications) == 4
        cell = result.cell("edf")
        assert cell.dag
        assert cell.n == 2
        for key in ("dag.graphs", "dag.tasks", "dag.edges",
                    "dag.deadline_jobs", "dag.deadline_misses",
                    "dag.deadline_miss_rate"):
            assert key in cell.observed
        assert cell.observed["dag.graphs"].mean == 3
        assert "edf^dag" in result.summary()

    def test_deadline_policies_resolve(self, store):
        result = self.dag_campaign(store, policies=("edf", "heft"))
        assert {c.policy for c in result.cells} == {"edf", "heft"}

    def test_worker_count_independent(self, store):
        serial = self.dag_campaign(store, workers=1)
        parallel = self.dag_campaign(store, workers=4)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.metrics == b.metrics
            assert a.observed == b.observed

    def test_composes_with_validation(self, store):
        result = self.dag_campaign(store, validate=True)
        assert all(cell.dag for cell in result.cells)

    def test_rejects_stream_combination(self, store):
        with pytest.raises(ValueError, match="mutually exclusive"):
            self.dag_campaign(store, policies=("base", "proposed"),
                              stream=StreamLoad())

    def test_rejects_fast_engine(self, store):
        with pytest.raises(ValueError, match="fast"):
            self.dag_campaign(store, engine="fast")

    def test_rejects_ordering_policy_on_fast_engine(self, store):
        with pytest.raises(ValueError, match="fast"):
            run_campaign(store, policies=("edf",), engine="fast")

    def test_rejects_ordering_policy_with_stream(self, store):
        with pytest.raises(ValueError, match="stream"):
            run_campaign(store, policies=("heft",),
                         stream=StreamLoad())

    def test_rejects_bad_dag_load(self, store):
        for bad in (DagLoad(tasks_min=5, tasks_max=2),
                    DagLoad(edge_density=1.5),
                    DagLoad(deadline_slack=0.0),
                    DagLoad(criticality_levels=0)):
            with pytest.raises(ValueError):
                self.dag_campaign(store, dag=bad)

    def test_repeat_run_deterministic(self, store):
        a = self.dag_campaign(store)
        b = self.dag_campaign(store)
        for cell_a, cell_b in zip(a.cells, b.cells):
            assert cell_a.metrics == cell_b.metrics
            assert cell_a.observed == cell_b.observed


class TestPowerAxis:
    def power_campaign(self, store, workers=1, **kwargs):
        from repro.power.budget import PowerConfig

        configs = kwargs.pop(
            "power_configs",
            (None, PowerConfig(cap_nj=300_000.0, slack_pct=10.0)),
        )
        return run_campaign(
            store,
            policies=kwargs.pop("policies", ("proposed",)),
            seeds=(0, 1),
            loads=((20, 9_000),),
            workers=workers,
            power_configs=configs,
            **kwargs,
        )

    def test_power_cells_and_observed(self, store):
        result = self.power_campaign(store)
        assert len(result.replications) == 4
        baseline = result.cell("proposed", power="none")
        capped = result.cell("proposed", power="cap=300000~slack=10")
        assert baseline.power is None
        assert capped.power == "cap=300000~slack=10"
        # Powered cells ship the pool gauges; unpowered cells stay
        # observation-free (bit-identity with the pre-power campaign).
        assert "power.grants" in capped.observed
        assert capped.observed["power.grants"].mean == 20.0
        assert "power.grants" not in baseline.observed
        assert "%cap=300000~slack=10" in result.summary()

    def test_uncapped_cell_matches_no_axis(self, store):
        plain = run_campaign(
            store, policies=("proposed",), seeds=(0, 1),
            loads=((20, 9_000),),
        )
        swept = self.power_campaign(store)
        a = plain.cell("proposed")
        b = swept.cell("proposed", power="none")
        assert a.metrics == b.metrics

    def test_worker_count_independent(self, store):
        serial = self.power_campaign(store, workers=1)
        parallel = self.power_campaign(store, workers=4)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.power == b.power
            assert a.metrics == b.metrics
            assert a.observed == b.observed

    def test_composes_with_stream_axis(self, store):
        result = self.power_campaign(store, stream=StreamLoad())
        capped = result.cell("proposed", power="cap=300000~slack=10")
        assert "power.throttled" in capped.observed
        assert "stream.throughput_jobs_per_mcycle" in capped.observed

    def test_composes_with_validation(self, store):
        result = self.power_campaign(store, validate=True)
        assert {c.power for c in result.cells} == {
            None, "cap=300000~slack=10"
        }

    def test_disabled_configs_normalize_to_baseline(self, store):
        from repro.power.budget import PowerConfig

        result = self.power_campaign(
            store,
            power_configs=(PowerConfig(cap_nj=float("inf")),
                           PowerConfig(cap_nj=250_000.0)),
        )
        assert {c.power for c in result.cells} == {None, "cap=250000"}

    def test_rejects_empty_axis(self, store):
        with pytest.raises(ValueError, match="power"):
            self.power_campaign(store, power_configs=())

    def test_rejects_two_unconstrained_entries(self, store):
        from repro.power.budget import PowerConfig

        with pytest.raises(ValueError, match="unconstrained"):
            self.power_campaign(
                store,
                power_configs=(None, PowerConfig(slack_pct=5.0)),
            )

    def test_rejects_duplicate_labels(self, store):
        from repro.power.budget import PowerConfig

        with pytest.raises(ValueError, match="unique"):
            self.power_campaign(
                store,
                power_configs=(PowerConfig(cap_nj=1e5),
                               PowerConfig(cap_nj=1e5)),
            )


class TestValidation:
    def test_empty_policies(self, store):
        with pytest.raises(ValueError):
            run_campaign(store, policies=())

    def test_unknown_policy(self, store):
        with pytest.raises(ValueError):
            run_campaign(store, policies=("turbo",))

    def test_empty_seeds(self, store):
        with pytest.raises(ValueError):
            run_campaign(store, seeds=())

    def test_empty_loads(self, store):
        with pytest.raises(ValueError):
            run_campaign(store, loads=())

    def test_bad_load(self, store):
        with pytest.raises(ValueError):
            run_campaign(store, loads=((0, 56_000),))
        with pytest.raises(ValueError):
            run_campaign(store, loads=((10, 0),))

    def test_reexported_from_experiment(self):
        assert exported is run_campaign
