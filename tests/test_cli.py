"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1000
        assert args.predictor == "ann"
        assert args.discipline == "fifo"

    def test_compare_options(self):
        args = build_parser().parse_args([
            "compare", "--jobs", "50", "--seed", "7",
            "--predictor", "oracle", "--discipline", "edf",
            "--csv", "out.csv", "--json", "out.json", "--summaries",
        ])
        assert args.jobs == 50
        assert args.seed == 7
        assert args.predictor == "oracle"
        assert args.discipline == "edf"
        assert args.csv == "out.csv"
        assert args.summaries

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_characterize_needs_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.seed == 0
        assert args.workers is None
        assert args.engine == "stackdist"
        assert args.out is None

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--engine", "magic"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.policies == ["base", "proposed"]
        assert args.seeds == [0, 1, 2]
        assert args.jobs == [1000]
        assert args.interarrival == [56_000]
        assert args.predictor == "oracle"
        assert args.workers is None

    def test_campaign_options(self):
        args = build_parser().parse_args([
            "campaign", "--policies", "base", "energy_centric",
            "--seeds", "3", "4", "--jobs", "200", "400",
            "--interarrival", "56000", "120000",
            "--workers", "2", "--json", "out.json",
        ])
        assert args.policies == ["base", "energy_centric"]
        assert args.seeds == [3, 4]
        assert args.jobs == [200, 400]
        assert args.interarrival == [56_000, 120_000]
        assert args.workers == 2
        assert args.json == "out.json"

    def test_campaign_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--policies", "turbo"])


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "a2time" in out
        assert "tblook" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "puwmod"]) == 0
        out = capsys.readouterr().out
        assert "2KB_1W_16B" in out
        assert "*" in out  # best marker

    def test_characterize_unknown(self, capsys):
        assert main(["characterize", "doom"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep(self, capsys, tmp_path):
        out_path = tmp_path / "store.json"
        assert main([
            "sweep", "--workers", "1", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "a2time" in out
        assert "traces/s" in out
        from repro.characterization import CharacterizationStore

        store = CharacterizationStore.from_json(out_path)
        assert len(store) == 15
        assert store.meta is not None and store.meta.seed == 0

    def test_compare_oracle_small(self, capsys, tmp_path):
        csv_path = tmp_path / "summary.csv"
        json_path = tmp_path / "results.json"
        code = main([
            "compare", "--jobs", "60", "--seed", "0",
            "--predictor", "oracle",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Figure 7" in out
        assert csv_path.exists()
        assert json_path.exists()

    def test_campaign_small(self, capsys, tmp_path):
        json_path = tmp_path / "replications.json"
        code = main([
            "campaign", "--policies", "base", "proposed",
            "--seeds", "0", "1", "--jobs", "40",
            "--workers", "1", "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "proposed" in out
        assert "replications=4" in out
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert len(payload) == 4
        assert payload[0]["spec"]["policy"] == "base"
        assert payload[0]["jobs_completed"] == 40

    def test_compare_summaries_flag(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--summaries",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stall decisions" in out


class TestReproduceCommand:
    def test_parser(self):
        args = build_parser().parse_args(
            ["reproduce", "--out", "/tmp/x", "--jobs", "100", "--seed", "2"]
        )
        assert args.out == "/tmp/x"
        assert args.jobs == 100

    def test_reproduce_small(self, tmp_path, capsys):
        code = main([
            "reproduce", "--out", str(tmp_path / "r"), "--jobs", "150",
            "--seed", "0",
        ])
        assert code == 0
        out_dir = tmp_path / "r"
        for name in ("REPORT.md", "summary.csv", "results.json",
                     "jobs_proposed.csv"):
            assert (out_dir / name).exists()
        report = (out_dir / "REPORT.md").read_text()
        assert "Figure 6" in report
        assert "Headline" in report


class TestDisciplineOption:
    def test_compare_with_edf(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--discipline", "edf",
        ])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out


class TestLocalityCommand:
    def test_locality(self, capsys):
        code = main(["locality", "idctrn"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured miss ratio" in out
        assert "peak working set" in out

    def test_locality_unknown(self, capsys):
        assert main(["locality", "doom"]) == 2

    def test_locality_options(self, capsys):
        code = main(["locality", "puwmod", "--line", "16",
                     "--window", "500"])
        assert code == 0
        assert "500-access window" in capsys.readouterr().out
