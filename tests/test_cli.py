"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1000
        assert args.predictor == "ann"
        assert args.discipline == "fifo"

    def test_compare_options(self):
        args = build_parser().parse_args([
            "compare", "--jobs", "50", "--seed", "7",
            "--predictor", "oracle", "--discipline", "edf",
            "--csv", "out.csv", "--json", "out.json", "--summaries",
        ])
        assert args.jobs == 50
        assert args.seed == 7
        assert args.predictor == "oracle"
        assert args.discipline == "edf"
        assert args.csv == "out.csv"
        assert args.summaries

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_characterize_needs_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.seed == 0
        assert args.workers is None
        assert args.engine == "stackdist"
        assert args.out is None

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--engine", "magic"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.policies == ["base", "proposed"]
        assert args.seeds == [0, 1, 2]
        assert args.jobs == [1000]
        assert args.interarrival == [56_000]
        assert args.predictor == "oracle"
        assert args.workers is None

    def test_campaign_options(self):
        args = build_parser().parse_args([
            "campaign", "--policies", "base", "energy_centric",
            "--seeds", "3", "4", "--jobs", "200", "400",
            "--interarrival", "56000", "120000",
            "--workers", "2", "--json", "out.json",
        ])
        assert args.policies == ["base", "energy_centric"]
        assert args.seeds == [3, 4]
        assert args.jobs == [200, 400]
        assert args.interarrival == [56_000, 120_000]
        assert args.workers == 2
        assert args.json == "out.json"

    def test_campaign_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--policies", "turbo"])

    def test_global_verbosity_flags(self):
        args = build_parser().parse_args(["suite"])
        assert args.verbose == 0
        assert args.log_level is None
        args = build_parser().parse_args(["-vv", "suite"])
        assert args.verbose == 2
        args = build_parser().parse_args(["--log-level", "DEBUG", "suite"])
        assert args.log_level == "DEBUG"

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "LOUD", "suite"])

    def test_trace_command_args(self):
        args = build_parser().parse_args(
            ["trace", "t.jsonl", "--validate", "--json", "out.json"]
        )
        assert args.path == "t.jsonl"
        assert args.validate
        assert args.json == "out.json"

    def test_validate_command_args(self):
        args = build_parser().parse_args(
            ["validate", "t.jsonl", "--json", "out.json"]
        )
        assert args.path == "t.jsonl"
        assert args.json == "out.json"

    def test_validate_flags_on_compare_and_campaign(self):
        args = build_parser().parse_args(["compare", "--validate"])
        assert args.validate
        args = build_parser().parse_args(["compare"])
        assert not args.validate
        args = build_parser().parse_args(["campaign", "--validate"])
        assert args.validate

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["compare", "--trace", "t.jsonl", "--metrics-out", "m.json"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics_out == "m.json"
        args = build_parser().parse_args(
            ["campaign", "--metrics-out", "m.json"]
        )
        assert args.metrics_out == "m.json"
        args = build_parser().parse_args(
            ["sweep", "--metrics-out", "m.json"]
        )
        assert args.metrics_out == "m.json"


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "a2time" in out
        assert "tblook" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "puwmod"]) == 0
        out = capsys.readouterr().out
        assert "2KB_1W_16B" in out
        assert "*" in out  # best marker

    def test_characterize_unknown(self, capsys):
        assert main(["characterize", "doom"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep(self, capsys, tmp_path):
        out_path = tmp_path / "store.json"
        assert main([
            "sweep", "--workers", "1", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "a2time" in out
        assert "traces/s" in out
        from repro.characterization import CharacterizationStore

        store = CharacterizationStore.from_json(out_path)
        assert len(store) == 15
        assert store.meta is not None and store.meta.seed == 0

    def test_compare_oracle_small(self, capsys, tmp_path):
        csv_path = tmp_path / "summary.csv"
        json_path = tmp_path / "results.json"
        code = main([
            "compare", "--jobs", "60", "--seed", "0",
            "--predictor", "oracle",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Figure 7" in out
        assert csv_path.exists()
        assert json_path.exists()

    def test_campaign_small(self, capsys, tmp_path):
        json_path = tmp_path / "replications.json"
        code = main([
            "campaign", "--policies", "base", "proposed",
            "--seeds", "0", "1", "--jobs", "40",
            "--workers", "1", "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "proposed" in out
        assert "replications=4" in out
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert len(payload) == 4
        assert payload[0]["spec"]["policy"] == "base"
        assert payload[0]["jobs_completed"] == 40

    def test_compare_with_trace_and_metrics(self, capsys, tmp_path):
        trace_template = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle",
            "--trace", str(trace_template),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote event traces" in out
        from repro.core.policies import POLICY_NAMES
        from repro.obs.recorder import read_trace

        for name in POLICY_NAMES:
            trace_path = tmp_path / f"run.{name}.jsonl"
            assert trace_path.exists()
            assert read_trace(trace_path)  # parses back losslessly
        import json as json_module

        snapshots = json_module.loads(metrics_path.read_text())
        assert set(snapshots) == set(POLICY_NAMES)
        assert snapshots["proposed"]["counters"]["sim.jobs_completed"] == 40

    def test_trace_round_trip_through_cli(self, capsys, tmp_path):
        trace_template = tmp_path / "run.jsonl"
        assert main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--trace", str(trace_template),
        ]) == 0
        capsys.readouterr()
        analysis_path = tmp_path / "analysis.json"
        code = main([
            "trace", str(tmp_path / "run.proposed.jsonl"),
            "--validate", "--json", str(analysis_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "decision breakdown" in out
        assert "per-core timeline" in out
        import json as json_module

        payload = json_module.loads(analysis_path.read_text())
        assert payload["summary"]["jobs_completed"] == 40
        assert "non_best" in payload["decision_breakdown"]

    def test_trace_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_trace_rejects_malformed_line(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"job_arrived","cycle":0}\n')
        assert main(["trace", str(path), "--validate"]) == 2
        assert "missing fields" in capsys.readouterr().err

    def test_campaign_metrics_out(self, capsys, tmp_path):
        metrics_path = tmp_path / "cells.json"
        code = main([
            "campaign", "--policies", "base", "--seeds", "0", "1",
            "--jobs", "40", "--workers", "1",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        assert "per-cell metric aggregates" in capsys.readouterr().out
        import json as json_module

        cells = json_module.loads(metrics_path.read_text())
        assert len(cells) == 1
        observed = cells[0]["observed"]
        assert observed["sim.jobs_completed"]["mean"] == 40.0
        assert observed["sim.jobs_completed"]["n"] == 2

    def test_compare_with_validate(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--validate",
        ])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_campaign_with_validate(self, capsys):
        code = main([
            "campaign", "--policies", "base", "--seeds", "0",
            "--jobs", "30", "--workers", "1", "--validate",
        ])
        assert code == 0
        assert "replications=1" in capsys.readouterr().out

    def test_validate_replays_clean_trace(self, capsys, tmp_path):
        trace_template = tmp_path / "run.jsonl"
        assert main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--trace", str(trace_template),
        ]) == 0
        capsys.readouterr()
        report_path = tmp_path / "report.json"
        code = main([
            "validate", str(tmp_path / "run.proposed.jsonl"),
            "--json", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "ledger: conserved" in out
        import json as json_module

        payload = json_module.loads(report_path.read_text())
        assert payload["completions"] == 40
        assert payload["unfinished_jobs"] == []

    def test_validate_detects_corrupt_trace(self, capsys, tmp_path):
        trace_template = tmp_path / "run.jsonl"
        assert main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--trace", str(trace_template),
        ]) == 0
        capsys.readouterr()
        import json as json_module

        path = tmp_path / "run.proposed.jsonl"
        lines = path.read_text().splitlines()
        for index, line in enumerate(lines):
            payload = json_module.loads(line)
            if payload["kind"] == "job_completed":
                payload["energy_nj"] *= 1.5
                lines[index] = json_module.dumps(payload)
                break
        path.write_text("\n".join(lines) + "\n")
        assert main(["validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "replay.attribution" in err

    def test_validate_missing_file(self, capsys, tmp_path):
        assert main(["validate", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_validate_rejects_malformed_line(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"mystery","cycle":0}\n')
        assert main(["validate", str(path)]) == 2
        assert "unknown event kind" in capsys.readouterr().err

    def test_compare_summaries_flag(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--summaries",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stall decisions" in out


class TestReproduceCommand:
    def test_parser(self):
        args = build_parser().parse_args(
            ["reproduce", "--out", "/tmp/x", "--jobs", "100", "--seed", "2"]
        )
        assert args.out == "/tmp/x"
        assert args.jobs == 100

    def test_reproduce_small(self, tmp_path, capsys):
        code = main([
            "reproduce", "--out", str(tmp_path / "r"), "--jobs", "150",
            "--seed", "0",
        ])
        assert code == 0
        out_dir = tmp_path / "r"
        for name in ("REPORT.md", "summary.csv", "results.json",
                     "jobs_proposed.csv"):
            assert (out_dir / name).exists()
        report = (out_dir / "REPORT.md").read_text()
        assert "Figure 6" in report
        assert "Headline" in report


class TestDisciplineOption:
    def test_compare_with_edf(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle", "--discipline", "edf",
        ])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out


class TestLocalityCommand:
    def test_locality(self, capsys):
        code = main(["locality", "idctrn"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured miss ratio" in out
        assert "peak working set" in out

    def test_locality_unknown(self, capsys):
        assert main(["locality", "doom"]) == 2

    def test_locality_options(self, capsys):
        code = main(["locality", "puwmod", "--line", "16",
                     "--window", "500"])
        assert code == 0
        assert "500-access window" in capsys.readouterr().out


class TestStreamParser:
    def test_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.policy == "proposed"
        assert args.process == "poisson"
        assert args.max_jobs is None
        assert args.duration is None
        assert args.interarrival == 56_000.0
        assert args.admission == "block"
        assert args.queue_capacity is None
        assert args.checkpoint is None
        assert not args.resume

    def test_options(self):
        args = build_parser().parse_args([
            "stream", "--policy", "base", "--process", "mmpp",
            "--max-jobs", "5000", "--duration", "1000000",
            "--queue-capacity", "32", "--admission", "shed",
            "--warmup", "200000", "--discipline", "edf",
            "--checkpoint", "c.json", "--checkpoint-every", "500",
            "--resume", "--burst-factor", "6",
        ])
        assert args.policy == "base"
        assert args.process == "mmpp"
        assert args.max_jobs == 5000
        assert args.duration == 1_000_000
        assert args.queue_capacity == 32
        assert args.admission == "shed"
        assert args.warmup == 200_000
        assert args.discipline == "edf"
        assert args.checkpoint == "c.json"
        assert args.checkpoint_every == 500
        assert args.resume
        assert args.burst_factor == 6.0

    def test_rejects_unknown_process(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--process", "uniform"])

    def test_campaign_stream_flags(self):
        args = build_parser().parse_args([
            "campaign", "--stream", "diurnal",
            "--queue-capacity", "16", "--admission", "drop",
            "--warmup", "100000",
        ])
        assert args.stream == "diurnal"
        assert args.queue_capacity == 16
        assert args.admission == "drop"
        assert args.warmup == 100_000


class TestStreamCommand:
    def test_stream_small(self, capsys, tmp_path):
        import json as json_module

        json_path = tmp_path / "stream.json"
        code = main([
            "stream", "--max-jobs", "300", "--seed", "2",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ran proposed on a poisson stream" in out
        assert "generated=300" in out
        assert "waiting" in out and "p99" in out
        payload = json_module.loads(json_path.read_text())
        assert payload["jobs_completed"] == 300
        assert payload["policy"] == "proposed"
        assert "sim_result" not in payload
        assert payload["waiting"]["count"] == 300.0

    def test_stream_requires_a_bound(self, capsys):
        assert main(["stream"]) == 2
        assert "--max-jobs" in capsys.readouterr().err

    def test_resume_needs_checkpoint_path(self, capsys):
        assert main(["stream", "--max-jobs", "10", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resume_needs_existing_file(self, capsys, tmp_path):
        code = main([
            "stream", "--max-jobs", "10", "--resume",
            "--checkpoint", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert "no checkpoint file" in capsys.readouterr().err

    def test_checkpoint_and_resume_round_trip(self, capsys, tmp_path):
        import json as json_module

        ckpt = tmp_path / "stream.ckpt"
        first_json = tmp_path / "first.json"
        resumed_json = tmp_path / "resumed.json"
        base_args = [
            "stream", "--max-jobs", "300", "--seed", "2",
            "--checkpoint", str(ckpt), "--checkpoint-every", "100",
        ]
        assert main(base_args + ["--json", str(first_json)]) == 0
        assert ckpt.exists()

        # Resuming the final checkpoint replays no events and reports
        # the identical result — the bit-identity contract end to end.
        code = main(
            base_args + ["--resume", "--json", str(resumed_json)]
        )
        assert code == 0
        assert "resumed proposed" in capsys.readouterr().out
        assert json_module.loads(first_json.read_text()) == (
            json_module.loads(resumed_json.read_text())
        )

    def test_campaign_stream_small(self, capsys):
        code = main([
            "campaign", "--policies", "base", "proposed",
            "--seeds", "0", "--jobs", "60", "--workers", "1",
            "--stream", "poisson", "--queue-capacity", "16",
            "--admission", "shed",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "~poisson" in out
        assert "replications=2" in out

    def test_campaign_stream_rejects_hooks(self, capsys, tmp_path):
        code = main([
            "campaign", "--stream", "poisson", "--jobs", "20",
            "--validate",
        ])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err


class TestTelemetryCli:
    def test_parser_telemetry_flags(self):
        for command, extra in (("compare", []), ("stream", [])):
            args = build_parser().parse_args([
                command, *extra,
                "--telemetry-out", "t.jsonl", "--telemetry-every", "500",
                "--sampled-trace", "s.jsonl",
                "--sampled-trace-every", "50", "--progress",
            ])
            assert args.telemetry_out == "t.jsonl"
            assert args.telemetry_every == 500
            assert args.sampled_trace == "s.jsonl"
            assert args.sampled_trace_every == 50
            assert args.progress
        args = build_parser().parse_args(["campaign", "--progress"])
        assert args.progress

    def test_compare_rejects_telemetry_with_hooks(self, capsys):
        code = main([
            "compare", "--jobs", "10",
            "--telemetry-out", "t.jsonl", "--validate",
        ])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err

    def test_compare_rejects_telemetry_on_reference(self, capsys):
        code = main([
            "compare", "--jobs", "10", "--progress",
            "--engine", "reference",
        ])
        assert code == 2
        assert "reference" in capsys.readouterr().err

    def test_stream_telemetry_and_report(self, capsys, tmp_path):
        tel = tmp_path / "t.jsonl"
        trace = tmp_path / "s.jsonl"
        code = main([
            "stream", "--max-jobs", "200", "--seed", "2",
            "--telemetry-out", str(tel),
            "--sampled-trace", str(trace),
            "--sampled-trace-every", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote telemetry time series" in out
        assert "wrote sampled trace" in out

        prom = tmp_path / "t.prom"
        code = main([
            "telemetry", "report", str(tel), "--prom", str(prom),
            "--json", str(tmp_path / "t.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry schema v1" in out
        assert "200 jobs done" in out
        assert "repro_done 200" in prom.read_text()

        # The sampled trace flows through the trace tooling.
        assert main(["trace", str(trace), "--validate"]) == 0
        assert "sampled trace:" in capsys.readouterr().out

    def test_stream_telemetry_resume_is_byte_identical(
        self, capsys, tmp_path
    ):
        tel = tmp_path / "t.jsonl"
        ckpt = tmp_path / "stream.ckpt"
        base_args = [
            "stream", "--max-jobs", "300", "--seed", "2",
            "--telemetry-out", str(tel),
            "--checkpoint", str(ckpt), "--checkpoint-every", "100",
        ]
        assert main(base_args) == 0
        baseline = tel.read_bytes()
        assert main(base_args + ["--resume"]) == 0
        capsys.readouterr()
        assert tel.read_bytes() == baseline

    def test_stream_resume_with_telemetry_needs_the_flag(
        self, capsys, tmp_path
    ):
        tel = tmp_path / "t.jsonl"
        ckpt = tmp_path / "stream.ckpt"
        assert main([
            "stream", "--max-jobs", "300", "--seed", "2",
            "--telemetry-out", str(tel),
            "--checkpoint", str(ckpt), "--checkpoint-every", "100",
        ]) == 0
        capsys.readouterr()
        code = main([
            "stream", "--max-jobs", "300", "--seed", "2",
            "--checkpoint", str(ckpt), "--resume",
        ])
        assert code == 2
        assert "--telemetry-out" in capsys.readouterr().err

    def test_compare_writes_per_policy_telemetry(self, capsys, tmp_path):
        code = main([
            "compare", "--jobs", "40", "--predictor", "oracle",
            "--telemetry-out", str(tmp_path / "c.jsonl"),
            "--telemetry-every", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote telemetry time series" in out
        for policy in ("base", "optimal", "energy_centric", "proposed"):
            assert (tmp_path / f"c.{policy}.jsonl").exists()

    def test_campaign_progress_line(self, capsys):
        code = main([
            "campaign", "--policies", "base", "--seeds", "0", "1",
            "--jobs", "40", "--workers", "1", "--progress",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "campaign: 2/2 replications" in err

    def test_telemetry_report_missing_file(self, capsys, tmp_path):
        code = main(["telemetry", "report", str(tmp_path / "no.jsonl")])
        assert code == 2
        assert "no such telemetry file" in capsys.readouterr().err


class TestBenchCli:
    def test_bench_report(self, capsys, tmp_path):
        import json as json_module

        (tmp_path / "BENCH_speed.json").write_text(json_module.dumps({
            "benchmark": "speed", "speedup": 12.0,
            "min_speedup_required": 10.0,
        }))
        out_json = tmp_path / "rows.json"
        code = main([
            "bench", "report", "--dir", str(tmp_path),
            "--json", str(out_json),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "all within bounds" in out
        rows = json_module.loads(out_json.read_text())
        assert rows[0]["metric"] == "speedup"
        assert rows[0]["ok"] is True

    def test_bench_report_empty_dir(self, capsys, tmp_path):
        code = main(["bench", "report", "--dir", str(tmp_path)])
        assert code == 2
        assert "no BENCH_" in capsys.readouterr().err


class TestDagSubcommand:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["dag", "generate"])
        assert args.seed == 0
        assert args.count == 8
        assert args.tasks_min == 3
        assert args.tasks_max == 8
        assert args.edge_density == pytest.approx(0.35)
        assert args.deadline_slack == pytest.approx(2.5)

    def test_generate_round_trips_through_disk(self, capsys, tmp_path):
        from repro.workloads.dag import generate_task_graphs, load_graphs

        out = tmp_path / "graphs.json"
        code = main([
            "dag", "generate", "--out", str(out), "--seed", "3",
            "--count", "4",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "wrote task-graph set" in stdout
        assert load_graphs(out) == generate_task_graphs(count=4, seed=3)

    def test_describe_prints_graphs(self, capsys, tmp_path):
        from repro.workloads.dag import dump_graphs, generate_task_graphs

        path = tmp_path / "graphs.json"
        dump_graphs(generate_task_graphs(count=2, seed=1), path)
        code = main(["dag", "describe", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 task graph(s)" in out

    def test_describe_needs_path(self, capsys):
        code = main(["dag", "describe"])
        assert code == 2
        assert "describe needs" in capsys.readouterr().err

    def test_describe_missing_file(self, capsys, tmp_path):
        code = main(["dag", "describe", str(tmp_path / "no.json")])
        assert code == 2

    def test_generate_rejects_positional_path(self, capsys, tmp_path):
        code = main(["dag", "generate", str(tmp_path / "x.json")])
        assert code == 2
        assert "use --out" in capsys.readouterr().err

    def test_generate_rejects_bad_parameters(self, capsys):
        code = main(["dag", "generate", "--edge-density", "1.5"])
        assert code == 2
        assert "edge_density" in capsys.readouterr().err


class TestCampaignDagFlags:
    def test_parser_accepts_deadline_policies(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "campaign", "--policies", "edf", "heft", "--dag",
            "--dag-tasks-min", "2", "--dag-tasks-max", "4",
        ])
        assert args.policies == ["edf", "heft"]
        assert args.dag
        assert args.dag_tasks_min == 2

    def test_dag_campaign_runs(self, capsys):
        code = main([
            "campaign", "--dag", "--policies", "base", "edf",
            "--seeds", "0", "--jobs", "3", "--interarrival", "120000",
            "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "base^dag" in out
        assert "edf^dag" in out

    def test_dag_rejects_stream(self, capsys):
        code = main([
            "campaign", "--dag", "--stream", "poisson",
            "--policies", "base",
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dag_rejects_fast_engine(self, capsys):
        code = main([
            "campaign", "--dag", "--engine", "fast",
            "--policies", "base",
        ])
        assert code == 2
        assert "reference" in capsys.readouterr().err

    def test_ordering_policy_rejects_fast_engine(self, capsys):
        code = main([
            "campaign", "--policies", "edf", "--engine", "fast",
        ])
        assert code == 2
        assert "fast engine" in capsys.readouterr().err

    def test_ordering_policy_rejects_stream(self, capsys):
        code = main([
            "campaign", "--policies", "heft", "--stream", "poisson",
        ])
        assert code == 2
        assert "--discipline edf" in capsys.readouterr().err


class TestPowerFlags:
    def test_single_run_defaults(self):
        for command in ("compare", "stream"):
            args = build_parser().parse_args([command])
            assert args.power_cap is None
            assert args.power_slack == 0.0
            assert args.dvfs is None

    def test_single_run_options(self):
        args = build_parser().parse_args([
            "compare", "--power-cap", "400000",
            "--power-slack", "15", "--dvfs",
        ])
        assert args.power_cap == 400_000.0
        assert args.power_slack == 15.0
        assert args.dvfs == "default"  # bare flag = built-in ladder

    def test_campaign_sweep_form(self):
        args = build_parser().parse_args(["campaign"])
        assert args.power_cap is None
        assert args.power_slack == [0.0]
        assert not args.frontier
        args = build_parser().parse_args([
            "campaign", "--power-cap", "inf", "500000",
            "--power-slack", "0", "20",
            "--dvfs", "nominal:1:1,eco:0.8:0.9", "--frontier",
        ])
        assert args.power_cap == ["inf", "500000"]
        assert args.power_slack == [0.0, 20.0]
        assert args.dvfs == "nominal:1:1,eco:0.8:0.9"
        assert args.frontier


class TestPowerCommands:
    def test_compare_prints_power_accounting(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle",
            "--power-cap", "500000", "--power-slack", "10", "--dvfs",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "power budget: cap=500000~slack=10~dvfs" in out
        assert "power accounting" in out
        assert "grants=" in out and "consumed=" in out

    def test_compare_without_power_stays_silent(self, capsys):
        code = main([
            "compare", "--jobs", "40", "--seed", "0",
            "--predictor", "oracle",
        ])
        assert code == 0
        assert "power" not in capsys.readouterr().out

    def test_compare_rejects_bad_dvfs_spec(self, capsys):
        code = main([
            "compare", "--jobs", "20", "--dvfs", "eco",
        ])
        assert code == 2
        assert "eco" in capsys.readouterr().err

    def test_stream_prints_power_line(self, capsys):
        code = main([
            "stream", "--max-jobs", "80", "--seed", "2",
            "--power-cap", "300000", "--power-slack", "25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "power (cap=300000~slack=25):" in out
        assert "throttled=" in out

    def test_campaign_power_sweep_and_frontier(self, capsys):
        code = main([
            "campaign", "--policies", "proposed", "--seeds", "0",
            "--jobs", "10", "--interarrival", "9000",
            "--workers", "1", "--dag", "--dag-deadline-slack", "1.3",
            "--power-cap", "inf", "300000", "--frontier",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "%cap=300000" in out          # summary carries the axis
        assert "uncapped" in out and "pareto" in out  # frontier table

    def test_frontier_needs_dag(self, capsys):
        code = main([
            "campaign", "--policies", "proposed", "--frontier",
        ])
        assert code == 2
        assert "--frontier needs --dag" in capsys.readouterr().err

    def test_campaign_metrics_out_records_power(self, capsys, tmp_path):
        import json as json_module

        metrics_path = tmp_path / "metrics.json"
        code = main([
            "campaign", "--policies", "proposed", "--seeds", "0",
            "--jobs", "20", "--workers", "1",
            "--power-cap", "400000",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        payload = json_module.loads(metrics_path.read_text())
        powers = {cell["power"] for cell in payload}
        assert powers == {None, "cap=400000"}
