"""Tests for the high-level experiment API."""

import json

import pytest

import repro.characterization.dataset
import repro.experiment
from repro.experiment import (
    _keyed_cache_path,
    default_dataset,
    default_predictor,
    default_store,
    quick_experiment,
    run_four_systems,
)
from repro.characterization import CharacterizationStore
from repro.core.predictor import AnnPredictor, OraclePredictor
from repro.workloads import eembc_suite, uniform_arrivals
from repro.workloads.eembc import EEMBC_NAMES


class TestDefaultStore:
    def test_contains_whole_suite(self):
        store = default_store(cache_path=None)
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_disk_cache_round_trip(self, tmp_path):
        path = tmp_path / "store.json"
        first = default_store(cache_path=path)
        # The cache is content-addressed: stem.<key>.json next to path.
        assert list(tmp_path.glob("store.*.json"))
        second = default_store(cache_path=path)
        for name in EEMBC_NAMES:
            assert first.best_config(name) == second.best_config(name)

    def test_stale_cache_rebuilt(self, tmp_path):
        path = tmp_path / "store.json"
        # A cache missing suite benchmarks is rebuilt, even with
        # matching metadata at the right keyed path.
        full = default_store(cache_path=path)
        keyed = _keyed_cache_path(path, full.meta)
        full.subset(["a2time"]).to_json(keyed)
        store = default_store(cache_path=path)
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_cache_is_keyed_by_seed(self, tmp_path):
        path = tmp_path / "store.json"
        s0 = default_store(cache_path=path, seed=0)
        s7 = default_store(cache_path=path, seed=7)
        # Two distinct files; neither run clobbered the other.
        assert len(list(tmp_path.glob("store.*.json"))) == 2
        # cacheb's trace is seed-sensitive: the two stores must differ.
        assert s0.counters("cacheb") != s7.counters("cacheb")

    def test_cached_load_serves_matching_seed_only(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "store.json"
        s0 = default_store(cache_path=path, seed=0)
        s7 = default_store(cache_path=path, seed=7)
        # Both seeds are now cached: loading must not recharacterise,
        # and each seed must get exactly its own numbers back.
        def boom(*args, **kwargs):
            raise AssertionError("recharacterised despite a valid cache")

        monkeypatch.setattr(
            repro.experiment, "characterize_suite", boom
        )
        again0 = default_store(cache_path=path, seed=0)
        again7 = default_store(cache_path=path, seed=7)
        assert again0.meta.seed == 0
        assert again7.meta.seed == 7
        assert again0.counters("cacheb") == s0.counters("cacheb")
        assert again7.counters("cacheb") == s7.counters("cacheb")

    def test_legacy_flat_cache_is_rebuilt(self, tmp_path):
        path = tmp_path / "store.json"
        full = default_store(cache_path=path, seed=0)
        keyed = _keyed_cache_path(path, full.meta)
        # Downgrade the file to the pre-metadata flat layout.
        benchmarks = json.loads(keyed.read_text())["benchmarks"]
        keyed.write_text(json.dumps(benchmarks))
        assert CharacterizationStore.from_json(keyed).meta is None
        store = default_store(cache_path=path, seed=0)
        assert store.meta == full.meta
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_parallel_workers_match_serial(self, tmp_path):
        serial = default_store(cache_path=None, seed=0)
        parallel = default_store(cache_path=None, seed=0, workers=2)
        for name in EEMBC_NAMES:
            assert serial.counters(name) == parallel.counters(name)
            assert serial.best_config(name) == parallel.best_config(name)


class TestDefaultDataset:
    def test_variant_expansion(self, tmp_path):
        path = tmp_path / "dataset.json"
        dataset, store = default_dataset(
            2, cache_path=path, seed=0
        )
        assert len(dataset) == 2 * len(EEMBC_NAMES)
        assert list(tmp_path.glob("dataset.*.json"))
        # Second call reuses the cache.
        dataset2, _ = default_dataset(2, cache_path=path, seed=0)
        assert dataset2.names == dataset.names

    def test_dataset_cache_keyed_by_variants(self, tmp_path):
        path = tmp_path / "dataset.json"
        default_dataset(2, cache_path=path, seed=0)
        default_dataset(3, cache_path=path, seed=0)
        # Different expansions land in different cache files.
        assert len(list(tmp_path.glob("dataset.*.json"))) == 2

    def test_pure_cache_hit_writes_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "dataset.json"
        default_dataset(2, cache_path=path, seed=0)

        def boom(*args, **kwargs):
            raise AssertionError("rewrote the cache on a pure hit")

        monkeypatch.setattr(CharacterizationStore, "to_json", boom)
        dataset, _ = default_dataset(2, cache_path=path, seed=0)
        assert len(dataset) == 2 * len(EEMBC_NAMES)

    def test_partial_cache_completed_and_written(self, tmp_path):
        path = tmp_path / "dataset.json"
        _, store = default_dataset(2, cache_path=path, seed=0)
        keyed = list(tmp_path.glob("dataset.*.json"))[0]
        # Truncate the cache to one family's variants; the next call
        # must re-characterise the rest and rewrite the file.
        partial = store.subset(["a2time", "a2time.v1"])
        partial.meta = store.meta
        partial.to_json(keyed)
        before = keyed.read_text()
        dataset, _ = default_dataset(2, cache_path=path, seed=0)
        assert len(dataset) == 2 * len(EEMBC_NAMES)
        assert keyed.read_text() != before

    def test_base_store_reused_without_recharacterisation(
        self, tmp_path, monkeypatch
    ):
        # With one variant per family the expanded suite is exactly the
        # base suite, so a matching suite store covers every sample.
        base = default_store(cache_path=None, seed=0)

        def boom(*args, **kwargs):
            raise AssertionError("re-characterised despite a base store")

        monkeypatch.setattr(
            repro.characterization.dataset, "characterize_benchmark", boom
        )
        dataset, _ = default_dataset(
            1, cache_path=None, seed=0, base_store=base
        )
        assert len(dataset) == len(EEMBC_NAMES)

    def test_mismatched_base_store_ignored(self, tmp_path, monkeypatch):
        base = default_store(cache_path=None, seed=7)
        calls = []
        original = repro.characterization.dataset.characterize_benchmark

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            repro.characterization.dataset,
            "characterize_benchmark",
            counting,
        )
        # A seed-7 store must not be served for a seed-0 dataset: every
        # benchmark is characterised fresh.
        default_dataset(1, cache_path=None, seed=0, base_store=base)
        assert len(calls) == len(EEMBC_NAMES)


class TestDefaultPredictor:
    def test_oracle_requires_store(self):
        with pytest.raises(ValueError):
            default_predictor(None, kind="oracle")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            default_predictor(None, kind="svm")

    def test_oracle_returns_oracle(self):
        store = default_store(cache_path=None)
        predictor = default_predictor(store, kind="oracle")
        assert isinstance(predictor, OraclePredictor)

    def test_second_call_trains_zero_epochs(self, tmp_path, monkeypatch):
        """Acceptance: a repeat call is a pure model-store load."""
        kwargs = dict(
            variants_per_family=2,
            n_members=3,
            epochs=10,
            seed=0,
            model_cache_path=tmp_path / "model.json",
            dataset_cache_path=tmp_path / "dataset.json",
        )
        first = default_predictor(None, **kwargs)

        def boom(*args, **kwargs):
            raise AssertionError("trained despite a cached model")

        monkeypatch.setattr(AnnPredictor, "fit", boom)
        second = default_predictor(None, **kwargs)
        dataset, _ = default_dataset(
            2, cache_path=tmp_path / "dataset.json", seed=0
        )
        assert (
            first.predict_sizes_kb(dataset.features)
            == second.predict_sizes_kb(dataset.features)
        ).all()

    def test_model_cache_keyed_by_training_inputs(self, tmp_path):
        kwargs = dict(
            variants_per_family=2,
            n_members=2,
            epochs=5,
            model_cache_path=tmp_path / "model.json",
            dataset_cache_path=tmp_path / "dataset.json",
        )
        default_predictor(None, seed=0, **kwargs)
        default_predictor(None, seed=1, **kwargs)
        # Distinct seeds → distinct content-addressed model files.
        assert len(list(tmp_path.glob("model.*.json"))) == 2

    def test_engines_cache_interchangeably(self, tmp_path, monkeypatch):
        """Both engines produce the same weights, so either may serve
        the other's cache entry."""
        kwargs = dict(
            variants_per_family=2,
            n_members=2,
            epochs=5,
            seed=0,
            model_cache_path=tmp_path / "model.json",
            dataset_cache_path=tmp_path / "dataset.json",
        )
        default_predictor(None, engine="sequential", **kwargs)

        def boom(*args, **kwargs):
            raise AssertionError("trained despite a cached model")

        monkeypatch.setattr(AnnPredictor, "fit", boom)
        default_predictor(None, engine="batched", **kwargs)

    def test_passed_store_seeds_dataset_build(self, monkeypatch, tmp_path):
        """Satellite fix: kind='ann' no longer ignores its store."""
        store = default_store(cache_path=None, seed=0)

        def boom(*args, **kwargs):
            raise AssertionError("re-characterised despite a base store")

        monkeypatch.setattr(
            repro.characterization.dataset, "characterize_benchmark", boom
        )
        predictor = default_predictor(
            store,
            variants_per_family=1,
            n_members=2,
            epochs=5,
            seed=0,
            model_cache_path=tmp_path / "model.json",
            dataset_cache_path=None,
        )
        assert predictor.predict_sizes_kb(
            default_dataset(1, cache_path=None, seed=0,
                            base_store=store)[0].features[:2]
        ).shape == (2,)


class TestRunFourSystems:
    @pytest.fixture(scope="class")
    def setup(self):
        store = default_store(cache_path=None)
        predictor = OraclePredictor(store)
        arrivals = uniform_arrivals(eembc_suite(), count=120, seed=0)
        return store, predictor, arrivals

    def test_all_four_policies(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(arrivals, store, predictor)
        assert set(results) == {
            "base", "optimal", "energy_centric", "proposed"
        }
        for result in results.values():
            assert result.jobs_completed == 120

    def test_policy_subset(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(
            arrivals, store, predictor, policies=("base", "proposed")
        )
        assert set(results) == {"base", "proposed"}

    def test_same_arrivals_everywhere(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(
            arrivals, store, predictor, policies=("base", "proposed")
        )
        for result in results.values():
            ids = sorted(r.job_id for r in result.jobs)
            assert ids == list(range(120))


class TestQuickExperiment:
    def test_oracle_quick_run(self, tmp_path):
        results = quick_experiment(
            n_jobs=80, seed=0, predictor_kind="oracle",
            cache_path=tmp_path / "store.json",
        )
        assert results["proposed"].jobs_completed == 80
        assert (
            results["proposed"].total_energy_nj
            < results["base"].total_energy_nj
        )
