"""Tests for the high-level experiment API."""

import json

import pytest

import repro.experiment
from repro.experiment import (
    _keyed_cache_path,
    default_dataset,
    default_predictor,
    default_store,
    quick_experiment,
    run_four_systems,
)
from repro.characterization import CharacterizationStore
from repro.core.predictor import OraclePredictor
from repro.workloads import eembc_suite, uniform_arrivals
from repro.workloads.eembc import EEMBC_NAMES


class TestDefaultStore:
    def test_contains_whole_suite(self):
        store = default_store(cache_path=None)
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_disk_cache_round_trip(self, tmp_path):
        path = tmp_path / "store.json"
        first = default_store(cache_path=path)
        # The cache is content-addressed: stem.<key>.json next to path.
        assert list(tmp_path.glob("store.*.json"))
        second = default_store(cache_path=path)
        for name in EEMBC_NAMES:
            assert first.best_config(name) == second.best_config(name)

    def test_stale_cache_rebuilt(self, tmp_path):
        path = tmp_path / "store.json"
        # A cache missing suite benchmarks is rebuilt, even with
        # matching metadata at the right keyed path.
        full = default_store(cache_path=path)
        keyed = _keyed_cache_path(path, full.meta)
        full.subset(["a2time"]).to_json(keyed)
        store = default_store(cache_path=path)
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_cache_is_keyed_by_seed(self, tmp_path):
        path = tmp_path / "store.json"
        s0 = default_store(cache_path=path, seed=0)
        s7 = default_store(cache_path=path, seed=7)
        # Two distinct files; neither run clobbered the other.
        assert len(list(tmp_path.glob("store.*.json"))) == 2
        # cacheb's trace is seed-sensitive: the two stores must differ.
        assert s0.counters("cacheb") != s7.counters("cacheb")

    def test_cached_load_serves_matching_seed_only(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "store.json"
        s0 = default_store(cache_path=path, seed=0)
        s7 = default_store(cache_path=path, seed=7)
        # Both seeds are now cached: loading must not recharacterise,
        # and each seed must get exactly its own numbers back.
        def boom(*args, **kwargs):
            raise AssertionError("recharacterised despite a valid cache")

        monkeypatch.setattr(
            repro.experiment, "characterize_suite", boom
        )
        again0 = default_store(cache_path=path, seed=0)
        again7 = default_store(cache_path=path, seed=7)
        assert again0.meta.seed == 0
        assert again7.meta.seed == 7
        assert again0.counters("cacheb") == s0.counters("cacheb")
        assert again7.counters("cacheb") == s7.counters("cacheb")

    def test_legacy_flat_cache_is_rebuilt(self, tmp_path):
        path = tmp_path / "store.json"
        full = default_store(cache_path=path, seed=0)
        keyed = _keyed_cache_path(path, full.meta)
        # Downgrade the file to the pre-metadata flat layout.
        benchmarks = json.loads(keyed.read_text())["benchmarks"]
        keyed.write_text(json.dumps(benchmarks))
        assert CharacterizationStore.from_json(keyed).meta is None
        store = default_store(cache_path=path, seed=0)
        assert store.meta == full.meta
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_parallel_workers_match_serial(self, tmp_path):
        serial = default_store(cache_path=None, seed=0)
        parallel = default_store(cache_path=None, seed=0, workers=2)
        for name in EEMBC_NAMES:
            assert serial.counters(name) == parallel.counters(name)
            assert serial.best_config(name) == parallel.best_config(name)


class TestDefaultDataset:
    def test_variant_expansion(self, tmp_path):
        path = tmp_path / "dataset.json"
        dataset, store = default_dataset(
            2, cache_path=path, seed=0
        )
        assert len(dataset) == 2 * len(EEMBC_NAMES)
        assert list(tmp_path.glob("dataset.*.json"))
        # Second call reuses the cache.
        dataset2, _ = default_dataset(2, cache_path=path, seed=0)
        assert dataset2.names == dataset.names

    def test_dataset_cache_keyed_by_variants(self, tmp_path):
        path = tmp_path / "dataset.json"
        default_dataset(2, cache_path=path, seed=0)
        default_dataset(3, cache_path=path, seed=0)
        # Different expansions land in different cache files.
        assert len(list(tmp_path.glob("dataset.*.json"))) == 2


class TestDefaultPredictor:
    def test_oracle_requires_store(self):
        with pytest.raises(ValueError):
            default_predictor(None, kind="oracle")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            default_predictor(None, kind="svm")

    def test_oracle_returns_oracle(self):
        store = default_store(cache_path=None)
        predictor = default_predictor(store, kind="oracle")
        assert isinstance(predictor, OraclePredictor)


class TestRunFourSystems:
    @pytest.fixture(scope="class")
    def setup(self):
        store = default_store(cache_path=None)
        predictor = OraclePredictor(store)
        arrivals = uniform_arrivals(eembc_suite(), count=120, seed=0)
        return store, predictor, arrivals

    def test_all_four_policies(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(arrivals, store, predictor)
        assert set(results) == {
            "base", "optimal", "energy_centric", "proposed"
        }
        for result in results.values():
            assert result.jobs_completed == 120

    def test_policy_subset(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(
            arrivals, store, predictor, policies=("base", "proposed")
        )
        assert set(results) == {"base", "proposed"}

    def test_same_arrivals_everywhere(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(
            arrivals, store, predictor, policies=("base", "proposed")
        )
        for result in results.values():
            ids = sorted(r.job_id for r in result.jobs)
            assert ids == list(range(120))


class TestQuickExperiment:
    def test_oracle_quick_run(self, tmp_path):
        results = quick_experiment(
            n_jobs=80, seed=0, predictor_kind="oracle",
            cache_path=tmp_path / "store.json",
        )
        assert results["proposed"].jobs_completed == 80
        assert (
            results["proposed"].total_energy_nj
            < results["base"].total_energy_nj
        )
