"""Tests for the high-level experiment API."""

import pytest

from repro.experiment import (
    default_dataset,
    default_predictor,
    default_store,
    quick_experiment,
    run_four_systems,
)
from repro.core.predictor import OraclePredictor
from repro.workloads import eembc_suite, uniform_arrivals
from repro.workloads.eembc import EEMBC_NAMES


class TestDefaultStore:
    def test_contains_whole_suite(self):
        store = default_store(cache_path=None)
        assert set(EEMBC_NAMES) <= set(store.names())

    def test_disk_cache_round_trip(self, tmp_path):
        path = tmp_path / "store.json"
        first = default_store(cache_path=path)
        assert path.exists()
        second = default_store(cache_path=path)
        for name in EEMBC_NAMES:
            assert first.best_config(name) == second.best_config(name)

    def test_stale_cache_rebuilt(self, tmp_path):
        path = tmp_path / "store.json"
        # A cache missing suite benchmarks is rebuilt.
        partial = default_store(cache_path=None).subset(["a2time"])
        partial.to_json(path)
        store = default_store(cache_path=path)
        assert set(EEMBC_NAMES) <= set(store.names())


class TestDefaultDataset:
    def test_variant_expansion(self, tmp_path):
        path = tmp_path / "dataset.json"
        dataset, store = default_dataset(
            2, cache_path=path, seed=0
        )
        assert len(dataset) == 2 * len(EEMBC_NAMES)
        assert path.exists()
        # Second call reuses the cache.
        dataset2, _ = default_dataset(2, cache_path=path, seed=0)
        assert dataset2.names == dataset.names


class TestDefaultPredictor:
    def test_oracle_requires_store(self):
        with pytest.raises(ValueError):
            default_predictor(None, kind="oracle")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            default_predictor(None, kind="svm")

    def test_oracle_returns_oracle(self):
        store = default_store(cache_path=None)
        predictor = default_predictor(store, kind="oracle")
        assert isinstance(predictor, OraclePredictor)


class TestRunFourSystems:
    @pytest.fixture(scope="class")
    def setup(self):
        store = default_store(cache_path=None)
        predictor = OraclePredictor(store)
        arrivals = uniform_arrivals(eembc_suite(), count=120, seed=0)
        return store, predictor, arrivals

    def test_all_four_policies(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(arrivals, store, predictor)
        assert set(results) == {
            "base", "optimal", "energy_centric", "proposed"
        }
        for result in results.values():
            assert result.jobs_completed == 120

    def test_policy_subset(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(
            arrivals, store, predictor, policies=("base", "proposed")
        )
        assert set(results) == {"base", "proposed"}

    def test_same_arrivals_everywhere(self, setup):
        store, predictor, arrivals = setup
        results = run_four_systems(
            arrivals, store, predictor, policies=("base", "proposed")
        )
        for result in results.values():
            ids = sorted(r.job_id for r in result.jobs)
            assert ids == list(range(120))


class TestQuickExperiment:
    def test_oracle_quick_run(self, tmp_path):
        results = quick_experiment(
            n_jobs=80, seed=0, predictor_kind="oracle",
            cache_path=tmp_path / "store.json",
        )
        assert results["proposed"].jobs_completed == 80
        assert (
            results["proposed"].total_energy_nj
            < results["base"].total_energy_nj
        )
