"""Tests for internal utilities."""

from repro._util import stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a2time", 0) == stable_seed("a2time", 0)

    def test_distinct_inputs_decorrelate(self):
        seeds = {
            stable_seed(name, seed)
            for name in ("a2time", "matrix", "pntrch")
            for seed in range(5)
        }
        assert len(seeds) == 15

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_fits_in_63_bits(self):
        for i in range(100):
            value = stable_seed("x", i)
            assert 0 <= value < 2**63

    def test_known_value_is_process_independent(self):
        # Pin one value so any accidental switch to salted hashing fails.
        import subprocess
        import sys

        expected = stable_seed("pin", 42)
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro._util import stable_seed; print(stable_seed('pin', 42))"],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout.strip()) == expected
