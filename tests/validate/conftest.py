"""Fixtures for the validation-layer tests: small store + scenarios."""

import pytest

from repro.characterization.explorer import characterize_suite
from repro.characterization.store import CharacterizationStore
from repro.core.policies import make_policy
from repro.core.predictor import OraclePredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system, paper_system
from repro.energy.tables import EnergyTable
from repro.workloads.arrivals import JobArrival, with_qos

#: Same mixed-best-size suite the core scheduler tests use.
SUITE_NAMES = ("puwmod", "idctrn", "pntrch", "a2time")


@pytest.fixture(scope="session")
def small_store():
    from repro.workloads.eembc import eembc_benchmark

    specs = [eembc_benchmark(name) for name in SUITE_NAMES]
    return CharacterizationStore(characterize_suite(specs))


@pytest.fixture(scope="session")
def oracle(small_store):
    return OraclePredictor(small_store)


@pytest.fixture(scope="session")
def energy_table():
    return EnergyTable()


def make_simulation(policy_name, store, predictor=None, energy_table=None,
                    system=None, **kwargs):
    policy = make_policy(policy_name)
    if system is None:
        system = base_system() if policy_name == "base" else paper_system()
    return SchedulerSimulation(
        system,
        policy,
        store,
        predictor=predictor if policy.uses_predictor else None,
        energy_table=energy_table,
        **kwargs,
    )


def arrivals_for(names, gap=200_000, start=0):
    """One arrival per name, ``gap`` cycles apart."""
    return [
        JobArrival(job_id=i, benchmark=name, arrival_cycle=start + i * gap)
        for i, name in enumerate(names)
    ]


def qos_arrivals(repeats=10, gap=40_000, seed=1):
    """A priority/deadline stream dense enough to force preemptions."""
    return with_qos(
        arrivals_for(SUITE_NAMES * repeats, gap=gap),
        service_estimate=lambda name: 400_000,
        priority_levels=4,
        seed=seed,
    )
