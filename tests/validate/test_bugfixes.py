"""Regression tests for the accounting bugs the validation layer caught.

Each test pins one fixed behaviour:

1. idle leakage integrates piecewise over config residencies, not at
   the final config's static power;
2. the preemption same-cycle guard keeps only the current timestamp's
   victims (the old per-cycle dict grew without bound);
3. a completed job's ``energy_nj`` is the pro-rata charge over all its
   slices, not the completing slice's full-run estimate;
4. ``waiting_cycles`` accumulates over every queue visit, not just the
   wait before the first dispatch.
"""

import pytest

from repro.energy.model import EnergyModel
from repro.energy.tables import EnergyTable
from repro.obs import EnergyAccrued, JobArrived, JobPreempted, ListRecorder

from .conftest import SUITE_NAMES, arrivals_for, make_simulation, qos_arrivals


class AssocLeakModel(EnergyModel):
    """Static power that varies with associativity (not only size).

    Under the paper's model the static power depends only on the cache
    *size*, which is fixed per core — so the piecewise-idle fix is
    numerically invisible there.  This model makes the per-config
    difference observable.
    """

    def static_per_cycle_nj(self, config):
        return super().static_per_cycle_nj(config) * (1.0 + 0.1 * config.assoc)


class TestIdleLeakagePiecewise:
    def test_idle_integrates_over_residencies(self, small_store, oracle):
        table = EnergyTable(model=AssocLeakModel())
        sim = make_simulation("proposed", small_store, oracle, table,
                              validate=True)
        result = sim.run(arrivals_for(SUITE_NAMES * 6))
        makespan = result.makespan_cycles

        expected = 0.0
        final_config_formula = 0.0
        reconfigured = 0
        for core in sim.cores:
            intervals = core.residency_intervals(makespan)
            reconfigured += len(intervals) - 1
            for start, end, config, busy in intervals:
                expected += ((end - start) - busy) * table.get(
                    config
                ).static_per_cycle_nj
            final_config_formula += (
                makespan - core.busy_cycles
            ) * table.get(core.current_config).static_per_cycle_nj

        # The scenario actually exercises mid-run reconfigurations, and
        # under this model the old final-config formula disagrees.
        assert reconfigured > 0
        assert result.idle_energy_nj == pytest.approx(expected, rel=1e-12)
        assert result.idle_energy_nj != pytest.approx(
            final_config_formula, rel=1e-6
        )

    def test_residency_intervals_tile_the_run(self, small_store, oracle,
                                              energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              validate=True)
        result = sim.run(arrivals_for(SUITE_NAMES * 3))
        makespan = result.makespan_cycles
        for core in sim.cores:
            intervals = core.residency_intervals(makespan)
            assert intervals[0][0] == 0
            assert intervals[-1][1] == makespan
            for (_, prev_end, _, _), (start, _, _, _) in zip(
                intervals, intervals[1:]
            ):
                assert start == prev_end
            assert sum(busy for _, _, _, busy in intervals) == (
                core.busy_cycles
            )

    def test_default_model_unaffected(self, small_store, oracle,
                                      energy_table):
        """Size-only static power: piecewise == final-config formula."""
        sim = make_simulation("proposed", small_store, oracle, energy_table)
        result = sim.run(arrivals_for(SUITE_NAMES * 3))
        legacy = sum(
            (result.makespan_cycles - core.busy_cycles)
            * energy_table.get(core.current_config).static_per_cycle_nj
            for core in sim.cores
        )
        assert result.idle_energy_nj == pytest.approx(legacy, rel=1e-12)


class TestPreemptedGuardBounded:
    def test_old_unbounded_dict_is_gone(self, small_store, oracle,
                                        energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True)
        assert not hasattr(sim, "_preempted_at")

    def test_guard_stays_bounded_over_long_run(self, small_store, oracle,
                                               energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              validate=True)
        result = sim.run(qos_arrivals(repeats=15))
        assert result.preemption_count > 0
        # Only the *current* timestamp's victims are retained — never
        # more than one per core, regardless of run length.
        assert len(sim._preempted_now) <= len(sim.cores)

    def test_same_cycle_victim_not_repreempted(self, small_store, oracle,
                                               energy_table):
        """The guard still prevents preemption ping-pong in one cycle."""
        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder, validate=True)
        sim.run(qos_arrivals(repeats=10))
        preempts = [e for e in recorder.events
                    if isinstance(e, JobPreempted)]
        assert preempts
        by_cycle = {}
        for event in preempts:
            by_cycle.setdefault(event.cycle, []).append(event.job_id)
        for cycle, job_ids in by_cycle.items():
            assert len(job_ids) == len(set(job_ids)), (
                f"job preempted twice at cycle {cycle}"
            )


class TestPerJobEnergyAttribution:
    def test_record_energy_is_net_of_slices(self, small_store, oracle,
                                            energy_table):
        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder, validate=True)
        result = sim.run(qos_arrivals())
        preempted_records = [r for r in result.jobs if r.preemptions > 0]
        assert preempted_records

        charged = {}
        for event in recorder.events:
            if isinstance(event, EnergyAccrued):
                charged[event.job_id] = charged.get(event.job_id, 0.0) + (
                    event.dynamic_nj + event.static_nj
                )
            elif isinstance(event, JobPreempted):
                charged[event.job_id] -= (
                    event.refunded_dynamic_nj + event.refunded_static_nj
                )
        for record in result.jobs:
            assert record.energy_nj == pytest.approx(
                charged[record.job_id], rel=1e-12
            )

    def test_preempted_job_is_not_charged_full_estimates(self, small_store,
                                                         oracle,
                                                         energy_table):
        """A resumed job pays f*E + (1-f)*E', never E + E' or plain E'."""
        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder, validate=True)
        result = sim.run(qos_arrivals())
        accrued = {}
        for event in recorder.events:
            if isinstance(event, EnergyAccrued):
                accrued.setdefault(event.job_id, []).append(
                    event.dynamic_nj + event.static_nj
                )
        for record in result.jobs:
            if record.preemptions == 0:
                continue
            slices = accrued[record.job_id]
            assert len(slices) >= 2
            # Strictly less than the sum of the gross slice charges
            # (refunds were netted) and more than the final slice alone.
            assert record.energy_nj < sum(slices)
            assert record.energy_nj > slices[-1]

    def test_job_energies_sum_to_execution_total(self, small_store, oracle,
                                                 energy_table):
        import math

        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="edf", preemptive=True,
                              validate=True)
        result = sim.run(qos_arrivals())
        execution = (
            result.dynamic_energy_nj
            - result.reconfig_energy_nj
            - result.profiling_overhead_nj
            + result.busy_static_energy_nj
        )
        assert math.fsum(r.energy_nj for r in result.jobs) == (
            pytest.approx(execution, rel=1e-9)
        )


class TestWaitingAccumulation:
    def test_waiting_counts_every_queue_visit(self, small_store, oracle,
                                              energy_table):
        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder, validate=True)
        result = sim.run(qos_arrivals())

        enqueued = {}
        waited = {}
        for event in recorder.events:
            if isinstance(event, JobArrived):
                enqueued[event.job_id] = event.cycle
            elif isinstance(event, EnergyAccrued):
                waited[event.job_id] = waited.get(event.job_id, 0) + (
                    event.cycle - enqueued.pop(event.job_id)
                )
            elif isinstance(event, JobPreempted):
                enqueued[event.job_id] = event.cycle
        for record in result.jobs:
            assert record.waiting_cycles == waited[record.job_id]

    def test_requeued_wait_exceeds_first_dispatch_wait(self, small_store,
                                                       oracle, energy_table):
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              validate=True)
        result = sim.run(qos_arrivals())
        first_wait_only = {
            r.job_id: r.start_cycle - r.arrival_cycle for r in result.jobs
        }
        # Every job waits at least its first-dispatch wait...
        for record in result.jobs:
            assert record.waiting_cycles >= first_wait_only[record.job_id]
        # ...and some preempted job actually waited again after requeue.
        assert any(
            r.waiting_cycles > first_wait_only[r.job_id]
            for r in result.jobs if r.preemptions > 0
        )

    def test_unpreempted_waiting_unchanged(self, small_store, oracle,
                                           energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table,
                              validate=True)
        result = sim.run(arrivals_for(SUITE_NAMES * 3, gap=10_000))
        for record in result.jobs:
            assert record.waiting_cycles == (
                record.start_cycle - record.arrival_cycle
            )
