"""Seeded randomized property harness over the simulation grid.

Samples (policy, discipline, preemption, arrival-stream) combinations
with a fixed-seed PRNG and runs each with the full validation layer
attached — the ledger and invariants are the properties; any
conservation failure raises out of the run.  On top of that, each
sampled run cross-checks:

* traced vs untraced: attaching a recorder never changes results;
* trace replay: the recorded event stream balances on its own;
* serial vs campaign: the campaign runner reproduces a directly-run
  simulation bit-for-bit, with any worker count.
"""

import dataclasses
import random

import pytest

from repro.obs import ListRecorder
from repro.validate import replay_trace
from repro.workloads.arrivals import JobArrival, with_qos

from .conftest import SUITE_NAMES, make_simulation

SEEDS = (0, 1, 2)


def sample_case(rng):
    policy = rng.choice(("base", "optimal", "energy_centric", "proposed"))
    discipline = rng.choice(("fifo", "priority", "edf"))
    preemptive = discipline != "fifo" and rng.random() < 0.5
    count = rng.randrange(8, 25)
    gap = rng.choice((30_000, 60_000, 120_000))
    arrivals = [
        JobArrival(
            job_id=i,
            benchmark=rng.choice(SUITE_NAMES),
            arrival_cycle=i * gap + rng.randrange(0, gap),
        )
        for i in range(count)
    ]
    if discipline != "fifo":
        arrivals = with_qos(
            arrivals,
            service_estimate=lambda name: 400_000,
            priority_levels=rng.randrange(2, 5),
            deadline_slack=rng.uniform(1.5, 4.0),
            seed=rng.randrange(100),
        )
    return policy, discipline, preemptive, arrivals


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzzed_grid_conserves_energy(seed, small_store, oracle,
                                      energy_table):
    rng = random.Random(seed)
    for _ in range(6):
        policy, discipline, preemptive, arrivals = sample_case(rng)
        recorder = ListRecorder()
        traced = make_simulation(
            policy, small_store, oracle, energy_table,
            discipline=discipline, preemptive=preemptive,
            validate=True, recorder=recorder,
        ).run(arrivals)
        untraced = make_simulation(
            policy, small_store, oracle, energy_table,
            discipline=discipline, preemptive=preemptive,
            validate=True,
        ).run(arrivals)
        assert dataclasses.asdict(traced) == dataclasses.asdict(untraced)

        report = replay_trace(recorder.events)
        assert report.completions == traced.jobs_completed
        assert report.preemptions == traced.preemption_count
        assert not report.unfinished_jobs


def test_campaign_matches_direct_simulation(default_campaign_store):
    """One campaign replication == the same spec simulated directly."""
    from repro.campaign import run_campaign
    from repro.core.predictor import OraclePredictor
    from repro.workloads import eembc_suite, uniform_arrivals

    store = default_campaign_store
    campaign = run_campaign(
        store,
        policies=("base", "proposed"),
        seeds=(0,),
        loads=((30, 56_000),),
        workers=1,
        validate=True,
    )
    predictor = OraclePredictor(store)
    arrivals = uniform_arrivals(
        eembc_suite(), count=30, seed=0, mean_interarrival_cycles=56_000
    )
    for replication in campaign.replications:
        direct = make_simulation(
            replication.spec.policy, store, predictor, validate=True
        ).run(arrivals)
        assert replication.total_energy_nj == direct.total_energy_nj
        assert replication.idle_energy_nj == direct.idle_energy_nj
        assert replication.mean_waiting_cycles == (
            direct.mean_waiting_cycles
        )


def test_campaign_worker_count_invariant(default_campaign_store):
    """Validated campaigns stay worker-count deterministic."""
    from repro.campaign import run_campaign

    kwargs = dict(
        policies=("base", "proposed"),
        seeds=(0, 1),
        loads=((25, 56_000),),
        validate=True,
    )
    serial = run_campaign(default_campaign_store, workers=1, **kwargs)
    parallel = run_campaign(default_campaign_store, workers=2, **kwargs)
    for a, b in zip(serial.replications, parallel.replications):
        left = dataclasses.asdict(a)
        right = dataclasses.asdict(b)
        left.pop("seconds")
        right.pop("seconds")
        assert left == right


@pytest.fixture(scope="module")
def default_campaign_store():
    from repro.experiment import default_store

    return default_store(cache_path=None)
