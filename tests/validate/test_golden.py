"""Golden end-to-end conservation and bit-identity guarantees.

Two contracts:

* ``total == idle + busy_static + dynamic`` holds *bit-exactly* for
  every policy x discipline x preemption combination (the result's
  ``total_energy_nj`` is defined as that sum, and the ledger re-derives
  each term independently);
* attaching ``validate=True`` never changes a passing run's results.
"""

import dataclasses

import pytest

from .conftest import SUITE_NAMES, arrivals_for, make_simulation, qos_arrivals

POLICIES = ("base", "optimal", "energy_centric", "proposed")
DISCIPLINES = ("fifo", "priority", "edf")


def scenario(discipline, preemptive):
    if discipline == "fifo":
        return arrivals_for(SUITE_NAMES * 4, gap=60_000)
    return qos_arrivals(repeats=4, gap=60_000)


def grid():
    for policy in POLICIES:
        for discipline in DISCIPLINES:
            for preemptive in (False, True):
                if preemptive and discipline == "fifo":
                    continue
                yield policy, discipline, preemptive


@pytest.mark.parametrize("policy,discipline,preemptive", list(grid()))
def test_total_is_exact_sum_of_categories(policy, discipline, preemptive,
                                          small_store, oracle, energy_table):
    sim = make_simulation(policy, small_store, oracle, energy_table,
                          discipline=discipline, preemptive=preemptive,
                          validate=True)
    result = sim.run(scenario(discipline, preemptive))
    assert result.total_energy_nj == (
        result.idle_energy_nj
        + result.busy_static_energy_nj
        + result.dynamic_energy_nj
    )
    # The dynamic bucket contains its overhead sub-buckets.
    assert result.reconfig_energy_nj <= result.dynamic_energy_nj
    assert result.profiling_overhead_nj <= result.dynamic_energy_nj


@pytest.mark.parametrize("policy,discipline,preemptive", list(grid()))
def test_validation_does_not_change_results(policy, discipline, preemptive,
                                            small_store, oracle,
                                            energy_table):
    arrivals = scenario(discipline, preemptive)
    plain = make_simulation(policy, small_store, oracle, energy_table,
                            discipline=discipline,
                            preemptive=preemptive).run(arrivals)
    checked = make_simulation(policy, small_store, oracle, energy_table,
                              discipline=discipline, preemptive=preemptive,
                              validate=True).run(arrivals)
    assert dataclasses.asdict(plain) == dataclasses.asdict(checked)
