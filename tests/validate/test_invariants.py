"""Tests for the runtime invariant harness (``validate=True``)."""

from types import SimpleNamespace

import pytest

from repro.obs import InvariantViolation, ListRecorder, MetricsRegistry
from repro.validate import EnergyLedger, SimulationValidator, ValidationError

from .conftest import SUITE_NAMES, arrivals_for, make_simulation


def fake_sim(**overrides):
    """The minimal sim surface the validator hooks touch."""
    sim = SimpleNamespace(
        now=0,
        metrics=None,
        recorder=SimpleNamespace(enabled=False),
        queue=[],
        _pending={},
        cores=[],
    )
    for key, value in overrides.items():
        setattr(sim, key, value)
    return sim


def fake_job(job_id=1, remaining=1.0):
    return SimpleNamespace(job_id=job_id, remaining_fraction=remaining)


def fake_core(index=0):
    return SimpleNamespace(index=index, failed=False)


class TestHookGuards:
    def test_dispatch_fraction_out_of_range(self):
        validator = SimulationValidator(fake_sim())
        with pytest.raises(ValidationError, match="invariant.fraction"):
            validator.on_dispatch(
                fake_job(remaining=0.0), fake_core(),
                dynamic_nj=1.0, static_nj=1.0, overhead_nj=0.0,
                reconfig_nj=0.0,
            )

    def test_dispatch_negative_charge(self):
        validator = SimulationValidator(fake_sim())
        with pytest.raises(ValidationError, match="ledger.dispatch"):
            validator.on_dispatch(
                fake_job(), fake_core(),
                dynamic_nj=-1.0, static_nj=0.0, overhead_nj=0.0,
                reconfig_nj=0.0,
            )

    def test_preempt_fraction_run_out_of_range(self):
        validator = SimulationValidator(fake_sim())
        with pytest.raises(ValidationError, match="invariant.fraction"):
            validator.on_preempt(
                fake_job(remaining=0.5), fake_core(), fraction_run=1.0,
                refund_dynamic_nj=0.0, refund_static_nj=0.0,
                refund_overhead_nj=0.0,
            )

    def test_preempt_requeued_fraction_out_of_range(self):
        validator = SimulationValidator(fake_sim())
        with pytest.raises(ValidationError, match="invariant.fraction"):
            validator.on_preempt(
                fake_job(remaining=0.0), fake_core(), fraction_run=0.5,
                refund_dynamic_nj=0.0, refund_static_nj=0.0,
                refund_overhead_nj=0.0,
            )

    def test_preempt_negative_refund(self):
        validator = SimulationValidator(fake_sim())
        with pytest.raises(ValidationError, match="invariant.refund"):
            validator.on_preempt(
                fake_job(remaining=0.5), fake_core(), fraction_run=0.5,
                refund_dynamic_nj=-1.0, refund_static_nj=0.0,
                refund_overhead_nj=0.0,
            )

    def test_complete_with_work_left(self):
        validator = SimulationValidator(fake_sim())
        validator.ledger.post_dispatch(0, 1, 0, dynamic_nj=1.0,
                                       static_nj=0.0)
        with pytest.raises(ValidationError, match="invariant.fraction"):
            validator.on_complete(fake_job(remaining=0.25), core_index=0)


class TestStructuralInvariants:
    def test_queue_conservation_violation(self):
        validator = SimulationValidator(fake_sim())
        validator.arrived = 2
        validator.completed = 0
        with pytest.raises(ValidationError, match="invariant.queue"):
            validator.after_event()

    def test_idle_core_with_pending_execution(self):
        core = SimpleNamespace(index=0, current_job=None)
        sim = fake_sim(
            cores=[core],
            _pending={0: SimpleNamespace(job=fake_job(job_id=7))},
        )
        validator = SimulationValidator(sim)
        validator.arrived = 1
        with pytest.raises(ValidationError, match="invariant.core"):
            validator.after_event()

    def test_busy_core_without_pending_execution(self):
        core = SimpleNamespace(index=0, current_job=fake_job(job_id=7),
                               busy_until=100, failed=False)
        sim = fake_sim(cores=[core], _pending={})
        validator = SimulationValidator(sim)
        validator.arrived = 1
        validator.sim._pending = {}
        sim.queue = [fake_job(job_id=8)]
        with pytest.raises(ValidationError, match="invariant.core"):
            validator.after_event()

    def test_core_occupied_past_release(self):
        job = fake_job(job_id=7)
        core = SimpleNamespace(index=0, current_job=job, busy_until=50,
                               failed=False)
        sim = fake_sim(cores=[core],
                       _pending={0: SimpleNamespace(job=job)}, now=100)
        validator = SimulationValidator(sim)
        validator.arrived = 1
        with pytest.raises(ValidationError, match="past its release"):
            validator.after_event()

    def test_busy_until_equal_to_now_is_legal(self):
        # The completion event may still be queued at this timestamp.
        job = fake_job(job_id=7)
        core = SimpleNamespace(index=0, current_job=job, busy_until=100,
                               failed=False)
        sim = fake_sim(cores=[core],
                       _pending={0: SimpleNamespace(job=job)}, now=100)
        validator = SimulationValidator(sim)
        validator.arrived = 1
        validator.after_event()


class TestViolationReporting:
    def test_violation_emits_event_and_counter(self):
        recorder = ListRecorder()
        metrics = MetricsRegistry()
        sim = fake_sim(recorder=recorder, metrics=metrics, now=42)
        validator = SimulationValidator(sim)
        validator.arrived = 1
        with pytest.raises(ValidationError):
            validator.after_event()
        [event] = recorder.events
        assert isinstance(event, InvariantViolation)
        assert event.check == "invariant.queue"
        assert event.cycle == 42
        assert metrics.counter("sim.validate.violations").value == 1

    def test_violation_event_round_trips(self):
        from repro.obs import event_from_dict, validate_event_dict

        event = InvariantViolation(cycle=1, check="ledger.total",
                                   detail="off by 1", job_id=None,
                                   core_index=3)
        payload = event.to_dict()
        validate_event_dict(payload)
        assert event_from_dict(payload) == event


class TestEndToEnd:
    def test_clean_run_passes_and_counts_checks(self, small_store, oracle,
                                                energy_table):
        metrics = MetricsRegistry()
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              validate=True, metrics=metrics)
        sim.run(arrivals_for(SUITE_NAMES * 3))
        assert metrics.counter("sim.validate.checks").value > 0
        assert metrics.counter("sim.validate.violations").value == 0

    def test_lost_charge_is_detected_at_finish(self, small_store, oracle,
                                               energy_table, monkeypatch):
        """Sabotage: the ledger misses half of every dynamic charge, so
        the end-of-run conservation check must fail."""
        original = EnergyLedger.post_dispatch

        def lossy(self, cycle, job_id, core_index, *, dynamic_nj,
                  static_nj, overhead_nj=0.0, reconfig_nj=0.0,
                  token_nj=None):
            original(self, cycle, job_id, core_index,
                     dynamic_nj=dynamic_nj * 0.5, static_nj=static_nj,
                     overhead_nj=overhead_nj, reconfig_nj=reconfig_nj,
                     token_nj=token_nj)

        monkeypatch.setattr(EnergyLedger, "post_dispatch", lossy)
        sim = make_simulation("base", small_store, oracle, energy_table,
                              validate=True)
        with pytest.raises(ValidationError, match="ledger."):
            sim.run(arrivals_for(SUITE_NAMES))

    def test_unvalidated_run_has_no_validator(self, small_store, oracle,
                                              energy_table):
        sim = make_simulation("base", small_store, oracle, energy_table)
        assert sim._validator is None
        sim.run(arrivals_for(SUITE_NAMES))
