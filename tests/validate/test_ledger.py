"""Unit tests for the double-entry energy ledger."""

import math
from types import SimpleNamespace

import pytest

from repro.validate import EnergyLedger, ValidationError


def make_result(ledger, jobs=()):
    """A SimulationResult-shaped view that matches the ledger exactly."""
    return SimpleNamespace(
        idle_energy_nj=ledger.idle_nj,
        busy_static_energy_nj=ledger.busy_static_nj,
        dynamic_energy_nj=ledger.dynamic_with_overheads_nj,
        reconfig_energy_nj=ledger.reconfig_nj,
        profiling_overhead_nj=ledger.overhead_nj,
        total_energy_nj=ledger.total_nj,
        jobs=list(jobs),
    )


def job_record(job_id, energy_nj):
    return SimpleNamespace(job_id=job_id, energy_nj=energy_nj)


class TestPosting:
    def test_dispatch_accrues_all_views(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(100, 1, 0, dynamic_nj=10.0, static_nj=4.0,
                             overhead_nj=2.0, reconfig_nj=1.0)
        assert ledger.dynamic_nj == 10.0
        assert ledger.busy_static_nj == 4.0
        assert ledger.overhead_nj == 2.0
        assert ledger.reconfig_nj == 1.0
        # Overheads attribute to the core, not to the job.
        assert ledger.per_job_nj == {1: 14.0}
        assert ledger.per_core_nj == {0: 17.0}
        assert ledger.dispatches == 1

    def test_refund_nets_out(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(0, 1, 0, dynamic_nj=10.0, static_nj=4.0)
        ledger.post_refund(50, 1, 0, dynamic_nj=5.0, static_nj=2.0)
        assert ledger.execution_nj == pytest.approx(7.0)
        assert ledger.per_job_nj[1] == pytest.approx(7.0)
        assert ledger.per_core_nj[0] == pytest.approx(7.0)
        assert ledger.refunds == 1

    def test_idle_accrues_per_core(self):
        ledger = EnergyLedger()
        ledger.post_idle(0, 1000, 0.25)
        ledger.post_idle(1, 500, 0.5)
        assert ledger.idle_nj == pytest.approx(500.0)
        assert ledger.per_core_nj == {0: 250.0, 1: 250.0}

    def test_negative_charge_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValidationError, match="ledger.dispatch"):
            ledger.post_dispatch(0, 1, 0, dynamic_nj=-1.0, static_nj=0.0)

    def test_nan_charge_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValidationError, match="ledger.dispatch"):
            ledger.post_dispatch(0, 1, 0, dynamic_nj=float("nan"),
                                 static_nj=0.0)

    def test_negative_refund_rejected(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(0, 1, 0, dynamic_nj=10.0, static_nj=0.0)
        with pytest.raises(ValidationError, match="ledger.refund"):
            ledger.post_refund(0, 1, 0, dynamic_nj=-1.0, static_nj=0.0)

    def test_refund_exceeding_charge_rejected(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(0, 1, 0, dynamic_nj=10.0, static_nj=0.0)
        with pytest.raises(ValidationError, match="exceeds"):
            ledger.post_refund(0, 1, 0, dynamic_nj=11.0, static_nj=0.0)

    def test_full_refund_is_allowed(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(0, 1, 0, dynamic_nj=10.0, static_nj=4.0)
        ledger.post_refund(0, 1, 0, dynamic_nj=10.0, static_nj=4.0)
        assert ledger.per_job_nj[1] == pytest.approx(0.0)

    def test_negative_idle_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValidationError, match="ledger.idle"):
            ledger.post_idle(0, -1, 0.25)

    def test_posting_after_close_rejected(self):
        ledger = EnergyLedger()
        ledger.close_idle([], 0, lambda config: 0.0)
        with pytest.raises(ValidationError, match="ledger.closed"):
            ledger.post_dispatch(0, 1, 0, dynamic_nj=1.0, static_nj=0.0)

    def test_keep_entries_records_postings(self):
        ledger = EnergyLedger(keep_entries=True)
        ledger.post_dispatch(0, 1, 0, dynamic_nj=10.0, static_nj=4.0)
        ledger.post_refund(50, 1, 0, dynamic_nj=5.0, static_nj=2.0)
        ledger.post_idle(0, 100, 0.5)
        kinds = [entry.kind for entry in ledger.entries]
        assert kinds == ["dispatch", "refund", "idle"]
        # Double entry: the signed entry totals sum to the ledger total.
        assert math.fsum(e.total_nj for e in ledger.entries) == (
            pytest.approx(ledger.total_nj)
        )

    def test_entries_off_by_default(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(0, 1, 0, dynamic_nj=1.0, static_nj=0.0)
        assert ledger.entries == []


class TestCheck:
    def make_balanced(self):
        ledger = EnergyLedger()
        ledger.post_dispatch(0, 1, 0, dynamic_nj=10.0, static_nj=4.0,
                             overhead_nj=0.5, reconfig_nj=0.25)
        ledger.post_dispatch(10, 2, 1, dynamic_nj=8.0, static_nj=3.0)
        ledger.post_refund(20, 2, 1, dynamic_nj=4.0, static_nj=1.5)
        ledger.post_dispatch(30, 2, 0, dynamic_nj=4.0, static_nj=1.5)
        ledger.post_idle(0, 100, 0.25)
        ledger.post_idle(1, 200, 0.25)
        return ledger

    def records_for(self, ledger):
        return [job_record(job_id, energy)
                for job_id, energy in ledger.per_job_nj.items()]

    def test_balanced_ledger_passes(self):
        ledger = self.make_balanced()
        ledger.check(make_result(ledger, self.records_for(ledger)))

    def test_total_mismatch_detected(self):
        ledger = self.make_balanced()
        result = make_result(ledger, self.records_for(ledger))
        result.total_energy_nj += 1.0
        with pytest.raises(ValidationError, match="ledger.total"):
            ledger.check(result)

    def test_category_mismatch_detected(self):
        ledger = self.make_balanced()
        result = make_result(ledger, self.records_for(ledger))
        result.idle_energy_nj *= 1.001
        with pytest.raises(ValidationError, match="ledger.idle"):
            ledger.check(result)

    def test_job_attribution_mismatch_detected(self):
        ledger = self.make_balanced()
        records = self.records_for(ledger)
        records[0].energy_nj += 0.5
        with pytest.raises(ValidationError, match="ledger.job"):
            ledger.check(make_result(ledger, records))

    def test_uncharged_job_detected(self):
        ledger = self.make_balanced()
        records = self.records_for(ledger) + [job_record(99, 1.0)]
        with pytest.raises(ValidationError, match="never charged"):
            ledger.check(make_result(ledger, records))

    def test_ulp_noise_tolerated(self):
        ledger = self.make_balanced()
        result = make_result(ledger, self.records_for(ledger))
        # Re-association noise well inside the 2**-40 relative band.
        result.total_energy_nj *= 1.0 + 2.0 ** -50
        ledger.check(result)


class TestCloseIdle:
    def test_piecewise_residency_integration(self):
        from repro.core.scheduler import CoreState, Job
        from repro.core.system import CoreSpec

        from repro.cache.config import CacheConfig

        core = CoreState(CoreSpec(index=0, cache_size_kb=8))
        first_config = core.current_config
        job = Job(job_id=0, benchmark="b", arrival_cycle=0)
        core.begin(job, now=100, service_cycles=200)
        core.finish(now=300)
        other = CacheConfig(size_kb=first_config.size_kb,
                            assoc=first_config.assoc * 2,
                            line_b=first_config.line_b)
        core.tuner.reconfigure(other)
        core.note_reconfigured(300, first_config)

        ledger = EnergyLedger()
        powers = {first_config: 2.0, other: 3.0}
        ledger.close_idle([core], 1000, powers.__getitem__)
        # [0, 300) at 2.0 with 200 busy -> 100 idle; [300, 1000) at 3.0
        # fully idle -> 700 idle.
        assert ledger.idle_nj == pytest.approx(100 * 2.0 + 700 * 3.0)

    def test_busy_beyond_interval_rejected(self):
        core = SimpleNamespace(
            index=0,
            residency_intervals=lambda end: [(0, 100, "cfg", 150)],
        )
        ledger = EnergyLedger()
        with pytest.raises(ValidationError, match="ledger.idle"):
            ledger.close_idle([core], 100, lambda config: 1.0)
