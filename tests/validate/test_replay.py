"""Unit tests for event-sourced trace replay."""

import pytest

from repro.obs import (
    ConfigInstalled,
    DeadlineMiss,
    EnergyAccrued,
    JobArrived,
    JobCompleted,
    JobPreempted,
    TaskReady,
)
from repro.validate import ValidationError, replay_trace


def arrive(cycle, job_id):
    return JobArrived(cycle=cycle, job_id=job_id, benchmark="b")


def accrue(cycle, job_id, core=0, dynamic=10.0, static=4.0, overhead=0.0):
    return EnergyAccrued(
        cycle=cycle, job_id=job_id, core_index=core, benchmark="b",
        category="best", dynamic_nj=dynamic, static_nj=static,
        overhead_nj=overhead, service_cycles=100,
    )


def preempt(cycle, job_id, core=0, fraction=0.5, dynamic=5.0, static=2.0,
            overhead=0.0):
    return JobPreempted(
        cycle=cycle, job_id=job_id, core_index=core, benchmark="b",
        category="best", fraction_run=fraction,
        refunded_dynamic_nj=dynamic, refunded_static_nj=static,
        refunded_overhead_nj=overhead,
    )


def release(cycle, job_id, graph=0, task=1):
    return TaskReady(cycle=cycle, job_id=job_id, benchmark="b",
                     graph_id=graph, task_id=task)


def miss(cycle, job_id, deadline, core=0):
    return DeadlineMiss(cycle=cycle, job_id=job_id, core_index=core,
                        benchmark="b", deadline_cycle=deadline,
                        miss_cycles=cycle - deadline)


def complete(cycle, job_id, core=0, energy=14.0, waiting=0):
    return JobCompleted(
        cycle=cycle, job_id=job_id, core_index=core, benchmark="b",
        config="8KB_2W_32B", category="best", energy_nj=energy,
        waiting_cycles=waiting,
    )


class TestCleanTraces:
    def test_simple_run(self):
        report = replay_trace([
            arrive(0, 1),
            accrue(0, 1),
            complete(100, 1, energy=14.0),
        ])
        assert report.completions == 1
        assert report.execution_nj == pytest.approx(14.0)
        assert not report.unfinished_jobs

    def test_preempt_and_resume(self):
        report = replay_trace([
            arrive(0, 1),
            accrue(0, 1),
            preempt(50, 1, fraction=0.5, dynamic=5.0, static=2.0),
            accrue(60, 1, core=1, dynamic=5.0, static=2.0),
            complete(160, 1, core=1, energy=14.0),
        ])
        assert report.preemptions == 1
        assert report.per_job_nj[1] == pytest.approx(14.0)

    def test_reconfigurations_counted(self):
        report = replay_trace([
            arrive(0, 1),
            ConfigInstalled(cycle=0, job_id=1, core_index=0,
                            config="8KB_4W_32B", cycles=100, energy_nj=2.5),
            accrue(0, 1),
            complete(100, 1),
        ])
        assert report.reconfigurations == 1
        assert report.reconfig_nj == pytest.approx(2.5)

    def test_truncated_trace_reports_unfinished_arrivals(self):
        report = replay_trace([
            arrive(0, 1),
            arrive(10, 2),
            accrue(10, 1),
            complete(110, 1),
        ])
        assert report.unfinished_jobs == (2,)


class TestDagTraces:
    def test_release_counts_as_arrival(self):
        report = replay_trace([
            release(0, 1),
            accrue(0, 1),
            complete(100, 1, energy=14.0),
        ])
        assert report.releases == 1
        assert report.arrivals == 0
        assert report.completions == 1
        assert not report.unfinished_jobs

    def test_deadline_miss_counted(self):
        report = replay_trace([
            arrive(0, 1),
            accrue(0, 1),
            complete(100, 1, energy=14.0),
            miss(100, 1, deadline=80),
        ])
        assert report.deadline_misses == 1
        assert "deadline misses" in report.summary()

    def test_double_release_rejected(self):
        with pytest.raises(ValidationError, match="replay.release"):
            replay_trace([release(0, 1), release(10, 1)])

    def test_release_after_arrival_rejected(self):
        with pytest.raises(ValidationError, match="replay.release"):
            replay_trace([arrive(0, 1), release(10, 1)])

    def test_miss_for_uncompleted_job_rejected(self):
        with pytest.raises(ValidationError, match="replay.deadline"):
            replay_trace([arrive(0, 1), miss(100, 1, deadline=80)])

    def test_non_positive_miss_rejected(self):
        with pytest.raises(ValidationError, match="must be positive"):
            replay_trace([
                arrive(0, 1),
                accrue(0, 1),
                complete(100, 1, energy=14.0),
                miss(100, 1, deadline=100),
            ])

    def test_broken_miss_arithmetic_rejected(self):
        with pytest.raises(ValidationError, match="arithmetic"):
            replay_trace([
                arrive(0, 1),
                accrue(0, 1),
                complete(100, 1, energy=14.0),
                DeadlineMiss(cycle=100, job_id=1, core_index=0,
                             benchmark="b", deadline_cycle=80,
                             miss_cycles=5),
            ])

    def test_released_job_left_queued_is_reported(self):
        report = replay_trace([
            arrive(0, 1),
            release(0, 2),
            accrue(0, 1),
            complete(100, 1, energy=14.0),
        ])
        assert report.unfinished_jobs == (2,)


class TestCorruptTraces:
    def test_out_of_order_cycles(self):
        with pytest.raises(ValidationError, match="replay.order"):
            replay_trace([arrive(100, 1), accrue(50, 1)])

    def test_double_booked_core(self):
        with pytest.raises(ValidationError, match="replay.dispatch"):
            replay_trace([
                arrive(0, 1), arrive(0, 2),
                accrue(0, 1), accrue(10, 2),
            ])

    def test_preempt_without_open_execution(self):
        with pytest.raises(ValidationError, match="replay.preempt"):
            replay_trace([arrive(0, 1), preempt(10, 1)])

    def test_refund_not_pro_rata(self):
        with pytest.raises(ValidationError, match="not .* of the"):
            replay_trace([
                arrive(0, 1),
                accrue(0, 1, dynamic=10.0, static=4.0),
                preempt(50, 1, fraction=0.5, dynamic=9.0, static=2.0),
            ])

    def test_completion_energy_mismatch(self):
        with pytest.raises(ValidationError, match="replay.attribution"):
            replay_trace([
                arrive(0, 1),
                accrue(0, 1),
                complete(100, 1, energy=99.0),
            ])

    def test_completion_without_open_execution(self):
        with pytest.raises(ValidationError, match="replay.complete"):
            replay_trace([arrive(0, 1), complete(100, 1)])

    def test_negative_waiting_cycles(self):
        with pytest.raises(ValidationError, match="negative"):
            replay_trace([
                arrive(0, 1),
                accrue(0, 1),
                complete(100, 1, waiting=-5),
            ])

    def test_execution_left_open(self):
        with pytest.raises(ValidationError, match="replay.drain"):
            replay_trace([arrive(0, 1), accrue(0, 1)])

    def test_charged_job_never_completed(self):
        with pytest.raises(ValidationError, match="replay.drain"):
            replay_trace([
                arrive(0, 1),
                accrue(0, 1),
                preempt(50, 1),
            ])


class TestRealTraceRoundTrip:
    def test_preemptive_run_replays(self, small_store, oracle, energy_table):
        from repro.obs import ListRecorder

        from .conftest import make_simulation, qos_arrivals

        recorder = ListRecorder()
        sim = make_simulation("proposed", small_store, oracle, energy_table,
                              discipline="priority", preemptive=True,
                              recorder=recorder)
        result = sim.run(qos_arrivals(repeats=5))
        report = replay_trace(recorder.events)
        assert report.completions == result.jobs_completed
        assert report.preemptions == result.preemption_count
        assert report.execution_nj == pytest.approx(
            result.busy_static_energy_nj
            + result.dynamic_energy_nj
            - result.reconfig_energy_nj
            - result.profiling_overhead_nj,
            rel=1e-9,
        )
