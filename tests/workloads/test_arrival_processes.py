"""Streaming arrival processes: prefix equivalence and checkpointing.

Satellite of the open-system streaming work.  The load-bearing property
is **prefix equivalence**: a streaming generator with a given seed must
emit exactly what the closed-batch materialiser produces with the same
seed — for any truncation point, including ones that are not chunk
multiples.  That is what makes a finite stream bit-identical to a
closed-batch run, which in turn is what makes the streaming engine
testable against the fast-engine oracle at all.

The second property is exact resumability: ``state_dict()`` /
``load_state()`` must capture the full stream position (RNG, clock,
phase, next job id) so a checkpointed stream continues bit-identically
in a fresh process object.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrivals import (
    PROCESS_KINDS,
    STREAM_CHUNK,
    ArrivalProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    QoSProcess,
    make_process,
    poisson_arrivals,
    with_qos,
)
from repro.workloads.eembc import eembc_benchmark

SPECS = [eembc_benchmark(name) for name in ("puwmod", "idctrn", "pntrch")]


def _processes(seed=0, chunk=STREAM_CHUNK):
    """One instance of every factory-constructible process kind."""
    return [
        make_process(
            kind, SPECS, mean_interarrival_cycles=40_000.0,
            seed=seed, chunk=chunk,
        )
        for kind in PROCESS_KINDS
    ]


class TestPrefixEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=3 * STREAM_CHUNK + 7),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_stream_prefix_matches_closed_batch(self, count, seed):
        """PoissonProcess.take(n) IS poisson_arrivals(count=n)."""
        batch = poisson_arrivals(
            SPECS, count=count, mean_interarrival_cycles=40_000.0,
            seed=seed,
        )
        stream = PoissonProcess(
            SPECS, mean_interarrival_cycles=40_000.0, seed=seed
        ).take(count)
        assert stream == batch

    @settings(max_examples=15, deadline=None)
    @given(
        short=st.integers(min_value=1, max_value=2 * STREAM_CHUNK),
        extra=st.integers(min_value=1, max_value=2 * STREAM_CHUNK),
        kind=st.sampled_from(PROCESS_KINDS),
    )
    def test_truncation_is_prefix_stable(self, short, extra, kind):
        """The first N jobs never depend on how far the stream runs."""
        a = make_process(kind, SPECS, seed=11).take(short)
        b = make_process(kind, SPECS, seed=11).take(short + extra)
        assert b[:short] == a

    def test_chunk_boundary_exactness(self):
        """Counts at, straddling and just past the chunk size agree."""
        for count in (STREAM_CHUNK - 1, STREAM_CHUNK, STREAM_CHUNK + 1):
            batch = poisson_arrivals(SPECS, count=count, seed=3)
            stream = PoissonProcess(SPECS, seed=3).take(count)
            assert stream == batch, count

    def test_qos_process_matches_with_qos(self):
        """QoS annotation draws job-by-job in with_qos's exact order."""
        count = STREAM_CHUNK + 100
        estimate = lambda name: 400_000  # noqa: E731
        inner = PoissonProcess(SPECS, seed=5)
        streamed = QoSProcess(
            inner,
            service_estimate=estimate,
            priority_levels=4,
            deadline_slack=2.5,
            deadline_fraction=0.7,
            seed=9,
        ).take(count)
        batched = with_qos(
            PoissonProcess(SPECS, seed=5).take(count),
            service_estimate=estimate,
            priority_levels=4,
            deadline_slack=2.5,
            deadline_fraction=0.7,
            seed=9,
        )
        assert streamed == batched


class TestStreamWellFormedness:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_monotone_times_and_consecutive_ids(self, kind):
        jobs = make_process(kind, SPECS, seed=2).take(3_000)
        assert [j.job_id for j in jobs] == list(range(3_000))
        times = [j.arrival_cycle for j in jobs]
        assert times == sorted(times)
        assert all(j.benchmark in {s.name for s in SPECS} for j in jobs)

    def test_mmpp_is_burstier_than_poisson(self):
        """Phase switching lifts the gap CV above the exponential's 1."""
        n = 20_000
        poisson = PoissonProcess(
            SPECS, mean_interarrival_cycles=40_000.0, seed=1
        ).take(n)
        mmpp = MMPPProcess(
            SPECS,
            mean_interarrival_cycles=40_000.0,
            burst_factor=8.0,
            mean_normal_sojourn_cycles=5_000_000.0,
            mean_burst_sojourn_cycles=5_000_000.0,
            seed=1,
        ).take(n)

        def gap_cv2(jobs):
            """Squared coefficient of variation of the inter-arrival
            gaps — dimensionless, so the burst phase's smaller mean gap
            does not mask the extra variability it adds."""
            gaps = [
                b.arrival_cycle - a.arrival_cycle
                for a, b in zip(jobs, jobs[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        assert gap_cv2(mmpp) > 1.2 * gap_cv2(poisson)

    def test_diurnal_rate_oscillates(self):
        """More arrivals land in the high-rate half of each period."""
        period = 10_000_000.0
        jobs = DiurnalProcess(
            SPECS,
            mean_interarrival_cycles=20_000.0,
            period_cycles=period,
            amplitude=0.9,
            seed=4,
        ).take(20_000)
        high = sum(
            1 for j in jobs
            if (j.arrival_cycle % period) < period / 2
        )
        assert high > 0.55 * len(jobs)


class TestCheckpointing:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_state_round_trip_mid_stream(self, kind):
        """Snapshot at an arbitrary point, restore, continue identically."""
        original = make_process(kind, SPECS, seed=6)
        original.take(2 * STREAM_CHUNK)  # advance to a mid-stream point
        state = json.loads(json.dumps(original.state_dict()))

        restored = make_process(kind, SPECS, seed=6)
        restored.load_state(state)
        assert restored.take(1_500) == original.take(1_500)

    def test_qos_state_round_trip(self):
        def build():
            return QoSProcess(
                PoissonProcess(SPECS, seed=6),
                service_estimate=lambda name: 400_000,
                priority_levels=4,
                seed=8,
            )

        original = build()
        original.take(STREAM_CHUNK + 10)
        state = json.loads(json.dumps(original.state_dict()))
        restored = build()
        restored.load_state(state)
        assert restored.take(800) == original.take(800)

    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_params_fingerprint_carries_configuration(self, kind):
        process = make_process(
            kind, SPECS, mean_interarrival_cycles=33_000.0, seed=12
        )
        params = process.params()
        assert params["kind"] == kind
        assert params["seed"] == 12
        assert params["mean_interarrival_cycles"] == 33_000.0
        assert params["names"] == [s.name for s in SPECS]
        # JSON-serialisable: it is embedded in checkpoint files.
        assert json.loads(json.dumps(params)) == params


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_process("uniform", SPECS)

    def test_empty_specs(self):
        with pytest.raises(ValueError, match="benchmark spec"):
            PoissonProcess([])

    def test_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk"):
            PoissonProcess(SPECS, chunk=0)

    def test_take_requires_positive_count(self):
        with pytest.raises(ValueError, match="count"):
            PoissonProcess(SPECS).take(0)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ArrivalProcess(SPECS).next_chunk()

    def test_mmpp_validation(self):
        with pytest.raises(ValueError, match="burst_factor"):
            MMPPProcess(SPECS, burst_factor=0.5)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalProcess(SPECS, amplitude=1.0)

    def test_qos_validation(self):
        inner = PoissonProcess(SPECS)
        with pytest.raises(ValueError, match="priority_levels"):
            QoSProcess(
                inner, service_estimate=lambda n: 1, priority_levels=0
            )
