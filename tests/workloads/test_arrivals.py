"""Tests for arrival-stream generation."""

import pytest

from repro.workloads.arrivals import JobArrival, poisson_arrivals, uniform_arrivals
from repro.workloads.eembc import EEMBC_NAMES, eembc_suite


class TestUniformArrivals:
    def test_count(self):
        arrivals = uniform_arrivals(eembc_suite(), count=100, seed=0)
        assert len(arrivals) == 100

    def test_paper_default_count(self):
        arrivals = uniform_arrivals(eembc_suite(), seed=0)
        assert len(arrivals) == 5000

    def test_times_sorted_and_in_horizon(self):
        arrivals = uniform_arrivals(
            eembc_suite(), count=200, horizon_cycles=1_000_000, seed=1
        )
        times = [a.arrival_cycle for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 1_000_000 for t in times)

    def test_job_ids_sequential(self):
        arrivals = uniform_arrivals(eembc_suite(), count=50, seed=0)
        assert [a.job_id for a in arrivals] == list(range(50))

    def test_benchmarks_from_suite(self):
        arrivals = uniform_arrivals(eembc_suite(), count=300, seed=2)
        assert {a.benchmark for a in arrivals} <= set(EEMBC_NAMES)

    def test_all_benchmarks_eventually_drawn(self):
        arrivals = uniform_arrivals(eembc_suite(), count=2000, seed=3)
        assert {a.benchmark for a in arrivals} == set(EEMBC_NAMES)

    def test_deterministic(self):
        a = uniform_arrivals(eembc_suite(), count=100, seed=7)
        b = uniform_arrivals(eembc_suite(), count=100, seed=7)
        assert a == b

    def test_seed_changes_stream(self):
        a = uniform_arrivals(eembc_suite(), count=100, seed=1)
        b = uniform_arrivals(eembc_suite(), count=100, seed=2)
        assert a != b

    def test_default_horizon_from_interarrival(self):
        arrivals = uniform_arrivals(
            eembc_suite(), count=100, seed=0, mean_interarrival_cycles=1000
        )
        assert max(a.arrival_cycle for a in arrivals) < 100 * 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_arrivals(eembc_suite(), count=0)
        with pytest.raises(ValueError):
            uniform_arrivals(eembc_suite(), count=10, horizon_cycles=0)
        with pytest.raises(ValueError):
            uniform_arrivals([], count=10)


class TestPoissonArrivals:
    def test_count_and_order(self):
        arrivals = poisson_arrivals(eembc_suite(), count=100, seed=0)
        times = [a.arrival_cycle for a in arrivals]
        assert len(arrivals) == 100
        assert times == sorted(times)

    def test_mean_interarrival_close(self):
        arrivals = poisson_arrivals(
            eembc_suite(), count=5000, mean_interarrival_cycles=10_000, seed=1
        )
        span = arrivals[-1].arrival_cycle - arrivals[0].arrival_cycle
        mean_gap = span / (len(arrivals) - 1)
        assert 9_000 < mean_gap < 11_000

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(eembc_suite(), count=0)
        with pytest.raises(ValueError):
            poisson_arrivals(eembc_suite(), count=5, mean_interarrival_cycles=0)


class TestJobArrival:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobArrival(job_id=-1, benchmark="x", arrival_cycle=0)
        with pytest.raises(ValueError):
            JobArrival(job_id=0, benchmark="x", arrival_cycle=-1)
