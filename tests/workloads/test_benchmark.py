"""Tests for benchmark specifications and trace generation."""

import numpy as np
import pytest

from repro.workloads.benchmark import BenchmarkSpec, InstructionMix, Trace
from repro.workloads.tracegen import LoopedArray, SequentialStream, TraceMix


def make_spec(instructions=10_000):
    return BenchmarkSpec(
        name="toy",
        family="toy",
        instructions=instructions,
        mix=InstructionMix(load=0.25, store=0.10, branch=0.15,
                           int_op=0.40, fp_op=0.10),
        trace_mix=TraceMix(
            components=(
                (LoopedArray(region_bytes=512, stride=4), 2.0),
                (SequentialStream(region_bytes=2048, stride=4), 1.0),
            ),
        ),
    )


class TestInstructionMix:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            InstructionMix(load=0.5, store=0.5, branch=0.5, int_op=0.0, fp_op=0.0)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            InstructionMix(load=-0.1, store=0.4, branch=0.3, int_op=0.3, fp_op=0.1)

    def test_branch_taken_bounds(self):
        with pytest.raises(ValueError):
            InstructionMix(load=0.2, store=0.2, branch=0.2, int_op=0.2,
                           fp_op=0.2, branch_taken_ratio=1.5)

    def test_memory_fraction(self):
        mix = InstructionMix(load=0.3, store=0.1, branch=0.2, int_op=0.3, fp_op=0.1)
        assert mix.memory_fraction == pytest.approx(0.4)
        assert mix.write_fraction == pytest.approx(0.25)

    def test_write_fraction_no_memory(self):
        mix = InstructionMix(load=0.0, store=0.0, branch=0.3, int_op=0.4, fp_op=0.3)
        assert mix.write_fraction == 0.0


class TestDerivedCounts:
    def test_counts_follow_mix(self):
        spec = make_spec(10_000)
        assert spec.loads == 2500
        assert spec.stores == 1000
        assert spec.branches == 1500
        assert spec.int_ops == 4000
        assert spec.fp_ops == 1000
        assert spec.mem_accesses == 3500

    def test_taken_branches(self):
        spec = make_spec()
        assert spec.taken_branches == round(spec.branches * 0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(instructions=0)
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="", family="x", instructions=10,
                mix=make_spec().mix, trace_mix=make_spec().trace_mix,
            )


class TestTraceGeneration:
    def test_trace_length_is_mem_accesses(self):
        spec = make_spec()
        trace = spec.generate_trace(seed=0)
        assert len(trace) == spec.mem_accesses

    def test_store_count_matches(self):
        spec = make_spec()
        trace = spec.generate_trace(seed=0)
        assert trace.store_count == spec.stores
        assert trace.load_count == spec.mem_accesses - spec.stores

    def test_writes_spread_through_trace(self):
        trace = make_spec().generate_trace(seed=0)
        write_positions = np.flatnonzero(trace.writes)
        gaps = np.diff(write_positions)
        assert gaps.max() <= 2 * gaps.min() + 2  # roughly uniform

    def test_deterministic_per_seed(self):
        spec = make_spec()
        a = spec.generate_trace(seed=3)
        b = spec.generate_trace(seed=3)
        assert (a.addresses == b.addresses).all()
        assert (a.writes == b.writes).all()

    def test_different_seeds_differ_with_random_component(self):
        import dataclasses

        from repro.workloads.tracegen import RandomAccess

        spec = dataclasses.replace(
            make_spec(),
            trace_mix=TraceMix(components=((RandomAccess(region_bytes=4096), 1.0),)),
        )
        a = spec.generate_trace(seed=1)
        b = spec.generate_trace(seed=2)
        assert not (a.addresses == b.addresses).all()

    def test_deterministic_components_are_seed_independent(self):
        # Looped/sequential components model fixed control flow, so the
        # trace does not depend on the seed — only stochastic components do.
        spec = make_spec()
        a = spec.generate_trace(seed=1)
        b = spec.generate_trace(seed=2)
        assert (a.addresses == b.addresses).all()

    def test_different_benchmarks_decorrelated(self):
        import dataclasses

        from repro.workloads.tracegen import RandomAccess

        mix = TraceMix(components=((RandomAccess(region_bytes=4096), 1.0),))
        a = dataclasses.replace(make_spec(), trace_mix=mix)
        b = dataclasses.replace(make_spec(), name="other", trace_mix=mix)
        assert not (
            a.generate_trace(0).addresses == b.generate_trace(0).addresses
        ).all()

    def test_unique_lines(self):
        spec = make_spec()
        trace = spec.generate_trace(seed=0)
        expected = len(np.unique(trace.addresses // 64))
        assert trace.unique_lines_64b == expected


class TestTrace:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(addresses=np.zeros(3, dtype=np.int64),
                  writes=np.zeros(2, dtype=bool))

    def test_empty_trace(self):
        trace = Trace(addresses=np.zeros(0, dtype=np.int64),
                      writes=np.zeros(0, dtype=bool))
        assert trace.unique_lines_64b == 0
        assert trace.store_count == 0


class TestVariants:
    def test_variant_zero_is_self(self):
        spec = make_spec()
        assert spec.variant(0) is spec

    def test_variant_renamed(self):
        spec = make_spec()
        v = spec.variant(3)
        assert v.name == "toy.v3"
        assert v.family == "toy"

    def test_variant_deterministic(self):
        spec = make_spec()
        a = spec.variant(5)
        b = spec.variant(5)
        assert a.instructions == b.instructions
        assert a.trace_mix == b.trace_mix
        assert a.mix == b.mix

    def test_variants_differ_from_original(self):
        spec = make_spec()
        v = spec.variant(1)
        assert v.instructions != spec.instructions or v.trace_mix != spec.trace_mix

    def test_variant_regions_scale_together(self):
        spec = make_spec()
        v = spec.variant(7, jitter=0.5)
        originals = [c.region_bytes for c, _ in spec.trace_mix.components]
        scaled = [c.region_bytes for c, _ in v.trace_mix.components]
        ratios = [s / o for s, o in zip(scaled, originals)]
        # Same lognormal factor with small per-component wobble.
        assert max(ratios) / min(ratios) < 1.6

    def test_variant_mix_still_valid(self):
        spec = make_spec()
        for i in range(1, 10):
            v = spec.variant(i)
            total = (v.mix.load + v.mix.store + v.mix.branch
                     + v.mix.int_op + v.mix.fp_op)
            assert total == pytest.approx(1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            make_spec().variant(1, jitter=-0.1)

    def test_variant_trace_generates(self):
        v = make_spec().variant(2)
        trace = v.generate_trace(seed=0)
        assert len(trace) == v.mem_accesses
