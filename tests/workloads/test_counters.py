"""Tests for hardware counter collection."""

import numpy as np
import pytest

from repro.cache.cache import simulate_trace
from repro.cache.config import BASE_CONFIG
from repro.energy.model import EnergyModel
from repro.workloads.counters import (
    ALL_COUNTER_NAMES,
    ANN_SELECTED_FEATURES,
    HardwareCounters,
    collect_counters,
)
from repro.workloads.eembc import eembc_benchmark


@pytest.fixture(scope="module")
def collected():
    spec = eembc_benchmark("a2time")
    trace = spec.generate_trace(seed=0)
    stats = simulate_trace(trace.addresses, BASE_CONFIG, writes=trace.writes)
    model = EnergyModel()
    cycles = model.estimate(BASE_CONFIG, spec.instructions, stats).total_cycles
    return spec, trace, stats, collect_counters(spec, trace, stats, cycles)


class TestCounterBlock:
    def test_eighteen_counters(self):
        assert len(ALL_COUNTER_NAMES) == 18

    def test_paper_selected_features(self):
        # §IV.D: instructions, cycles, loads, stores, branches, int, fp.
        assert ANN_SELECTED_FEATURES == (
            "instructions", "cycles", "loads", "stores", "branches",
            "int_ops", "fp_ops",
        )
        assert set(ANN_SELECTED_FEATURES) <= set(ALL_COUNTER_NAMES)

    def test_consistency(self, collected):
        spec, trace, stats, counters = collected
        counters.validate()
        assert counters.instructions == spec.instructions
        assert counters.mem_accesses == stats.accesses
        assert counters.cache_hits + counters.cache_misses == counters.mem_accesses
        assert counters.loads + counters.stores == counters.mem_accesses

    def test_ipc_below_one_with_stalls(self, collected):
        _, _, _, counters = collected
        assert 0 < counters.ipc <= 1.0
        assert counters.cycles >= counters.instructions
        assert counters.stall_cycles == counters.cycles - counters.instructions

    def test_intensities(self, collected):
        spec, _, _, counters = collected
        assert counters.memory_intensity == pytest.approx(
            counters.mem_accesses / spec.instructions
        )
        assert counters.compute_intensity == pytest.approx(
            (spec.int_ops + spec.fp_ops) / counters.mem_accesses
        )


class TestAsVector:
    def test_default_order(self, collected):
        _, _, _, counters = collected
        vector = counters.as_vector()
        assert vector.shape == (18,)
        assert vector[0] == counters.instructions

    def test_selected_features(self, collected):
        _, _, _, counters = collected
        vector = counters.as_vector(ANN_SELECTED_FEATURES)
        assert vector.shape == (7,)
        assert vector[1] == counters.cycles

    def test_unknown_name_rejected(self, collected):
        _, _, _, counters = collected
        with pytest.raises(ValueError):
            counters.as_vector(["instructions", "nonexistent"])

    def test_vector_is_float(self, collected):
        _, _, _, counters = collected
        assert counters.as_vector().dtype == np.float64


class TestValidation:
    def test_bad_hit_miss_sum(self):
        with pytest.raises(ValueError):
            HardwareCounters(
                instructions=10, cycles=10, ipc=1.0, loads=2, stores=0,
                branches=0, taken_branches=0, int_ops=8, fp_ops=0,
                mem_accesses=2, cache_hits=1, cache_misses=0, miss_rate=0.0,
                stall_cycles=0, compulsory_misses=0, unique_lines=1,
                compute_intensity=4.0, memory_intensity=0.2,
            ).validate()

    def test_taken_branches_bounded(self):
        with pytest.raises(ValueError):
            HardwareCounters(
                instructions=10, cycles=10, ipc=1.0, loads=1, stores=1,
                branches=2, taken_branches=3, int_ops=6, fp_ops=0,
                mem_accesses=2, cache_hits=2, cache_misses=0, miss_rate=0.0,
                stall_cycles=0, compulsory_misses=0, unique_lines=1,
                compute_intensity=3.0, memory_intensity=0.2,
            ).validate()
