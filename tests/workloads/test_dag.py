"""Tests for the DAG/task-graph workload model and generator."""

import dataclasses

import pytest

from repro.workloads.dag import (
    TaskGraph,
    TaskSpec,
    dag_arrivals,
    describe_graphs,
    dump_graphs,
    generate_task_graphs,
    load_graphs,
)
from repro.workloads.eembc import EEMBC_NAMES


def chain_graph(graph_id=0, arrival=0, benchmarks=("a2time", "puwmod",
                                                   "idctrn")):
    """A three-task chain 0 -> 1 -> 2."""
    return TaskGraph(
        graph_id=graph_id,
        name="chain",
        arrival_cycle=arrival,
        tasks=(
            TaskSpec(task_id=0, benchmark=benchmarks[0]),
            TaskSpec(task_id=1, benchmark=benchmarks[1],
                     predecessors=(0,)),
            TaskSpec(task_id=2, benchmark=benchmarks[2],
                     predecessors=(1,), deadline_offset=2_000_000),
        ),
    )


class TestTaskSpec:
    def test_predecessors_normalised_to_tuple(self):
        spec = TaskSpec(task_id=1, benchmark="a2time", predecessors=[0])
        assert spec.predecessors == (0,)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TaskSpec(task_id=-1, benchmark="a2time")

    def test_empty_benchmark_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TaskSpec(task_id=0, benchmark="")

    def test_duplicate_predecessor_rejected(self):
        with pytest.raises(ValueError, match="duplicate predecessor"):
            TaskSpec(task_id=2, benchmark="a2time", predecessors=(0, 0))

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="depends on itself"):
            TaskSpec(task_id=1, benchmark="a2time", predecessors=(1,))

    def test_negative_deadline_offset_rejected(self):
        with pytest.raises(ValueError, match="deadline_offset"):
            TaskSpec(task_id=0, benchmark="a2time", deadline_offset=-1)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown TaskSpec fields"):
            TaskSpec.from_dict({"task_id": 0, "benchmark": "a2time",
                                "wcet": 5})


class TestTaskGraph:
    def test_structure_helpers(self):
        graph = chain_graph()
        assert graph.task_count == 3
        assert graph.edge_count == 2
        assert not graph.is_edge_free
        assert [t.task_id for t in graph.roots()] == [0]
        assert graph.successors() == {0: (1,), 1: (2,), 2: ()}
        assert graph.topological_order() == (0, 1, 2)
        assert graph.critical_path_length() == 3

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="precedence cycle"):
            TaskGraph(
                graph_id=0, name="cyclic", arrival_cycle=0,
                tasks=(
                    TaskSpec(task_id=0, benchmark="a2time",
                             predecessors=(1,)),
                    TaskSpec(task_id=1, benchmark="puwmod",
                             predecessors=(0,)),
                ),
            )

    def test_unknown_predecessor_rejected(self):
        with pytest.raises(ValueError, match="unknown predecessor 9"):
            TaskGraph(
                graph_id=0, name="dangling", arrival_cycle=0,
                tasks=(TaskSpec(task_id=0, benchmark="a2time",
                                predecessors=(9,)),),
            )

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate task ids"):
            TaskGraph(
                graph_id=0, name="dup", arrival_cycle=0,
                tasks=(TaskSpec(task_id=0, benchmark="a2time"),
                       TaskSpec(task_id=0, benchmark="puwmod")),
            )

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="has no tasks"):
            TaskGraph(graph_id=0, name="empty", arrival_cycle=0)

    def test_criticality_floor(self):
        with pytest.raises(ValueError, match="criticality"):
            TaskGraph(
                graph_id=0, name="c", arrival_cycle=0, criticality=0,
                tasks=(TaskSpec(task_id=0, benchmark="a2time"),),
            )

    def test_dict_tasks_coerced(self):
        graph = TaskGraph(
            graph_id=0, name="dicts", arrival_cycle=0,
            tasks=({"task_id": 0, "benchmark": "a2time"},),
        )
        assert isinstance(graph.tasks[0], TaskSpec)

    def test_round_trip_through_dict(self):
        graph = chain_graph()
        assert TaskGraph.from_dict(graph.to_dict()) == graph

    def test_from_dict_rejects_unknown_fields(self):
        payload = chain_graph().to_dict()
        payload["colour"] = "blue"
        with pytest.raises(ValueError, match="unknown TaskGraph fields"):
            TaskGraph.from_dict(payload)

    def test_describe_mentions_structure(self):
        text = chain_graph().describe()
        assert "3 tasks, 2 edges" in text
        assert "critical path 3 tasks" in text


class TestSerialisation:
    def test_file_round_trip(self, tmp_path):
        graphs = generate_task_graphs(count=4, seed=9)
        path = tmp_path / "graphs.json"
        dump_graphs(graphs, path)
        assert load_graphs(path) == graphs

    def test_dump_is_byte_deterministic(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            path = tmp_path / f"{tag}.json"
            dump_graphs(generate_task_graphs(count=3, seed=4), path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_load_rejects_non_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="task-graph document"):
            load_graphs(path)

    def test_describe_graphs_header(self):
        graphs = generate_task_graphs(count=3, seed=0)
        text = describe_graphs(graphs)
        assert text.startswith("3 task graph(s)")


class TestGenerator:
    def test_deterministic(self):
        assert generate_task_graphs(count=6, seed=13) == \
            generate_task_graphs(count=6, seed=13)

    def test_seed_changes_output(self):
        assert generate_task_graphs(count=6, seed=1) != \
            generate_task_graphs(count=6, seed=2)

    def test_shapes_respect_bounds(self):
        graphs = generate_task_graphs(count=20, seed=3, tasks_min=2,
                                      tasks_max=5)
        assert all(2 <= g.task_count <= 5 for g in graphs)
        assert all(g.criticality >= 1 for g in graphs)
        assert {t.benchmark for g in graphs for t in g.tasks} <= \
            set(EEMBC_NAMES)

    def test_edge_density_zero_is_edge_free(self):
        graphs = generate_task_graphs(count=10, seed=5, edge_density=0.0)
        assert all(g.is_edge_free for g in graphs)

    def test_edge_density_one_is_a_total_order(self):
        graphs = generate_task_graphs(count=5, seed=5, edge_density=1.0)
        for graph in graphs:
            assert graph.critical_path_length() == graph.task_count

    def test_every_task_deadlined_with_positive_offset(self):
        graphs = generate_task_graphs(count=8, seed=2)
        for graph in graphs:
            for task in graph.tasks:
                assert task.deadline_offset is not None
                assert task.deadline_offset > 0

    def test_deeper_tasks_get_later_deadline_scale(self):
        # With the ±20% jitter, depth d's offset lies in
        # [0.8, 1.2] x d x slack x estimate: check the depth anchor.
        graphs = generate_task_graphs(count=10, seed=6, edge_density=0.6,
                                      deadline_slack=2.0,
                                      service_estimate_cycles=100_000)
        for graph in graphs:
            by_id = {t.task_id: t for t in graph.tasks}
            depth = {}
            for tid in graph.topological_order():
                preds = by_id[tid].predecessors
                depth[tid] = 1 + max((depth[p] for p in preds), default=0)
            for tid, task in by_id.items():
                low = 0.8 * depth[tid] * 2.0 * 100_000
                high = 1.2 * depth[tid] * 2.0 * 100_000
                assert low <= task.deadline_offset <= high

    def test_arrivals_non_decreasing(self):
        graphs = generate_task_graphs(count=12, seed=8)
        times = [g.arrival_cycle for g in graphs]
        assert times == sorted(times)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(count=0), "count must be positive"),
        (dict(tasks_min=4, tasks_max=2), "tasks_min <= tasks_max"),
        (dict(tasks_min=0, tasks_max=0), "at least 1"),
        (dict(edge_density=1.5), "edge_density"),
        (dict(deadline_slack=0.0), "deadline_slack"),
        (dict(criticality_levels=0), "criticality_levels"),
        (dict(mean_interarrival_cycles=-1), "mean_interarrival_cycles"),
        (dict(service_estimate_cycles=0), "service_estimate_cycles"),
        (dict(benchmarks=[]), "at least one benchmark"),
    ])
    def test_parameter_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            generate_task_graphs(seed=0, **kwargs)


class TestDagArrivals:
    def test_lowering_matches_run_dags_numbering(self):
        graphs = generate_task_graphs(count=4, seed=3, edge_density=0.0)
        arrivals = dag_arrivals(graphs)
        assert [a.job_id for a in arrivals] == list(range(len(arrivals)))
        assert len(arrivals) == sum(g.task_count for g in graphs)
        index = 0
        for graph in graphs:
            for task in graph.tasks:
                arrival = arrivals[index]
                assert arrival.benchmark == task.benchmark
                assert arrival.arrival_cycle == graph.arrival_cycle
                assert arrival.deadline_cycle == \
                    graph.arrival_cycle + task.deadline_offset
                index += 1

    def test_edges_cannot_be_lowered(self):
        graphs = generate_task_graphs(count=6, seed=7, edge_density=1.0)
        with pytest.raises(ValueError, match="cannot be lowered"):
            dag_arrivals(graphs)

    def test_undeadlined_task_stays_undeadlined(self):
        graph = TaskGraph(
            graph_id=0, name="plain", arrival_cycle=100,
            tasks=(TaskSpec(task_id=0, benchmark="a2time"),),
        )
        (arrival,) = dag_arrivals([graph])
        assert arrival.deadline_cycle is None
