"""Tests for the synthetic EEMBC-analogue suite definitions."""

import pytest

from repro.workloads.eembc import EEMBC_NAMES, eembc_benchmark, eembc_suite


class TestSuiteStructure:
    def test_fifteen_benchmarks(self):
        assert len(eembc_suite()) == 15
        assert len(EEMBC_NAMES) == 15

    def test_names_match_order(self):
        assert tuple(s.name for s in eembc_suite()) == EEMBC_NAMES

    def test_names_unique(self):
        assert len(set(EEMBC_NAMES)) == 15

    def test_lookup_by_name(self):
        spec = eembc_benchmark("matrix")
        assert spec.name == "matrix"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            eembc_benchmark("dhrystone")

    def test_suite_is_cached(self):
        assert eembc_suite()[0] is eembc_suite()[0]


class TestSpecContents:
    def test_all_have_descriptions(self):
        for spec in eembc_suite():
            assert spec.description

    def test_families_match_names(self):
        for spec in eembc_suite():
            assert spec.family == spec.name

    def test_instruction_counts_plausible(self):
        for spec in eembc_suite():
            assert 10_000 <= spec.instructions <= 500_000

    def test_mixes_sum_to_one(self):
        for spec in eembc_suite():
            mix = spec.mix
            total = mix.load + mix.store + mix.branch + mix.int_op + mix.fp_op
            assert total == pytest.approx(1.0)

    def test_memory_fractions_plausible(self):
        for spec in eembc_suite():
            assert 0.15 <= spec.mix.memory_fraction <= 0.55

    def test_footprints_span_design_space(self):
        footprints = [s.trace_mix.footprint_bytes for s in eembc_suite()]
        assert min(footprints) < 16 * 1024
        assert max(footprints) > 8 * 1024

    def test_fp_heavy_and_int_heavy_present(self):
        fp = [s for s in eembc_suite() if s.mix.fp_op > 0.25]
        integer = [s for s in eembc_suite() if s.mix.int_op > 0.4]
        assert fp and integer

    def test_traces_generate(self):
        for spec in eembc_suite():
            trace = spec.generate_trace(seed=0)
            assert len(trace) == spec.mem_accesses
            assert trace.addresses.min() >= 0
