"""Tests for the trace locality analysis tools."""

import numpy as np
import pytest

from repro.workloads.eembc import eembc_benchmark
from repro.workloads.locality import (
    miss_ratio_curve,
    reuse_distance_histogram,
    working_set_curve,
)


class TestReuseDistance:
    def test_cold_misses_counted(self):
        histogram = reuse_distance_histogram([0, 32, 64], line_b=32)
        assert histogram == {-1: 3}

    def test_immediate_rereference_distance_zero(self):
        histogram = reuse_distance_histogram([0, 0, 0], line_b=32)
        assert histogram[-1] == 1
        assert histogram[0] == 2

    def test_intervening_lines_counted(self):
        # 0, 32, 64, then back to 0: two distinct lines in between.
        histogram = reuse_distance_histogram([0, 32, 64, 0], line_b=32)
        assert histogram[2] == 1

    def test_loop_distance_is_loop_size_minus_one(self):
        trace = list(range(0, 8 * 32, 32)) * 3  # 8-line loop, 3 sweeps
        histogram = reuse_distance_histogram(trace, line_b=32)
        assert histogram[-1] == 8
        assert histogram[7] == 16  # every re-reference sees 7 others

    def test_total_mass_equals_accesses(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 4096, size=500)
        histogram = reuse_distance_histogram(trace, line_b=32)
        assert sum(histogram.values()) == 500

    def test_predicts_fully_associative_hits(self):
        """Mass below capacity equals a fully-associative cache's hits."""
        from repro.cache.cache import Cache
        from repro.cache.config import CacheConfig

        rng = np.random.default_rng(1)
        trace = (rng.integers(0, 64, size=800) * 32).tolist()
        histogram = reuse_distance_histogram(trace, line_b=32)
        capacity = 32  # lines: a fully associative 1KB/32B cache
        predicted_hits = sum(
            count for distance, count in histogram.items()
            if 0 <= distance < capacity
        )
        cache = Cache(CacheConfig(1, 32, 32), policy="lru")
        stats = cache.run_trace(trace)
        assert stats.hits == predicted_hits

    def test_line_size_validated(self):
        with pytest.raises(ValueError):
            reuse_distance_histogram([0], line_b=24)


class TestWorkingSet:
    def test_constant_loop(self):
        trace = list(range(0, 4 * 32, 32)) * 100
        curve = working_set_curve(trace, window=40, line_b=32)
        assert all(distinct == 4 for _, distinct in curve)

    def test_growing_stream(self):
        trace = list(range(0, 400 * 32, 32))
        curve = working_set_curve(trace, window=100, line_b=32)
        assert all(distinct == 100 for _, distinct in curve)

    def test_stride_sampling(self):
        trace = list(range(0, 100 * 32, 32))
        curve = working_set_curve(trace, window=10, stride=5, line_b=32)
        starts = [start for start, _ in curve]
        assert starts[:3] == [0, 5, 10]

    def test_validation(self):
        with pytest.raises(ValueError):
            working_set_curve([0], window=0)
        with pytest.raises(ValueError):
            working_set_curve([0], window=5, stride=0)


class TestMissRatioCurve:
    def test_monotone_for_looped_working_set(self):
        spec = eembc_benchmark("idctrn")
        trace = spec.generate_trace(seed=0)
        curve = miss_ratio_curve(trace.addresses, sizes_kb=(2, 4, 8))
        assert curve[2] >= curve[4] >= curve[8]

    def test_knee_locates_natural_capacity(self):
        # puwmod's working set fits 2KB: the curve is flat.
        spec = eembc_benchmark("puwmod")
        trace = spec.generate_trace(seed=0)
        curve = miss_ratio_curve(trace.addresses, sizes_kb=(2, 4, 8))
        assert curve[2] - curve[8] < 0.01
        # idctrn's does not fit 2KB: a clear knee between 2 and 4 KB.
        spec = eembc_benchmark("idctrn")
        trace = spec.generate_trace(seed=0)
        curve = miss_ratio_curve(trace.addresses, sizes_kb=(2, 4, 8))
        assert curve[2] - curve[4] > 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_ratio_curve([0], sizes_kb=())


class TestGantt:
    def test_renders_core_rows(self):
        from repro.analysis.report import render_gantt
        from repro.core.results import JobRecord, SimulationResult

        result = SimulationResult(
            policy="base", jobs_completed=2, makespan_cycles=100,
            idle_energy_nj=0, dynamic_energy_nj=1, busy_static_energy_nj=0,
            reconfig_energy_nj=0, profiling_overhead_nj=0, reconfig_cycles=0,
            stall_decisions=0, non_best_decisions=0, tuning_executions=0,
            profiling_executions=1,
            jobs=[
                JobRecord(job_id=0, benchmark="matrix", arrival_cycle=0,
                          start_cycle=0, completion_cycle=50, core_index=0,
                          config_name="8KB_4W_64B", profiled=True,
                          tuning=False, energy_nj=1.0),
                JobRecord(job_id=1, benchmark="puwmod", arrival_cycle=0,
                          start_cycle=50, completion_cycle=100, core_index=1,
                          config_name="8KB_4W_64B", profiled=False,
                          tuning=False, energy_nj=1.0),
            ],
        )
        text = render_gantt(result, width=40)
        assert "core 1 |" in text
        assert "core 2 |" in text
        assert "M" in text  # profiled matrix run is upper-case
        assert "p" in text  # normal puwmod run is lower-case

    def test_empty_and_validation(self):
        from repro.analysis.report import render_gantt
        from repro.core.results import SimulationResult

        empty = SimulationResult(
            policy="base", jobs_completed=0, makespan_cycles=0,
            idle_energy_nj=0, dynamic_energy_nj=0, busy_static_energy_nj=0,
            reconfig_energy_nj=0, profiling_overhead_nj=0, reconfig_cycles=0,
            stall_decisions=0, non_best_decisions=0, tuning_executions=0,
            profiling_executions=0,
        )
        assert render_gantt(empty) == "(no jobs)"
        with pytest.raises(ValueError):
            render_gantt(empty, width=5)
