"""Tests for the synthetic trace generators."""

import numpy as np
import pytest

from repro.workloads.tracegen import (
    HotspotAccess,
    LoopedArray,
    PointerChase,
    RandomAccess,
    SequentialStream,
    StridedAccess,
    TraceMix,
    interleave_chunks,
)


def rng():
    return np.random.default_rng(0)


ALL_COMPONENTS = [
    SequentialStream(region_bytes=4096, stride=4),
    LoopedArray(region_bytes=1024, stride=4),
    StridedAccess(region_bytes=4096, stride=256),
    PointerChase(region_bytes=2048, node_bytes=16),
    RandomAccess(region_bytes=4096),
    HotspotAccess(region_bytes=4096, skew=1.3),
]


class TestCommonProperties:
    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_length_and_dtype(self, component):
        trace = component.generate(500, base=0x1000, rng=rng())
        assert len(trace) == 500
        assert trace.dtype == np.int64

    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_addresses_within_region(self, component):
        base = 0x8000
        trace = component.generate(1000, base=base, rng=rng())
        assert (trace >= base).all()
        assert (trace < base + component.region_bytes).all()

    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_zero_length(self, component):
        trace = component.generate(0, base=0, rng=rng())
        assert len(trace) == 0

    @pytest.mark.parametrize("component", ALL_COMPONENTS, ids=lambda c: type(c).__name__)
    def test_deterministic_for_seed(self, component):
        a = component.generate(300, base=0, rng=np.random.default_rng(5))
        b = component.generate(300, base=0, rng=np.random.default_rng(5))
        assert (a == b).all()


class TestSequentialStream:
    def test_monotone_until_wrap(self):
        stream = SequentialStream(region_bytes=1 << 20, stride=4)
        trace = stream.generate(100, base=0, rng=rng())
        assert (np.diff(trace) == 4).all()

    def test_wraps_at_region(self):
        stream = SequentialStream(region_bytes=64, stride=4)
        trace = stream.generate(40, base=0, rng=rng())
        assert trace.max() < 64
        assert trace[16] == 0  # wrapped

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialStream(region_bytes=0)
        with pytest.raises(ValueError):
            SequentialStream(stride=0)


class TestLoopedArray:
    def test_sweep_repeats(self):
        loop = LoopedArray(region_bytes=64, stride=16)
        trace = loop.generate(8, base=0, rng=rng())
        assert trace.tolist() == [0, 16, 32, 48, 0, 16, 32, 48]

    def test_reuse_bounded_by_region(self):
        loop = LoopedArray(region_bytes=256, stride=4)
        trace = loop.generate(1000, base=0, rng=rng())
        assert len(np.unique(trace)) == 64  # 256/4 distinct addresses

    def test_stride_larger_than_array_rejected(self):
        with pytest.raises(ValueError):
            LoopedArray(region_bytes=16, stride=32)


class TestStridedAccess:
    def test_large_strides(self):
        strided = StridedAccess(region_bytes=4096, stride=512)
        trace = strided.generate(8, base=0, rng=rng())
        assert (np.diff(trace)[:7] % 512 == 0).all()

    def test_wrap_shifts_column(self):
        strided = StridedAccess(region_bytes=1024, stride=256)
        trace = strided.generate(8, base=0, rng=rng())
        # After 4 accesses we wrapped and shifted by one word.
        assert trace[4] == 4


class TestPointerChase:
    def test_visits_all_nodes(self):
        chase = PointerChase(region_bytes=256, node_bytes=16)
        trace = chase.generate(16, base=0, rng=rng())
        assert len(np.unique(trace)) == 16

    def test_repeats_same_order(self):
        chase = PointerChase(region_bytes=256, node_bytes=16)
        trace = chase.generate(32, base=0, rng=rng())
        assert (trace[:16] == trace[16:]).all()

    def test_node_alignment(self):
        chase = PointerChase(region_bytes=1024, node_bytes=32)
        trace = chase.generate(100, base=0, rng=rng())
        assert (trace % 32 == 0).all()

    def test_node_larger_than_region_rejected(self):
        with pytest.raises(ValueError):
            PointerChase(region_bytes=16, node_bytes=32)


class TestHotspot:
    def test_skew_concentrates_references(self):
        hot = HotspotAccess(region_bytes=8192, skew=1.5)
        trace = hot.generate(5000, base=0, rng=rng())
        _, counts = np.unique(trace, return_counts=True)
        counts = np.sort(counts)[::-1]
        # The top ten addresses take a disproportionate share.
        assert counts[:10].sum() > 0.3 * len(trace)

    def test_skew_must_exceed_one(self):
        with pytest.raises(ValueError):
            HotspotAccess(skew=1.0)


class TestInterleave:
    def test_preserves_per_stream_order(self):
        a = np.arange(10, dtype=np.int64)
        b = np.arange(100, 105, dtype=np.int64)
        mixed = interleave_chunks([a, b], chunk=4)
        from_a = mixed[mixed < 100]
        from_b = mixed[mixed >= 100]
        assert (from_a == a).all()
        assert (from_b == b).all()

    def test_total_length_preserved(self):
        a = np.arange(7, dtype=np.int64)
        b = np.arange(13, dtype=np.int64)
        assert len(interleave_chunks([a, b], chunk=3)) == 20

    def test_chunked_alternation(self):
        a = np.zeros(8, dtype=np.int64)
        b = np.ones(8, dtype=np.int64)
        mixed = interleave_chunks([a, b], chunk=2)
        assert mixed[:4].tolist() == [0, 0, 1, 1]

    def test_empty_streams(self):
        assert len(interleave_chunks([])) == 0
        assert len(interleave_chunks([np.zeros(0, dtype=np.int64)])) == 0

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            interleave_chunks([np.arange(3)], chunk=0)


class TestTraceMix:
    def make_mix(self):
        return TraceMix(
            components=(
                (LoopedArray(region_bytes=512, stride=4), 2.0),
                (SequentialStream(region_bytes=4096, stride=4), 1.0),
            ),
        )

    def test_exact_length(self):
        for n in (0, 1, 7, 100, 999):
            assert len(self.make_mix().generate(n, rng())) == n

    def test_weight_shares(self):
        mix = self.make_mix()
        trace = mix.generate(3000, rng())
        # The looped component lives at the lowest base; about 2/3 of
        # accesses should fall in its region.
        in_loop = (trace < 0x1000 + 512).sum()
        assert 0.55 < in_loop / 3000 < 0.75

    def test_regions_disjoint(self):
        mix = self.make_mix()
        trace = mix.generate(2000, rng())
        loop_hi = 0x1000 + 512
        stream_lo = 0x1000 + 512 + mix.region_gap_bytes
        assert not ((trace >= loop_hi) & (trace < stream_lo)).any()

    def test_footprint(self):
        mix = self.make_mix()
        assert mix.footprint_bytes == 512 + 4096 + 2 * mix.region_gap_bytes

    def test_deterministic(self):
        mix = self.make_mix()
        a = mix.generate(500, np.random.default_rng(1))
        b = mix.generate(500, np.random.default_rng(1))
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceMix(components=())
        with pytest.raises(ValueError):
            TraceMix(components=((LoopedArray(), 0.0),))
        with pytest.raises(ValueError):
            self.make_mix().generate(-1, rng())


class TestPhasedTraceMix:
    def make_phased(self):
        from repro.workloads.tracegen import PhasedTraceMix

        compute = TraceMix(
            components=((LoopedArray(region_bytes=512, stride=4), 1.0),),
        )
        streaming = TraceMix(
            components=((SequentialStream(region_bytes=8192, stride=4), 1.0),),
        )
        return PhasedTraceMix(phases=((compute, 2.0), (streaming, 1.0)))

    def test_exact_length(self):
        mix = self.make_phased()
        for n in (0, 1, 10, 999):
            assert len(mix.generate(n, rng())) == n

    def test_phases_in_order(self):
        mix = self.make_phased()
        trace = mix.generate(900, rng())
        # First two thirds: the 512B loop; final third: the stream.
        assert trace[:600].max() < 0x1000 + 512
        assert trace[600:].max() >= 0x1000 + 512 or (
            trace[600:] >= 0x1000
        ).all()

    def test_phase_shares_respected(self):
        mix = self.make_phased()
        trace = mix.generate(3000, rng())
        in_loop = (trace < 0x1000 + 512).sum()
        assert 0.6 < in_loop / 3000 < 0.75

    def test_deterministic(self):
        import numpy as np

        mix = self.make_phased()
        a = mix.generate(500, np.random.default_rng(2))
        b = mix.generate(500, np.random.default_rng(2))
        assert (a == b).all()

    def test_components_flattened_with_phase_weights(self):
        mix = self.make_phased()
        components = mix.components
        assert len(components) == 2
        weights = sorted(w for _, w in components)
        assert weights == [1.0, 2.0]

    def test_validation(self):
        from repro.workloads.tracegen import PhasedTraceMix

        with pytest.raises(ValueError):
            PhasedTraceMix(phases=())
        compute = TraceMix(
            components=((LoopedArray(region_bytes=64, stride=4), 1.0),),
        )
        with pytest.raises(ValueError):
            PhasedTraceMix(phases=((compute, 0.0),))
        with pytest.raises(ValueError):
            self.make_phased().generate(-1, rng())

    def test_works_inside_benchmark_spec(self):
        from repro.workloads.benchmark import BenchmarkSpec, InstructionMix

        spec = BenchmarkSpec(
            name="phased",
            family="phased",
            instructions=10_000,
            mix=InstructionMix(load=0.3, store=0.1, branch=0.1,
                               int_op=0.4, fp_op=0.1),
            trace_mix=self.make_phased(),
        )
        trace = spec.generate_trace(seed=0)
        assert len(trace) == spec.mem_accesses
